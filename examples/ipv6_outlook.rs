//! IPv6 outlook (§6): SPAL "is feasibly applicable to IPv6", where the
//! SRAM pressure is several times higher. The partitioner machinery is
//! generic over address width, so this runs the real §3.1 bit selection
//! and ROT-partitioning on a synthetic IPv6 table and measures the
//! per-LC trie shrinkage on the width-generic binary trie.
//!
//! Run: `cargo run --release --example ipv6_outlook`

use spal::core::v6::{select_bits6, Partitioning6};
use spal::lpm::binary::GenericBinaryTrie;
use spal::rib::v6::{synthesize6, RoutingTable6};

fn build(table: &RoutingTable6) -> GenericBinaryTrie<u128> {
    let mut t = GenericBinaryTrie::new();
    for e in table.entries() {
        t.insert(e.prefix.bits(), e.prefix.len(), e.next_hop);
    }
    t
}

fn main() {
    let table = synthesize6(30_000, 2026);
    println!(
        "IPv6 table: {} prefixes (global unicast, /32-/48 heavy)",
        table.len()
    );

    let psi = 8;
    let bits = select_bits6(&table, 3);
    println!("chosen partitioning bits: {bits:?} (criteria of Sec. 3.1, candidates 0..=63)");
    let part = Partitioning6::new(&table, bits, psi);

    let whole = build(&table);
    println!(
        "\nwhole-table binary trie: {} nodes (the IPv6 SRAM problem of Sec. 1)",
        whole.node_count()
    );
    let partitions = part.forwarding_tables(&table);
    for (lc, p) in partitions.iter().enumerate() {
        let trie = build(p);
        println!(
            "LC {lc}: {:>6} prefixes, {:>8} trie nodes ({:.1}% of whole)",
            p.len(),
            trie.node_count(),
            100.0 * trie.node_count() as f64 / whole.node_count() as f64
        );
    }

    // The SPAL correctness invariant holds for 128-bit addresses too.
    let tries: Vec<_> = partitions.iter().map(build).collect();
    let mut verified = 0;
    for e in table.entries().iter().step_by(499) {
        let addr = e.prefix.bits() | 1;
        let home = part.home_of(addr) as usize;
        assert_eq!(tries[home].lookup_generic(addr), whole.lookup_generic(addr));
        verified += 1;
    }
    println!("\nverified {verified} addresses: home-LC lookup == whole-table lookup");
    println!("per-LC SRAM drops ~1/psi exactly as in IPv4, but from a base several");
    println!("times larger — the Sec. 6 argument for SPAL under IPv6.");
}
