//! Trace analysis: why the LR-cache works. Computes reuse-distance
//! profiles for the five trace presets and prints the predicted
//! fully-associative LRU hit rate at each cache size — the §5.2 claim
//! that "typical packet streams indeed have sufficient temporal locality
//! to make the LR-cache effective", made quantitative.
//!
//! Run: `cargo run --release --example trace_analysis`

use spal::rib::synth;
use spal::traffic::analysis::ReuseProfile;
use spal::traffic::{preset, ALL_PRESETS};

fn main() {
    let table = synth::rt1(0xA11CE);
    let packets = 100_000;
    let caps = [512usize, 1024, 2048, 4096, 8192];

    println!("predicted LRU hit rate by cache capacity ({packets} packets per trace)\n");
    println!(
        "{:<8} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "trace", "distinct", "512", "1K", "2K", "4K", "8K"
    );
    for name in ALL_PRESETS {
        let trace = preset(name).generate(&table, packets, 11);
        let profile = ReuseProfile::of(&trace, 8192 + 1);
        print!("{:<8} {:>9}", name.label(), profile.distinct());
        for &cap in &caps {
            print!(" {:>7.3}", profile.lru_hit_rate(cap));
        }
        println!();
    }

    println!();
    println!("Reading: at 4K blocks every preset sits in the >0.9 band the paper cites");
    println!("for 1998/2002 traffic (refs [5, 6]); L_92-0 is the most cacheable and");
    println!("B_L the least, matching the curve ordering of the paper's Figs. 4-6.");
    println!("The LR-cache's 4-way set-associativity costs a little relative to these");
    println!("fully-associative bounds; the victim cache claws most of it back.");
}
