//! Table partitioning in detail: the §3.1 bit-selection criteria on the
//! paper's own worked example, then on a backbone-scale table with a
//! non-power-of-two number of line cards (ψ = 6).
//!
//! Run: `cargo run --release --example table_partitioning`

use spal::core::bits::{eta_for, score_table, select_bits};
use spal::core::partition::{rot_partitions, Partitioning};
use spal::rib::parse::parse_table;
use spal::rib::synth;

fn main() {
    // The paper's 8-bit toy prefixes P1..P7, embedded in the top octet
    // (101* => 160.0.0.0/3, and so on), written in the text table format.
    let toy = parse_table(
        "160.0.0.0/3 1\n\
         176.0.0.0/4 2\n\
         64.0.0.0/2 3\n\
         56.0.0.0/6 4\n\
         147.0.0.0/8 5\n\
         152.0.0.0/5 6\n\
         100.0.0.0/6 7\n",
    )
    .expect("toy table parses");

    println!("== paper's Sec. 3.1 example ==");
    let scores = score_table(&toy, 7);
    println!("bit  phi*  |phi0-phi1|  max-subset");
    for s in &scores {
        println!(
            "b{:<3} {:>4} {:>11} {:>11}",
            s.bit, s.phi_star, s.imbalance, s.max_size
        );
    }
    let bits = select_bits(&toy, 2);
    let parts = rot_partitions(&toy, &bits);
    println!(
        "chosen bits {:?} -> partition sizes {:?} (paper: {{b0, b4}} -> {{2,2,3,3}})",
        bits,
        parts.iter().map(|p| p.len()).collect::<Vec<_>>()
    );

    println!("\n== backbone table, psi = 6 (not a power of two) ==");
    let table = synth::synthesize(&synth::SynthConfig::sized(30_000, 99));
    let psi = 6;
    let eta = eta_for(psi); // 3 bits -> 8 groups onto 6 LCs
    let bits = select_bits(&table, eta);
    let part = Partitioning::new(&table, bits.clone(), psi);
    let stats = part.stats(&table);
    println!(
        "table: {} prefixes; bits {:?} ({eta} bits, {} groups)",
        table.len(),
        bits,
        part.groups()
    );
    println!(
        "per-LC tables: min {} / max {} prefixes, replication overhead {:.2}%",
        stats.min_size,
        stats.max_size,
        stats.replication_overhead() * 100.0
    );

    // Show where a few concrete destinations are homed.
    println!("\nexample homes:");
    for e in table.entries().iter().step_by(table.len() / 5).take(5) {
        let addr = e.prefix.first_addr();
        println!(
            "  {} -> home LC {}",
            spal::rib::prefix::format_addr(addr),
            part.home_of(addr)
        );
    }

    // The home LC's partition always yields the full-table answer.
    let tables = part.forwarding_tables(&table);
    let mut checked = 0;
    for e in table.entries().iter().step_by(37) {
        let addr = e.prefix.last_addr();
        let home = part.home_of(addr) as usize;
        assert_eq!(
            tables[home].longest_match(addr).map(|m| m.next_hop),
            table.longest_match(addr).map(|m| m.next_hop)
        );
        checked += 1;
    }
    println!("\nverified {checked} addresses: home-LC lookup == full-table lookup");
}
