//! Cycle-accurate simulation of an 8-LC SPAL router under WorldCup-like
//! traffic — the §5 methodology end to end, with the per-LC breakdown.
//!
//! Run: `cargo run --release --example router_simulation`

use spal::cache::LrCacheConfig;
use spal::rib::synth;
use spal::sim::{RouterKind, RouterSim, SimConfig};
use spal::traffic::{preset, PresetName};

fn main() {
    let table = synth::rt1(0xA11CE); // 41,709 prefixes, like the paper's RT_1
    let psi = 8;
    let packets_per_lc = 100_000;

    // One backbone trace (D_75 preset), split round-robin across LCs.
    let trace = preset(PresetName::D75).generate(&table, psi * packets_per_lc, 7);
    let traces = trace.split(psi);

    let config = SimConfig {
        kind: RouterKind::Spal,
        psi,
        cache: LrCacheConfig::paper(4096),
        packets_per_lc,
        seed: 7,
        ..SimConfig::default()
    };
    println!(
        "simulating {} packets across {psi} LCs at 40 Gbps (5 ns cycles, 40-cycle FE)…",
        psi * packets_per_lc
    );
    let report = RouterSim::new(&table, &traces, config).run();

    println!("\n== router ==");
    println!("{}", report.summary());
    println!(
        "simulated {} cycles = {:.2} ms of wall time at 5 ns/cycle",
        report.cycles,
        report.cycles as f64 * 5e-9 * 1e3
    );
    println!(
        "fabric: {} messages, mean transit {:.1} cycles",
        report.fabric.sent,
        report.fabric.mean_transit()
    );

    println!("\n== per line card ==");
    println!("lc  packets  hit-rate  FE-lookups  FE-util  fe-queue-peak");
    for lc in &report.per_lc {
        println!(
            "{:>2}  {:>7}  {:>8.3}  {:>10}  {:>7.3}  {:>13}",
            lc.lc,
            lc.packets,
            lc.cache.hit_rate(),
            lc.fe_lookups,
            lc.fe_busy_cycles as f64 / report.cycles as f64,
            lc.fe_queue_high_water,
        );
    }

    println!(
        "\nmean lookup {:.2} cycles vs the 40-cycle conventional baseline → {:.1}x faster",
        report.mean_lookup_cycles(),
        40.0 / report.mean_lookup_cycles()
    );
}
