//! Capacity planning: the workload from the paper's introduction — a
//! backbone operator sizing line cards for a growing BGP table. Given a
//! target forwarding rate, find the smallest LR-cache that reaches it,
//! and show the SRAM budget per LC with and without SPAL.
//!
//! Run: `cargo run --release --example capacity_planning`

use spal::cache::LrCacheConfig;
use spal::core::bits::{eta_for, select_bits};
use spal::core::partition::Partitioning;
use spal::core::{ForwardingTable, LpmAlgorithm};
use spal::lpm::Lpm;
use spal::rib::synth;
use spal::sim::{RouterKind, RouterSim, SimConfig};
use spal::traffic::{preset, PresetName};

fn main() {
    let table = synth::rt2(0xB0B); // 140,838 prefixes
    let psi = 16;
    let packets_per_lc = 100_000;
    let target_mpps_per_lc = 21.0; // the paper's headline per-LC rate

    println!(
        "planning a {psi}-LC router over {} prefixes; target {target_mpps_per_lc} Mpps/LC\n",
        table.len()
    );

    // SRAM per LC: whole trie vs SPAL partition (Lulea).
    let whole = ForwardingTable::build(LpmAlgorithm::Lulea, &table).storage_bytes();
    let bits = select_bits(&table, eta_for(psi));
    let part = Partitioning::new(&table, bits, psi);
    let max_part = part
        .forwarding_tables(&table)
        .iter()
        .map(|t| ForwardingTable::build(LpmAlgorithm::Lulea, t).storage_bytes())
        .max()
        .expect("psi >= 1");
    println!(
        "trie SRAM per LC  (whole table): {:>8.1} KB",
        whole as f64 / 1024.0
    );
    println!(
        "trie SRAM per LC (SPAL, psi=16): {:>8.1} KB",
        max_part as f64 / 1024.0
    );

    // Sweep the LR-cache size until the target rate is met.
    println!("\nbeta     mean-cycles  Mpps/LC  SRAM/LC(trie+cache) KB  meets target");
    let trace = preset(PresetName::D81).generate(&table, psi * packets_per_lc, 11);
    let traces = trace.split(psi);
    let mut recommended = None;
    for beta in [512usize, 1024, 2048, 4096, 8192] {
        let config = SimConfig {
            kind: RouterKind::Spal,
            psi,
            cache: LrCacheConfig::paper(beta),
            packets_per_lc,
            seed: 11,
            ..SimConfig::default()
        };
        let report = RouterSim::new(&table, &traces, config).run();
        let mpps = report.latency.lookups_per_second() / 1e6;
        let sram_kb = (max_part + beta * 6) as f64 / 1024.0;
        let ok = mpps >= target_mpps_per_lc;
        if ok && recommended.is_none() {
            recommended = Some((beta, mpps, sram_kb));
        }
        println!(
            "{:>5}  {:>11.2}  {:>7.1}  {:>22.1}  {}",
            beta,
            report.mean_lookup_cycles(),
            mpps,
            sram_kb,
            if ok { "yes" } else { "no" }
        );
    }
    match recommended {
        Some((beta, mpps, sram)) => println!(
            "\nrecommendation: beta = {beta} blocks -> {mpps:.1} Mpps/LC with {sram:.1} KB SRAM/LC \
             ({:.0} Mpps router-wide)",
            mpps * psi as f64
        ),
        None => println!("\nno cache size met the target; increase psi or beta"),
    }
}
