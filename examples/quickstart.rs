//! Quickstart: build a SPAL router over a synthetic BGP table and watch
//! the §3.3 lookup flows happen.
//!
//! Run: `cargo run --release --example quickstart`

use spal::cache::LrCacheConfig;
use spal::core::{LookupOutcome, LpmAlgorithm, SpalRouter, SpalRouterConfig};
use spal::rib::synth;

fn main() {
    // A 10,000-prefix routing table (deterministic; seed 42).
    let table = synth::synthesize(&synth::SynthConfig::sized(10_000, 42));
    println!("routing table: {} prefixes", table.len());

    // A 4-LC SPAL router running the Lulea trie with 4K-block LR-caches.
    let config = SpalRouterConfig {
        psi: 4,
        algorithm: LpmAlgorithm::Lulea,
        cache: LrCacheConfig::paper(4096),
    };
    let mut router = SpalRouter::build(&table, &config);
    println!(
        "partitioning bits: {:?} (chosen by the Sec. 3.1 criteria)",
        router.partitioning().bits()
    );

    // Pick an address that is homed at LC 2 and look it up from LC 0.
    let addr = table
        .entries()
        .iter()
        .map(|e| e.prefix.first_addr())
        .find(|&a| router.partitioning().home_of(a) == 2)
        .expect("some address homes at LC 2");
    println!(
        "address {} homes at LC {}",
        spal::rib::prefix::format_addr(addr),
        router.partitioning().home_of(addr)
    );

    let steps = [
        ("first lookup from LC 0", 0u16),
        ("second lookup from LC 0", 0),
        ("first lookup from LC 1", 1),
        ("lookup from the home LC 2", 2),
    ];
    for (what, lc) in steps {
        let (nh, outcome) = router.lookup(lc, addr);
        let explain = match outcome {
            LookupOutcome::LocalCacheHit => "hit in this LC's LR-cache (1 cycle)",
            LookupOutcome::LocalFeLookup => "local FE ran the matching algorithm (~40 cycles)",
            LookupOutcome::RemoteCacheHit => {
                "home LC's LR-cache answered over the fabric (~6 cycles)"
            }
            LookupOutcome::RemoteFeLookup => "home FE ran the matching algorithm (~45 cycles)",
        };
        println!("{what}: next hop {:?} — {explain}", nh.map(|h| h.0));
    }

    println!(
        "\nFE lookups per LC: {:?} (the home FE worked exactly once)",
        router.fe_lookups()
    );
    println!(
        "fabric requests: {} (later lookups were served from caches)",
        router.fabric_requests()
    );

    // A routing update flushes every LR-cache (Sec. 3.2).
    router.flush_caches();
    let (_, outcome) = router.lookup(0, addr);
    println!("after a table-update flush, LC 0 lookup is a {outcome:?} again");
}
