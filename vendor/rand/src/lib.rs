//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`RngCore`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`, `fill`), and the
//! [`rngs::StdRng`] / [`rngs::SmallRng`] generator types.
//!
//! The build environment has no network access and no crates.io mirror,
//! so the real crate cannot be fetched; this crate exists purely so the
//! workspace resolves and builds offline. Both generators are
//! xoshiro256++ seeded through SplitMix64 — deterministic, seedable,
//! statistically solid for simulation workloads — but their output
//! streams intentionally make no attempt to match the upstream ChaCha12
//! (`StdRng`) or xoshiro256++ (`SmallRng`) byte-for-byte. Everything in
//! this repository treats seeded RNG output as "some fixed deterministic
//! stream", never as a specific published stream, so that difference is
//! invisible to the test suite. There is no `thread_rng`/OS entropy on
//! purpose: every generator must be explicitly seeded.

pub mod distributions;
pub mod rngs;

use distributions::{Distribution, SampleRange, Standard};

/// Core generator interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is
/// provided — the workspace never uses byte-array seeds).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`] as in the real crate.
pub trait Rng: RngCore {
    /// Sample a value of `T` from the standard (uniform-bits) distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen::<f64>() < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(6u64..=74);
            assert!((6..=74).contains(&x));
            let y = rng.gen_range(0usize..13);
            assert!(y < 13);
            let f = rng.gen_range(0.0f64..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_800..3_200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 11];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
