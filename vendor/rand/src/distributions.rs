//! Distributions: the `Standard` uniform-bits distribution and uniform
//! range sampling, mirroring the shapes of `rand::distributions`.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The uniform "all bit patterns" distribution (floats: uniform in
/// `[0, 1)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty => $conv:expr),+ $(,)?) => {
        $(impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                let f: fn(&mut R) -> $t = $conv;
                f(rng)
            }
        })+
    };
}

standard_int! {
    u8 => |r| r.next_u32() as u8,
    u16 => |r| r.next_u32() as u16,
    u32 => |r| r.next_u32(),
    u64 => |r| r.next_u64(),
    usize => |r| r.next_u64() as usize,
    i8 => |r| r.next_u32() as i8,
    i16 => |r| r.next_u32() as i16,
    i32 => |r| r.next_u32() as i32,
    i64 => |r| r.next_u64() as i64,
    isize => |r| r.next_u64() as isize,
    u128 => |r| ((r.next_u64() as u128) << 64) | r.next_u64() as u128,
    i128 => |r| (((r.next_u64() as u128) << 64) | r.next_u64() as u128) as i128,
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),+ $(,)?) => {
        $(impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    let any: Self = Standard.sample(rng);
                    return any;
                }
                // Widening multiply keeps the modulo bias below 2^-64 for
                // every span this workspace uses.
                let draw = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        })+
    };
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        debug_assert!(lo <= hi);
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            return Standard.sample(rng);
        }
        let draw: u128 = Standard.sample(rng);
        lo.wrapping_add(draw % span)
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit: f64 = Standard.sample(rng);
        lo + unit * (hi - lo)
    }
}

/// Range-like arguments accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy + OneStep> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on an empty range");
        T::sample_inclusive(rng, self.start, self.end.prev())
    }
}

impl<T: SampleUniform + PartialOrd + Copy + OneStep> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on an empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Helper: the value one step below `self` (for half-open ranges).
pub trait OneStep {
    /// Predecessor of `self`.
    fn prev(self) -> Self;
}

macro_rules! one_step_int {
    ($($t:ty),+ $(,)?) => {
        $(impl OneStep for $t {
            #[inline]
            fn prev(self) -> Self {
                self - 1
            }
        })+
    };
}

one_step_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl OneStep for f64 {
    #[inline]
    fn prev(self) -> Self {
        // Half-open float ranges sample `[lo, hi)` directly; the uniform
        // draw already excludes 1.0, so the bound is unchanged.
        self
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2_000 {
            match rng.gen_range(0u8..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn u128_standard_uses_both_halves() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: u128 = rng.gen();
        assert_ne!(v >> 64, 0);
        assert_ne!(v & u128::from(u64::MAX), 0);
    }
}
