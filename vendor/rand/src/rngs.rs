//! Generator types: [`StdRng`] and [`SmallRng`], both xoshiro256++
//! seeded via SplitMix64 (deterministic; see the crate docs for why the
//! streams differ from upstream `rand`).

use crate::{RngCore, SeedableRng};

/// xoshiro256++ core state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as the xoshiro authors recommend.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256pp {
            s: [next(), next(), next(), next()],
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

macro_rules! rng_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name(Xoshiro256pp);

        impl SeedableRng for $name {
            fn seed_from_u64(state: u64) -> Self {
                $name(Xoshiro256pp::seed_from_u64(state))
            }
        }

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                (self.0.next_u64() >> 32) as u32
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
    };
}

rng_type! {
    /// The "standard" generator (upstream: ChaCha12; here: xoshiro256++).
    StdRng
}
rng_type! {
    /// The small/fast generator (upstream and here: xoshiro256++).
    SmallRng
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_xoshiro_vector() {
        // Reference sequence for xoshiro256++ with state seeded by
        // SplitMix64(0) — checked against the published algorithm.
        let mut rng = StdRng::seed_from_u64(0);
        let first = rng.next_u64();
        let mut again = StdRng::seed_from_u64(0);
        assert_eq!(first, again.next_u64());
        // State advances.
        assert_ne!(rng.next_u64(), first);
    }

    #[test]
    fn std_and_small_share_algorithm_but_api_types_differ() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
