//! Offline stand-in for the subset of `criterion` the workspace's
//! benches use: `criterion_group!`/`criterion_main!`, `Criterion::
//! {bench_function, benchmark_group}`, group `sample_size`/`throughput`/
//! `finish`, `Bencher::iter`, `black_box`, and `Throughput`.
//!
//! The build environment cannot fetch the real crate. This one measures
//! each benchmark with a short warm-up followed by `sample_size` timed
//! samples and prints a one-line mean/min per benchmark — enough to
//! eyeball regressions. The statistically rigorous perf gate for this
//! repo is the `bench_gate` binary in `spal-bench`, which does not
//! depend on this crate's measurement quality.

use std::time::{Duration, Instant};

/// Re-exported compiler optimisation barrier.
pub use std::hint::black_box;

/// Units for throughput annotation (display only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Accept (and ignore) CLI arguments, as the real crate does in
    /// `criterion_main!`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmark a single function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.sample_size, None, f);
        self
    }

    /// Open a named group sharing settings across related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Print the closing summary (no-op).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Annotate throughput (reported as elements or bytes per second).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark one function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, self.throughput, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, recording one sample for the enclosing driver.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // One untimed warm-up pass.
    let mut warm = Bencher {
        samples: Vec::new(),
    };
    f(&mut warm);
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    let budget = Duration::from_secs(3);
    let started = Instant::now();
    for _ in 0..sample_size {
        f(&mut b);
        if started.elapsed() > budget {
            break; // keep slow benches bounded
        }
    }
    if b.samples.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(" ({:.1} Melem/s)", n as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                " ({:.1} MiB/s)",
                n as f64 / mean.as_secs_f64() / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!(
        "{id}: mean {mean:?} / min {min:?} over {} samples{rate}",
        b.samples.len()
    );
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| black_box(1 + 1))
        });
        // warm-up + sample_size invocations of the closure
        assert_eq!(runs, 21);
    }

    #[test]
    fn group_settings_apply() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut iters = 0usize;
        g.bench_function("f", |b| b.iter(|| iters += 1));
        g.finish();
        assert_eq!(iters, 4); // 1 warm-up + 3 samples
    }
}
