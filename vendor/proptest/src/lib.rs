//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the real crate is
//! unavailable; this crate keeps the property-test suites compiling and
//! running. It preserves the *testing semantics* that matter here —
//! deterministic case generation per (test name, case index), the
//! strategy combinators the suites use, and `prop_assert*` reporting —
//! but deliberately omits shrinking and failure persistence: a failing
//! case panics with its seed and message instead of minimising. The
//! `*.proptest-regressions` files in the repo are ignored.
//!
//! Supported surface: `proptest!` (with optional
//! `#![proptest_config(...)]`), `any::<T>()`, ranges as strategies,
//! tuples of strategies, `Just`, `prop_map`, `prop_oneof!` (weighted and
//! unweighted), `prop::sample::select`, `proptest::collection::{vec,
//! btree_set, hash_set}`, `proptest::option::of`, and
//! `ProptestConfig::with_cases`.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` times with deterministically seeded inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                $crate::test_runner::run_cases(stringify!($name), &__cfg, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample_value(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((($weight) as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert within a property test; failure rejects the case with a
/// message instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!` for equality, printing both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            left,
            format!($($fmt)+)
        );
    }};
}
