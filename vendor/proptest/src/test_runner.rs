//! Case execution: deterministic per-(test, case) seeding, no shrinking.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (only `cases` is meaningful here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; these suites all override it,
        // and 64 keeps any future un-configured block fast.
        ProptestConfig { cases: 64 }
    }
}

/// A failed case (the `Err` side of a property body).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Reject the current case with `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// FNV-1a, so each test gets a stable, name-derived seed stream.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `body` for every case, panicking (with the case number, so a
/// failure is reproducible — generation is deterministic) on the first
/// failure.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    let base = fnv1a(name);
    for case in 0..config.cases {
        let seed = base ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest '{name}' failed at case {case}/{}: {e}",
                config.cases
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_exactly_cases_times() {
        let mut n = 0;
        run_cases("counter", &ProptestConfig::with_cases(17), |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_panics_with_case_number() {
        run_cases("fails", &ProptestConfig::with_cases(5), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
