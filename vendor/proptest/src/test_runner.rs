//! Case execution: deterministic per-(test, case) seeding, no shrinking.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (only `cases` is meaningful here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; these suites all override it,
        // and 64 keeps any future un-configured block fast.
        ProptestConfig { cases: 64 }
    }
}

/// A failed case (the `Err` side of a property body).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Reject the current case with `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// FNV-1a, so each test gets a stable, name-derived seed stream.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Cases to actually run: the config's count unless the
/// `PROPTEST_CASES` environment variable overrides it — `0` or an
/// unparsable value are ignored. CI cranks this up on the nightly
/// schedule; locally it shortens red-green loops
/// (`PROPTEST_CASES=8 cargo test`).
fn effective_cases(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => match v.trim().parse::<u32>() {
            Ok(n) if n > 0 => n,
            _ => config.cases,
        },
        Err(_) => config.cases,
    }
}

/// Run `body` for every case, panicking (with the case number, so a
/// failure is reproducible — generation is deterministic) on the first
/// failure. Case count honours the `PROPTEST_CASES` env var (see
/// [`effective_cases`]); the per-case seed depends only on the test
/// name and case index, so case `k` generates the same inputs whatever
/// the total count.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    let base = fnv1a(name);
    let cases = effective_cases(config);
    for case in 0..cases {
        let seed = base ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = body(&mut rng) {
            panic!("proptest '{name}' failed at case {case}/{cases}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `PROPTEST_CASES` is process-global: tests touching it hold this
    /// lock so the parallel test harness cannot interleave them.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn runs_exactly_cases_times() {
        let _env = ENV_LOCK.lock().unwrap();
        let mut n = 0;
        run_cases("counter", &ProptestConfig::with_cases(17), |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    fn env_var_overrides_case_count() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("PROPTEST_CASES", "5");
        let mut n = 0;
        run_cases("env-override", &ProptestConfig::with_cases(100), |_| {
            n += 1;
            Ok(())
        });
        // Junk and zero fall back to the config.
        std::env::set_var("PROPTEST_CASES", "zero");
        let mut m = 0;
        run_cases("env-junk", &ProptestConfig::with_cases(3), |_| {
            m += 1;
            Ok(())
        });
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(n, 5);
        assert_eq!(m, 3);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_panics_with_case_number() {
        run_cases("fails", &ProptestConfig::with_cases(5), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
