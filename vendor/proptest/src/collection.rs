//! Collection strategies: `vec`, `btree_set`, `hash_set`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Vectors of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample_value(rng)).collect()
    }
}

/// `BTreeSet`s whose size lands in `size` (best effort: with a small
/// element domain, duplicate draws may leave the set below target).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 10 + 32 {
            set.insert(self.element.sample_value(rng));
            attempts += 1;
        }
        set
    }
}

/// `HashSet` analogue of [`btree_set`].
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = HashSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 10 + 32 {
            set.insert(self.element.sample_value(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_sizes_obey_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = vec(0u32..10, 3..7);
        for _ in 0..200 {
            let v = s.sample_value(&mut rng);
            assert!((3..7).contains(&v.len()), "len {}", v.len());
        }
        let exact = vec(0u32..10, 5usize);
        assert_eq!(exact.sample_value(&mut rng).len(), 5);
    }

    #[test]
    fn sets_reach_target_when_domain_allows() {
        let mut rng = StdRng::seed_from_u64(8);
        let s = btree_set(0u32..1000, 10..=10);
        assert_eq!(s.sample_value(&mut rng).len(), 10);
        // Tiny domain: can't exceed it, never loops forever.
        let tiny = hash_set(0u8..2, 1..=2);
        let got = tiny.sample_value(&mut rng);
        assert!(!got.is_empty() && got.len() <= 2);
    }
}
