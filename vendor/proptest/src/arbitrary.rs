//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use rand::distributions::{Distribution, Standard};
use rand::rngs::StdRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arb_sample(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),+ $(,)?) => {
        $(impl Arbitrary for $t {
            fn arb_sample(rng: &mut StdRng) -> Self {
                Standard.sample(rng)
            }
        })+
    };
}

arbitrary_via_standard!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, f64, f32);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut StdRng) -> T {
        T::arb_sample(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_bool_takes_both_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = any::<bool>();
        let trues = (0..100).filter(|_| s.sample_value(&mut rng)).count();
        assert!((20..80).contains(&trues));
    }
}
