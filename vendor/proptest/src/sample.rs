//! Uniform choice from an explicit list (`prop::sample::select`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A strategy selecting uniformly from `items`.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select requires a non-empty list");
    Select { items }
}

/// Output of [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut StdRng) -> T {
        self.items[rng.gen_range(0..self.items.len())].clone()
    }
}
