//! The [`Strategy`] trait and the combinators the workspace uses.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply samples a value from the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Sample one value.
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample_value(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// Weighted choice among boxed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// String-pattern strategies: real proptest interprets a `&str` as a
/// regex over generated strings. This stand-in supports the one shape
/// the workspace uses — `.{m,n}` (any chars, length in `[m, n]`) — and
/// rejects anything else loudly so a new pattern is noticed immediately.
impl Strategy for str {
    type Value = String;

    fn sample_value(&self, rng: &mut StdRng) -> String {
        let inner = self
            .strip_prefix(".{")
            .and_then(|s| s.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported string strategy pattern {self:?}"));
        let (lo, hi) = inner
            .split_once(',')
            .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
            .unwrap_or_else(|| panic!("unsupported string strategy pattern {self:?}"));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| {
                // Bias toward the characters the parsers under test care
                // about, with occasional arbitrary unicode.
                const COMMON: &[u8] = b"0123456789./ \t#abcxyzABC:-\n";
                match rng.gen_range(0u32..10) {
                    0 => char::from_u32(rng.gen_range(1u32..0xD800)).unwrap_or('\u{FFFD}'),
                    1..=3 => rng.gen_range(b' '..=b'~') as char,
                    _ => COMMON[rng.gen_range(0..COMMON.len())] as char,
                }
            })
            .collect()
    }
}

macro_rules! range_strategy {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+
    };
}

range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut r = rng();
        let s = (0u8..=32, 5u32..10);
        for _ in 0..500 {
            let (a, b) = s.sample_value(&mut r);
            assert!(a <= 32);
            assert!((5..10).contains(&b));
        }
    }

    #[test]
    fn map_and_just() {
        let mut r = rng();
        let s = Just(7u32).prop_map(|x| x * 2);
        assert_eq!(s.sample_value(&mut r), 14);
    }

    #[test]
    fn oneof_respects_weights() {
        let mut r = rng();
        let s: OneOf<u32> = OneOf::new(vec![(9, Just(0u32).boxed()), (1, Just(1u32).boxed())]);
        let ones: u32 = (0..2_000).map(|_| s.sample_value(&mut r)).sum();
        assert!((100..350).contains(&ones), "ones {ones}");
    }
}
