//! Optional values (`proptest::option::of`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// `Some` from the inner strategy three times out of four, else `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Output of [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
        if rng.gen_bool(0.75) {
            Some(self.inner.sample_value(rng))
        } else {
            None
        }
    }
}
