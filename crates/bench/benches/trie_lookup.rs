//! Criterion micro-bench: longest-prefix-match lookup latency for each
//! trie over a backbone-scale table (wall-clock counterpart of the E4
//! memory-access counts).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spal_core::{ForwardingTable, LpmAlgorithm};
use spal_lpm::Lpm;
use spal_rib::synth;

fn bench_lookups(c: &mut Criterion) {
    let table = synth::synthesize(&synth::SynthConfig::sized(40_000, 77));
    let mut rng = StdRng::seed_from_u64(7);
    let addrs: Vec<u32> = (0..4096)
        .map(|_| {
            let e = table.entries()[rng.gen_range(0..table.len())];
            e.prefix.first_addr() + (rng.gen::<u64>() % e.prefix.size()) as u32
        })
        .collect();

    let mut group = c.benchmark_group("trie_lookup");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    for (name, algo) in [
        ("binary", LpmAlgorithm::Binary),
        ("dp", LpmAlgorithm::Dp),
        ("lulea", LpmAlgorithm::Lulea),
        ("lctrie", LpmAlgorithm::Lc { fill_factor: 0.25 }),
    ] {
        let fwd = ForwardingTable::build(algo, &table);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for &a in &addrs {
                    if let Some(nh) = fwd.lookup(black_box(a)) {
                        acc = acc.wrapping_add(nh.0 as u32);
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let table = synth::synthesize(&synth::SynthConfig::sized(20_000, 78));
    let mut group = c.benchmark_group("trie_build_20k");
    group.sample_size(10);
    for (name, algo) in [
        ("dp", LpmAlgorithm::Dp),
        ("lulea", LpmAlgorithm::Lulea),
        ("lctrie", LpmAlgorithm::Lc { fill_factor: 0.25 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| ForwardingTable::build(algo, black_box(&table)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookups, bench_build);
criterion_main!(benches);
