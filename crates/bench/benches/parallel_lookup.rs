//! Criterion bench: multi-threaded lookup throughput over shared
//! read-only forwarding tables — the software-router adoption path
//! (every trie is `Send + Sync` once built, so worker threads share one
//! `Arc` without locks).
//!
//! NB: on a single-core host (e.g. a CPU-quota'd container, `nproc` = 1)
//! the thread counts time-slice and throughput stays flat; scaling shows
//! on real multi-core machines.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spal_core::{ForwardingTable, LpmAlgorithm};
use spal_lpm::Lpm;
use spal_rib::synth;
use std::sync::Arc;

fn bench_parallel(c: &mut Criterion) {
    let table = synth::synthesize(&synth::SynthConfig::sized(40_000, 55));
    let fwd: Arc<ForwardingTable> = Arc::new(ForwardingTable::build(LpmAlgorithm::Lulea, &table));
    let mut rng = StdRng::seed_from_u64(4);
    let addrs: Arc<Vec<u32>> = Arc::new(
        (0..65_536)
            .map(|_| {
                let e = table.entries()[rng.gen_range(0..table.len())];
                e.prefix.first_addr() + (rng.gen::<u64>() % e.prefix.size()) as u32
            })
            .collect(),
    );

    let mut group = c.benchmark_group("parallel_lulea_lookup");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    group.sample_size(20);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| {
                let chunk = addrs.len() / threads;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let fwd = Arc::clone(&fwd);
                            let addrs = Arc::clone(&addrs);
                            scope.spawn(move || {
                                let lo = t * chunk;
                                let hi = if t == threads - 1 {
                                    addrs.len()
                                } else {
                                    lo + chunk
                                };
                                let mut acc = 0u32;
                                for &a in &addrs[lo..hi] {
                                    if let Some(nh) = fwd.lookup(a) {
                                        acc = acc.wrapping_add(nh.0 as u32);
                                    }
                                }
                                acc
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker"))
                        .fold(0u32, u32::wrapping_add)
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
