//! Criterion micro-bench: partitioning-bit selection (§3.1) and
//! ROT-partition construction over backbone-scale tables.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spal_core::bits::{select_bits, select_bits_with, BitSelectionStrategy};
use spal_core::partition::Partitioning;
use spal_rib::synth;

fn bench_bit_selection(c: &mut Criterion) {
    let table = synth::synthesize(&synth::SynthConfig::sized(40_000, 81));
    let mut group = c.benchmark_group("bit_selection_40k");
    group.sample_size(10);
    group.bench_function("eta4_minmax", |b| {
        b.iter(|| select_bits(black_box(&table), 4))
    });
    group.bench_function("eta4_lexicographic", |b| {
        b.iter(|| {
            select_bits_with(
                black_box(&table),
                4,
                31,
                BitSelectionStrategy::Lexicographic,
            )
        })
    });
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let table = synth::synthesize(&synth::SynthConfig::sized(40_000, 82));
    let bits = select_bits(&table, 4);
    let mut group = c.benchmark_group("partition_40k");
    group.sample_size(10);
    group.bench_function("build_psi16", |b| {
        b.iter(|| {
            let p = Partitioning::new(black_box(&table), bits.clone(), 16);
            p.forwarding_tables(&table).len()
        })
    });
    group.bench_function("home_of", |b| {
        let p = Partitioning::new(&table, bits.clone(), 16);
        b.iter(|| {
            let mut acc = 0u32;
            for a in (0..100_000u32).step_by(97) {
                acc = acc.wrapping_add(p.home_of(black_box(a.wrapping_mul(2654435761))) as u32);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bit_selection, bench_partitioning);
criterion_main!(benches);
