//! Criterion micro-bench: LR-cache probe/reserve/fill throughput under
//! a Zipf reference stream — the per-cycle operation the simulator
//! models as the single cache port.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spal_cache::{LrCache, LrCacheConfig, Origin, ProbeResult};
use spal_traffic::locality::{LocalityModel, LocalitySampler};

fn zipf_addresses(n: usize, distinct: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampler = LocalitySampler::new(LocalityModel::Zipf { alpha: 1.1 }, distinct);
    (0..n)
        .map(|_| (sampler.next_index(&mut rng) as u32).wrapping_mul(2654435761))
        .collect()
}

fn bench_probe_fill(c: &mut Criterion) {
    let addrs = zipf_addresses(8192, 20_000, 3);
    let mut group = c.benchmark_group("lr_cache");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    for (name, blocks) in [("1K", 1024usize), ("4K", 4096), ("8K", 8192)] {
        group.bench_function(format!("probe_fill_{name}"), |b| {
            let mut cache: LrCache<u16> = LrCache::new(LrCacheConfig::paper(blocks));
            b.iter(|| {
                let mut hits = 0u32;
                for &a in &addrs {
                    match cache.probe(black_box(a)) {
                        ProbeResult::Hit { .. } => hits += 1,
                        _ => {
                            let _ = cache.fill(a, 1, Origin::Loc);
                        }
                    }
                }
                hits
            })
        });
    }
    // The full miss path with reservation and waiting-entry completion.
    group.bench_function("reserve_fill_cycle", |b| {
        let mut cache: LrCache<u16> = LrCache::new(LrCacheConfig::paper(4096));
        b.iter(|| {
            for &a in &addrs[..1024] {
                if matches!(cache.probe(a), ProbeResult::Miss) {
                    let _ = cache.reserve(a);
                    let _ = cache.fill(a, 1, Origin::Rem);
                }
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_probe_fill);
criterion_main!(benches);
