//! Criterion macro-bench: end-to-end simulator throughput (cycles and
//! packets per wall-second) on a small SPAL configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use spal_cache::LrCacheConfig;
use spal_rib::synth;
use spal_sim::{RouterKind, RouterSim, SimConfig};
use spal_traffic::{preset, PresetName, TracePreset};

fn bench_sim(c: &mut Criterion) {
    let table = synth::synthesize(&synth::SynthConfig::sized(20_000, 91));
    let p = TracePreset {
        distinct: 4_000,
        ..preset(PresetName::D75)
    };
    let traces = p.generate(&table, 4 * 5_000, 5).split(4);
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("spal_psi4_5k_packets", |b| {
        b.iter(|| {
            let config = SimConfig {
                kind: RouterKind::Spal,
                psi: 4,
                cache: LrCacheConfig {
                    blocks: 1024,
                    ..LrCacheConfig::default()
                },
                packets_per_lc: 5_000,
                seed: 3,
                ..SimConfig::default()
            };
            RouterSim::new(&table, &traces, config).run().cycles
        })
    });
    group.bench_function("cache_only_psi4_5k_packets", |b| {
        b.iter(|| {
            let config = SimConfig {
                kind: RouterKind::CacheOnly,
                psi: 4,
                cache: LrCacheConfig {
                    blocks: 1024,
                    ..LrCacheConfig::default()
                },
                packets_per_lc: 5_000,
                seed: 3,
                ..SimConfig::default()
            };
            RouterSim::new(&table, &traces, config).run().cycles
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
