//! Plain-text table rendering for experiment output, mirroring the rows
//! and series of the paper's tables and figures.

/// Accumulates rows and prints an aligned text table.
#[derive(Debug, Default)]
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        TablePrinter {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (cells are pre-formatted).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[c]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Render as CSV (RFC-4180-ish: fields containing commas or quotes
    /// are quoted, quotes doubled) for downstream plotting.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let line = |cells: &[String]| {
            let row: Vec<String> = cells.iter().map(|c| field(c)).collect();
            row.join(",") + "\n"
        };
        out.push_str(&line(&self.headers));
        for row in &self.rows {
            out.push_str(&line(row));
        }
        out
    }

    /// Write the CSV rendering to a file.
    pub fn save_csv(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Best-effort CSV drop into `results/csv/<name>.csv` (for plotting);
    /// silently skipped when the directory cannot be created (e.g. the
    /// binary runs outside the repository).
    pub fn save_results_csv(&self, name: &str) {
        if std::fs::create_dir_all("results/csv").is_ok() {
            let _ = self.save_csv(&format!("results/csv/{name}.csv"));
        }
    }
}

/// Format a byte count as KiB with one decimal, as the paper's Fig. 3
/// axis does ("Total SRAM (in Kbytes)").
pub fn kbytes(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TablePrinter::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name") && lines[0].contains("value"));
        assert!(lines[3].contains("long-name") && lines[3].contains("12345"));
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = TablePrinter::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn kbytes_format() {
        assert_eq!(kbytes(1024), "1.0");
        assert_eq!(kbytes(265_933), "259.7");
    }

    #[test]
    fn csv_escapes_fields() {
        let mut t = TablePrinter::new(&["name", "note"]);
        t.row(&["a".into(), "plain".into()]);
        t.row(&["b,c".into(), "has \"quotes\"".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,note");
        assert_eq!(lines[1], "a,plain");
        assert_eq!(lines[2], "\"b,c\",\"has \"\"quotes\"\"\"");
    }
}
