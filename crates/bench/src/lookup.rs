//! Trace-replay lookup harness: measure raw LPM throughput (host-side
//! lookups per wallclock second) for any engine, scalar vs batched,
//! across one or more worker threads.
//!
//! The harness shards one trace into contiguous per-thread slices
//! ([`Trace::shard_slices`]) and replays every shard through a shared
//! `Arc<dyn Lpm + Send + Sync>` under `std::thread::scope`. Each worker
//! folds its results into a [`ReplayChecksum`] — the sum survives into
//! the return value, so the optimizer cannot discard the lookups, and
//! scalar/batch runs over the same trace must produce the *same*
//! checksum (spot-checking the batch contract on real traffic every
//! time the benchmark runs).
//!
//! Both the full `bench_lookup` sweep binary and `bench_gate`'s quick
//! lookup gate drive this module, so their numbers are comparable.

use spal_core::{ForwardingTable, LpmAlgorithm};
use spal_lpm::multibit::MultibitTrie;
use spal_lpm::{CountedLookup, Lpm};
use spal_rib::{synth, RoutingTable};
use spal_traffic::{preset, LocalityModel, PresetName, Trace, TracePreset};
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// Addresses per `lookup_batch` call in batch mode: big enough to
/// amortize the per-chunk virtual dispatch, small enough that the out
/// buffer stays in L1.
pub const DEFAULT_BATCH: usize = 32;

/// Repetitions per measurement; the minimum-wall run is kept.
pub const REPS: usize = 5;

/// How a replay drives the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// One `lookup_counted` virtual call per address — the pre-batch
    /// hot path, kept as the baseline.
    Scalar,
    /// `lookup_batch` over contiguous chunks of `size` addresses.
    Batch { size: usize },
}

impl ReplayMode {
    /// Short label for reports ("scalar", "batch32", …).
    pub fn label(self) -> String {
        match self {
            ReplayMode::Scalar => "scalar".into(),
            ReplayMode::Batch { size } => format!("batch{size}"),
        }
    }
}

/// Order-independent digest of a replay's results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayChecksum {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that matched a route.
    pub hits: u64,
    /// Sum of matched next-hop values.
    pub next_hop_sum: u64,
    /// Sum of per-lookup memory-access counts.
    pub mem_accesses: u64,
    /// Sum of per-lookup distinct-cache-line counts.
    pub lines_touched: u64,
}

impl ReplayChecksum {
    #[inline]
    pub(crate) fn absorb(&mut self, c: CountedLookup) {
        self.lookups += 1;
        if let Some(nh) = c.next_hop {
            self.hits += 1;
            self.next_hop_sum += nh.0 as u64;
        }
        self.mem_accesses += c.mem_accesses as u64;
        self.lines_touched += c.lines_touched as u64;
    }

    pub(crate) fn merge(&mut self, other: ReplayChecksum) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.next_hop_sum += other.next_hop_sum;
        self.mem_accesses += other.mem_accesses;
        self.lines_touched += other.lines_touched;
    }
}

/// Replay `shards` (one worker thread per shard) once and return the
/// merged checksum plus wall seconds. Thread spawn/join is inside the
/// timed region for both modes, so it cancels out of ratios.
pub fn replay_once(
    lpm: &(dyn Lpm + Sync),
    shards: &[Trace],
    mode: ReplayMode,
) -> (ReplayChecksum, f64) {
    let start = Instant::now();
    let partials: Vec<ReplayChecksum> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| scope.spawn(move || replay_shard(lpm, shard, mode)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replay worker panicked"))
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let mut total = ReplayChecksum::default();
    for p in partials {
        total.merge(p);
    }
    (total, wall)
}

fn replay_shard(lpm: &(dyn Lpm + Sync), shard: &Trace, mode: ReplayMode) -> ReplayChecksum {
    let mut sum = ReplayChecksum::default();
    match mode {
        ReplayMode::Scalar => {
            for &addr in shard.destinations() {
                sum.absorb(lpm.lookup_counted(addr));
            }
        }
        ReplayMode::Batch { size } => {
            let mut out = vec![CountedLookup::MISS; size];
            for chunk in shard.batches(size) {
                lpm.lookup_batch(chunk, &mut out[..chunk.len()]);
                for &c in &out[..chunk.len()] {
                    sum.absorb(c);
                }
            }
        }
    }
    sum
}

/// Best-of-[`REPS`] replay: returns the checksum (identical across
/// reps — replays are deterministic) and the minimum wall seconds.
pub fn replay(lpm: &(dyn Lpm + Sync), shards: &[Trace], mode: ReplayMode) -> (ReplayChecksum, f64) {
    let mut best: Option<(ReplayChecksum, f64)> = None;
    for _ in 0..REPS {
        let (sum, wall) = replay_once(lpm, shards, mode);
        if let Some((prev, best_wall)) = &mut best {
            assert_eq!(*prev, sum, "replay checksum changed between reps");
            *best_wall = best_wall.min(wall);
        } else {
            best = Some((sum, wall));
        }
    }
    best.expect("at least one rep")
}

/// One result row of the lookup benchmark.
#[derive(Debug, Clone)]
pub struct LookupRow {
    /// Engine name (`Lpm::name`).
    pub engine: String,
    /// Replay mode label ("scalar", "batch32").
    pub mode: String,
    /// Worker threads (= shards).
    pub threads: usize,
    /// Lookups per wallclock second.
    pub packets_per_sec: f64,
    /// Wall time of the best rep, in milliseconds.
    pub wall_ms: f64,
    /// Mean memory accesses per lookup (sanity link to the paper's §5.1
    /// numbers).
    pub mean_accesses: f64,
    /// Mean distinct 64-byte cache lines touched per lookup under the
    /// engine's modeled layout.
    pub mean_lines: f64,
    /// Bytes the engine occupies under the paper's storage models.
    pub storage_bytes: usize,
}

impl LookupRow {
    /// Measure one `(engine, mode, threads)` cell.
    pub fn measure(lpm: &(dyn Lpm + Sync), shards: &[Trace], mode: ReplayMode) -> LookupRow {
        let (sum, wall) = replay(lpm, shards, mode);
        Self::from_run(lpm, shards, mode, sum, wall)
    }

    fn from_run(
        lpm: &(dyn Lpm + Sync),
        shards: &[Trace],
        mode: ReplayMode,
        sum: ReplayChecksum,
        wall: f64,
    ) -> LookupRow {
        LookupRow {
            engine: lpm.name().to_string(),
            mode: mode.label(),
            threads: shards.len(),
            packets_per_sec: sum.lookups as f64 / wall,
            wall_ms: wall * 1e3,
            mean_accesses: sum.mem_accesses as f64 / sum.lookups.max(1) as f64,
            mean_lines: sum.lines_touched as f64 / sum.lookups.max(1) as f64,
            storage_bytes: lpm.storage_bytes(),
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"benchmark\": \"lookup_replay\", \"engine\": \"{}\", \"mode\": \"{}\", \
             \"threads\": {}, \"packets_per_sec\": {:.1}, \"wall_ms\": {:.3}, \
             \"mean_accesses\": {:.3}, \"mean_lines\": {:.3}, \"storage_bytes\": {}}}",
            self.engine,
            self.mode,
            self.threads,
            self.packets_per_sec,
            self.wall_ms,
            self.mean_accesses,
            self.mean_lines,
            self.storage_bytes
        )
    }
}

/// Write rows to `path` as a JSON array, one row per line. With
/// `append`, rows already in the file are kept (the file is rewritten
/// with old rows first) — `bench_gate` uses this to add its quick-gate
/// rows after a full `bench_lookup` sweep.
pub fn write_rows(path: &str, rows: &[LookupRow], append: bool) -> std::io::Result<()> {
    let mut lines: Vec<String> = Vec::new();
    if append {
        if let Ok(existing) = std::fs::read_to_string(path) {
            lines.extend(
                existing
                    .lines()
                    .map(|l| l.trim().trim_end_matches(',').to_string())
                    .filter(|l| l.starts_with('{')),
            );
        }
    }
    lines.extend(rows.iter().map(|r| r.to_json()));
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "[")?;
    for (i, line) in lines.iter().enumerate() {
        let comma = if i + 1 < lines.len() { "," } else { "" };
        writeln!(f, "  {line}{comma}")?;
    }
    writeln!(f, "]")?;
    Ok(())
}

/// Paired scalar/batch measurement for one engine: each of [`REPS`]
/// reps runs the scalar replay immediately followed by the batch
/// replay, and the speedup is the best of the per-rep ratios.
///
/// Measuring the two modes as separate best-of blocks lets
/// machine-speed drift (frequency scaling, neighbors on a shared box)
/// land asymmetrically on one block and swing the ratio by ±30% run to
/// run; a back-to-back pair sees nearly the same machine on both
/// sides, and the cleanest pair — like the minimum-wall rep of a
/// single-mode measurement — is the one least perturbed by
/// interference. A genuine batch-path regression depresses every pair,
/// so a floor on this ratio still catches it.
///
/// Returns the scalar row, the batch row (each from its minimum-wall
/// rep) and the paired speedup. Scalar and batch checksums are
/// asserted equal on every rep.
pub fn measure_speedup(
    lpm: &(dyn Lpm + Sync),
    shards: &[Trace],
    batch: ReplayMode,
) -> (LookupRow, LookupRow, f64) {
    let mut scalar_best: Option<(ReplayChecksum, f64)> = None;
    let mut batch_best: Option<(ReplayChecksum, f64)> = None;
    let mut speedup = 0.0f64;
    for _ in 0..REPS {
        let (s_sum, s_wall) = replay_once(lpm, shards, ReplayMode::Scalar);
        let (b_sum, b_wall) = replay_once(lpm, shards, batch);
        assert_eq!(s_sum, b_sum, "batch replay diverged from scalar");
        speedup = speedup.max(s_wall / b_wall);
        if scalar_best.as_ref().is_none_or(|&(_, w)| s_wall < w) {
            scalar_best = Some((s_sum, s_wall));
        }
        if batch_best.as_ref().is_none_or(|&(_, w)| b_wall < w) {
            batch_best = Some((b_sum, b_wall));
        }
    }
    let (s_sum, s_wall) = scalar_best.expect("at least one rep");
    let (b_sum, b_wall) = batch_best.expect("at least one rep");
    (
        LookupRow::from_run(lpm, shards, ReplayMode::Scalar, s_sum, s_wall),
        LookupRow::from_run(lpm, shards, batch, b_sum, b_wall),
        speedup,
    )
}

/// Per-engine floor on the batch/scalar throughput ratio, enforced at
/// one thread. The flat-array engines must show a real win; the
/// pointer-chasing DP trie must merely not regress.
pub fn batch_speedup_floor(engine: &str) -> Option<f64> {
    match engine {
        "DIR-24-8" | "Lulea" => Some(1.5),
        // The cache-line-packed engines already touch so few lines per
        // lookup that the interleave has less latency to hide; they must
        // merely not regress.
        "DP" | "Poptrie" => Some(1.0),
        _ => None,
    }
}

/// Default table size for [`stress_workload`]. Sized so the compressed
/// engines' structures decisively exceed a server-class L2 (a couple of
/// MB): on a table that fits L2, scalar replay runs cache-hot and the
/// ratio measures instruction overlap alone, under-reporting the
/// prefetch win the gate floors were calibrated against. Kept below the
/// point where DIR-24-8's 15-bit segment space overflows (backbone
/// length mixes exhaust it somewhere above a million routes).
pub const STRESS_PREFIXES: usize = 600_000;

/// The raw-throughput stress workload: a backbone-sized table and a
/// near-uniform destination stream over a pool wider than the table.
/// Cache-friendly Zipf traffic would measure the host cache, not the
/// engines — uniform random keeps the flat-array engines' reads missing
/// cache, which is exactly the latency the batch interleave hides.
pub fn stress_workload(prefixes: usize, packets: usize, seed: u64) -> (RoutingTable, Trace) {
    let table = synth::synthesize(&synth::SynthConfig::sized(prefixes, 0xB0B));
    let trace = TracePreset {
        distinct: 2 * prefixes,
        model: LocalityModel::Zipf { alpha: 0.05 },
        ..preset(PresetName::D75)
    }
    .generate(&table, packets, seed);
    (table, trace)
}

/// The dataplane-runtime workload: the same backbone-sized synthetic
/// table as [`stress_workload`], but a destination stream with
/// router-realistic locality — the paper's `B_L` preset (32k-flow pool,
/// Zipf α 1.12, 35% packet trains), its *least* cacheable trace.
///
/// [`stress_workload`]'s near-uniform stream (α 0.05 over a pool wider
/// than the table) is deliberately cache-adversarial: against a
/// 4096-block LR-cache it probes at a ~0.003 hit rate, so a dataplane
/// run over it measures only the miss path. That is the right stream
/// for raw LPM engines — and the wrong one for the SPAL runtime, whose
/// entire design (paper §2) banks on the flow locality refs [5, 6]
/// measured on real links. The dataplane benchmark keeps one stress
/// row as the historical baseline and runs everything else on this.
pub fn dataplane_workload(prefixes: usize, packets: usize, seed: u64) -> (RoutingTable, Trace) {
    let table = synth::synthesize(&synth::SynthConfig::sized(prefixes, 0xB0B));
    let trace = dataplane_trace(&table, packets, seed);
    (table, trace)
}

/// The [`dataplane_workload`] trace over an existing table —
/// `bench_dataplane` builds the (expensive) 600k-prefix table once and
/// generates both the stress and the locality stream over it.
pub fn dataplane_trace(table: &RoutingTable, packets: usize, seed: u64) -> Trace {
    preset(PresetName::BL).generate(table, packets, seed)
}

/// Build engines from forwarding-table algorithms, as trait objects the
/// replay workers can share.
pub fn build_engines(
    table: &RoutingTable,
    algorithms: &[LpmAlgorithm],
) -> Vec<Arc<dyn Lpm + Send + Sync>> {
    algorithms
        .iter()
        .map(|&a| Arc::new(ForwardingTable::build(a, table)) as Arc<dyn Lpm + Send + Sync>)
        .collect()
}

/// The engines whose batch speedup is gated.
pub const GATED_ALGORITHMS: [LpmAlgorithm; 4] = [
    LpmAlgorithm::Dir24,
    LpmAlgorithm::Lulea,
    LpmAlgorithm::Dp,
    LpmAlgorithm::Poptrie,
];

/// Measure scalar vs batch for every engine at `threads` workers,
/// printing one line per engine. Returns the result rows plus the floor
/// violations (floors apply only at one thread, where the ratio is a
/// pure batch-vs-scalar comparison).
pub fn run_gate(
    engines: &[Arc<dyn Lpm + Send + Sync>],
    trace: &Trace,
    threads: usize,
) -> (Vec<LookupRow>, Vec<String>) {
    let shards = trace.shard_slices(threads);
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for engine in engines {
        let (scalar, batch, ratio) = measure_speedup(
            engine.as_ref(),
            &shards,
            ReplayMode::Batch {
                size: DEFAULT_BATCH,
            },
        );
        let floor = batch_speedup_floor(&scalar.engine).filter(|_| threads == 1);
        let verdict = match floor {
            Some(f) if ratio < f => "FAIL",
            Some(_) => "ok",
            None => "-",
        };
        println!(
            "  {:9} t={threads} scalar {:>11.0} pps | batch {:>11.0} pps | {ratio:.2}x \
             ({:.2} acc, {:.2} lines/lookup) {verdict}",
            scalar.engine,
            scalar.packets_per_sec,
            batch.packets_per_sec,
            scalar.mean_accesses,
            scalar.mean_lines,
        );
        if let Some(f) = floor {
            if ratio < f {
                failures.push(format!(
                    "{}: batch/scalar {ratio:.2}x < {f}x",
                    scalar.engine
                ));
            }
        }
        rows.push(scalar);
        rows.push(batch);
    }
    (rows, failures)
}

/// All engines the full `bench_lookup` sweep runs: the six
/// forwarding-table algorithms plus the raw fixed-stride multibit trie
/// (not a forwarding-table choice, but it has a batch path too).
pub fn all_engines(table: &RoutingTable) -> Vec<Arc<dyn Lpm + Send + Sync>> {
    let mut engines = build_engines(
        table,
        &[
            LpmAlgorithm::Dir24,
            LpmAlgorithm::Lulea,
            LpmAlgorithm::Lc { fill_factor: 0.25 },
            LpmAlgorithm::Dp,
            LpmAlgorithm::Binary,
            LpmAlgorithm::Poptrie,
        ],
    );
    engines.push(Arc::new(MultibitTrie::build_16_8_8(table)));
    engines
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_lpm::dir24::Dir24_8;
    use spal_rib::synth;
    use spal_traffic::{preset, PresetName, TracePreset};

    #[test]
    fn scalar_and_batch_checksums_agree() {
        let rt = synth::small(5);
        let d = Dir24_8::build(&rt);
        let p = TracePreset {
            distinct: 400,
            ..preset(PresetName::D75)
        };
        let trace = p.generate(&rt, 5_000, 9);
        for threads in [1, 3] {
            let shards = trace.shard_slices(threads);
            let (scalar, _) = replay_once(&d, &shards, ReplayMode::Scalar);
            let (batch, _) = replay_once(&d, &shards, ReplayMode::Batch { size: 32 });
            assert_eq!(scalar, batch);
            assert_eq!(scalar.lookups, 5_000);
            assert!(scalar.hits > 0);
        }
    }

    #[test]
    fn rows_roundtrip_through_json_append() {
        let row = |e: &str| LookupRow {
            engine: e.into(),
            mode: "scalar".into(),
            threads: 1,
            packets_per_sec: 1.0,
            wall_ms: 2.0,
            mean_accesses: 3.0,
            mean_lines: 2.5,
            storage_bytes: 1024,
        };
        let dir = std::env::temp_dir().join("spal_lookup_rows_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rows.json");
        let path = path.to_str().unwrap();
        write_rows(path, &[row("A")], false).unwrap();
        write_rows(path, &[row("B")], true).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text.matches("lookup_replay").count(), 2);
        assert!(text.contains("\"engine\": \"A\""));
        assert!(text.contains("\"engine\": \"B\""));
        // Overwrite drops the old rows.
        write_rows(path, &[row("C")], false).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text.matches("lookup_replay").count(), 1);
    }

    #[test]
    fn floors_cover_the_gated_engines() {
        assert_eq!(batch_speedup_floor("DIR-24-8"), Some(1.5));
        assert_eq!(batch_speedup_floor("Lulea"), Some(1.5));
        assert_eq!(batch_speedup_floor("DP"), Some(1.0));
        assert_eq!(batch_speedup_floor("Poptrie"), Some(1.0));
        assert_eq!(batch_speedup_floor("Binary"), None);
    }
}
