//! Common experiment setup: the two routing tables, per-LC trace
//! streams, and command-line options shared by every experiment binary.

use spal_rib::{synth, RoutingTable};
use spal_traffic::{preset, PresetName, Trace};

/// Seed fixing the RT_1 stand-in across every experiment.
pub const RT1_SEED: u64 = 0xA11CE;
/// Seed fixing the RT_2 stand-in across every experiment.
pub const RT2_SEED: u64 = 0xB0B;

/// The RT_1 stand-in (41,709 prefixes, §4).
pub fn rt1() -> RoutingTable {
    synth::rt1(RT1_SEED)
}

/// The RT_2 stand-in (140,838 prefixes, §4). All §5.2 simulations use
/// this table, as the paper does.
pub fn rt2() -> RoutingTable {
    synth::rt2(RT2_SEED)
}

/// Generate `psi` per-LC streams of a preset trace: one backbone trace
/// split round-robin, `packets_per_lc` destinations each.
pub fn trace_streams(
    name: PresetName,
    table: &RoutingTable,
    psi: usize,
    packets_per_lc: usize,
    seed: u64,
) -> Vec<Trace> {
    preset(name)
        .generate(table, packets_per_lc * psi, seed)
        .split(psi)
}

/// Options every experiment binary accepts:
/// `--quick` (30k packets/LC instead of 300k, for smoke runs),
/// `--packets N` (explicit override), `--seed N`, and `--rt1`
/// (simulate over the RT_1 stand-in instead of RT_2 — the paper reports
/// "a similar trend" for both and shows only RT_2).
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Packets per LC per simulation.
    pub packets_per_lc: usize,
    /// Base seed.
    pub seed: u64,
    /// Use RT_1 instead of RT_2 for simulations.
    pub use_rt1: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            packets_per_lc: 300_000,
            seed: 1,
            use_rt1: false,
        }
    }
}

impl ExpOptions {
    /// Parse from `std::env::args` (ignoring unknown flags so binaries
    /// can add their own).
    pub fn from_args() -> Self {
        let mut opts = ExpOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => opts.packets_per_lc = 30_000,
                "--rt1" => opts.use_rt1 = true,
                "--packets" => {
                    i += 1;
                    opts.packets_per_lc = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--packets needs a number");
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--seed needs a number");
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// The routing table this run simulates over (RT_2 unless `--rt1`).
    pub fn table(&self) -> RoutingTable {
        if self.use_rt1 {
            rt1()
        } else {
            rt2()
        }
    }

    /// Label for the chosen table.
    pub fn table_label(&self) -> &'static str {
        if self.use_rt1 {
            "RT_1"
        } else {
            "RT_2"
        }
    }
}

/// Run `jobs` closures on separate threads (one per job) and collect
/// results in order. Simulations are independent, so this is the one
/// place the harness parallelises.
pub fn parallel_map<T: Send, F: FnOnce() -> T + Send>(jobs: Vec<F>) -> Vec<T> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs.into_iter().map(|f| scope.spawn(f)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_stable() {
        // Small smoke check: generation is deterministic (the full sizes
        // are covered by spal-rib's tests).
        let a = spal_rib::synth::synthesize(&spal_rib::synth::SynthConfig::sized(1000, RT1_SEED));
        let b = spal_rib::synth::synthesize(&spal_rib::synth::SynthConfig::sized(1000, RT1_SEED));
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn streams_cover_psi() {
        let rt = spal_rib::synth::small(5);
        let streams = trace_streams(PresetName::D75, &rt, 4, 100, 9);
        assert_eq!(streams.len(), 4);
        for s in &streams {
            assert_eq!(s.len(), 100);
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| Box::new(move || i * 2) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = parallel_map(jobs);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }
}
