//! Shared harness for the experiment binaries (one per paper table or
//! figure — see `DESIGN.md`'s per-experiment index) and the Criterion
//! micro-benches.

pub mod dfz;
pub mod fmt;
pub mod lookup;
pub mod setup;

pub use fmt::TablePrinter;
pub use setup::{rt1, rt2, trace_streams, ExpOptions};
