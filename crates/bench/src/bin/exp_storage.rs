//! **E2 / §4 text** — Per-partition trie storage for the three LPM
//! structures, RT_1 and RT_2, ψ ∈ {4, 16}, plus the per-LC SRAM savings
//! relative to an unpartitioned router.
//!
//! The paper's reference points (its snapshots): DP trie on RT_1 at
//! ψ = 4 → partitions of 209–220 KB vs 859 KB whole (≥ 638 KB saved per
//! LC); Lulea on RT_1 at ψ = 4 → 87–91 KB vs ≈260 KB whole. Shapes to
//! reproduce: per-LC size ≈ whole/ψ (+ replication), savings always far
//! exceed the 24 KB LR-cache.
//!
//! Run: `cargo run --release -p spal-bench --bin exp_storage`

use spal_bench::fmt::kbytes;
use spal_bench::setup::{rt1, rt2};
use spal_bench::TablePrinter;
use spal_core::bits::{eta_for, select_bits};
use spal_core::partition::Partitioning;
use spal_core::{ForwardingTable, LpmAlgorithm};
use spal_lpm::Lpm;

/// The LR-cache the savings must dominate: 4K blocks × 6 B (§6).
const LR_CACHE_BYTES: usize = 4096 * 6;

fn main() {
    let algorithms = [
        ("DP", LpmAlgorithm::Dp),
        ("Lulea", LpmAlgorithm::Lulea),
        ("LC(0.25)", LpmAlgorithm::Lc { fill_factor: 0.25 }),
    ];
    let tables = [("RT_1", rt1()), ("RT_2", rt2())];
    println!("E2: per-LC trie storage after partitioning (paper Sec. 4)");
    let mut printer = TablePrinter::new(&[
        "table",
        "trie",
        "psi",
        "whole KB",
        "min KB",
        "max KB",
        "saving/LC KB",
        "covers LR-cache",
    ]);
    for (tname, table) in &tables {
        for (aname, algo) in algorithms {
            let whole = ForwardingTable::build(algo, table).storage_bytes();
            for psi in [4usize, 16] {
                let bits = select_bits(table, eta_for(psi));
                let part = Partitioning::new(table, bits, psi);
                let sizes: Vec<usize> = part
                    .forwarding_tables(table)
                    .iter()
                    .map(|t| ForwardingTable::build(algo, t).storage_bytes())
                    .collect();
                let min = *sizes.iter().min().expect("psi >= 1");
                let max = *sizes.iter().max().expect("psi >= 1");
                let saving = whole.saturating_sub(max);
                printer.row(&[
                    tname.to_string(),
                    aname.to_string(),
                    psi.to_string(),
                    kbytes(whole),
                    kbytes(min),
                    kbytes(max),
                    kbytes(saving),
                    (saving > LR_CACHE_BYTES).to_string(),
                ]);
            }
        }
    }
    printer.print();
    println!();
    println!(
        "'covers LR-cache' asserts the Sec. 4 conclusion: the per-LC SRAM saving always \
         dwarfs the {} KB LR-cache added by SPAL.",
        LR_CACHE_BYTES / 1024
    );
}
