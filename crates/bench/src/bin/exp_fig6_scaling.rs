//! **E7 / Fig. 6** — Mean lookup time (cycles) versus ψ (number of LCs)
//! under β = 4K blocks and γ = 50 %, 40 Gbps LCs, 40-cycle FE (Lulea),
//! for the five trace presets. The paper's headline scaling figure: a
//! larger ψ lowers the mean lookup time for every trace.
//!
//! Run: `cargo run --release -p spal-bench --bin exp_fig6_scaling`
//! (`--quick` for a 30k-packet smoke run).

use spal_bench::setup::{parallel_map, trace_streams, ExpOptions};
use spal_bench::TablePrinter;
use spal_cache::LrCacheConfig;
use spal_sim::{RouterKind, RouterSim, SimConfig};
use spal_traffic::ALL_PRESETS;

fn main() {
    let opts = ExpOptions::from_args();
    let psis = [1usize, 2, 3, 4, 8, 16];
    let table = opts.table();
    println!(
        "Fig. 6 reproduction: mean lookup time (cycles) vs psi; beta=4K, gamma=50%, 40 Gbps, 40-cycle FE, {} ({} prefixes), {} packets/LC",
        opts.table_label(),
        table.len(),
        opts.packets_per_lc
    );

    let mut printer = TablePrinter::new(&[
        "trace", "psi=1", "psi=2", "psi=3", "psi=4", "psi=8", "psi=16",
    ]);
    for name in ALL_PRESETS {
        let jobs: Vec<_> = psis
            .iter()
            .map(|&psi| {
                let table = &table;
                move || {
                    let traces = trace_streams(name, table, psi, opts.packets_per_lc, opts.seed);
                    let config = SimConfig {
                        kind: RouterKind::Spal,
                        psi,
                        cache: LrCacheConfig::paper(4096),
                        packets_per_lc: opts.packets_per_lc,
                        seed: opts.seed,
                        ..SimConfig::default()
                    };
                    RouterSim::new(table, &traces, config).run()
                }
            })
            .collect();
        let reports = parallel_map(jobs);
        let mut cells = vec![name.label().to_string()];
        cells.extend(
            reports
                .iter()
                .map(|r| format!("{:.2}", r.mean_lookup_cycles())),
        );
        printer.row(&cells);
        eprintln!(
            "{}: hit rates {:?}",
            name.label(),
            reports
                .iter()
                .map(|r| format!("{:.3}", r.hit_rate()))
                .collect::<Vec<_>>()
        );
    }
    printer.print();
    printer.save_results_csv("fig6_scaling");
    println!();
    println!("Paper's shape: monotone decrease with psi for every trace;");
    println!("e.g. L_92-0 drops from >6 cycles (psi=1) to <3 cycles (psi=16),");
    println!("a >2x speedup from finer fragmentation (Sec. 5.2).");
}
