//! **E13 / §1 claim** — "SPAL may possibly shorten the worst-case lookup
//! time (thanks to fewer memory accesses during longest-prefix matching
//! search)". Two measurements:
//!
//! 1. **Static**: the maximum memory accesses any lookup needs on the
//!    whole-table trie versus the largest ψ=16 partition, per algorithm.
//! 2. **Dynamic**: tail lookup latency (p99/p99.9/max, cycles) of the
//!    cycle simulation under the per-lookup FE cost model, SPAL vs the
//!    conventional router's flat 40-cycle floor.
//!
//! Run: `cargo run --release -p spal-bench --bin exp_worst_case`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spal_bench::setup::{rt2, trace_streams, ExpOptions};
use spal_bench::TablePrinter;
use spal_cache::LrCacheConfig;
use spal_core::bits::{eta_for, select_bits};
use spal_core::partition::Partitioning;
use spal_core::{ForwardingTable, LpmAlgorithm};
use spal_lpm::Lpm;
use spal_rib::RoutingTable;
use spal_sim::{FeServiceModel, RouterKind, RouterSim, SimConfig};
use spal_traffic::PresetName;

fn max_accesses(fwd: &ForwardingTable, table: &RoutingTable, seed: u64) -> u32 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut worst = 0;
    for _ in 0..30_000 {
        let e = table.entries()[rng.gen_range(0..table.len())];
        let addr = e.prefix.first_addr() + (rng.gen::<u64>() % e.prefix.size()) as u32;
        worst = worst.max(fwd.lookup_counted(addr).mem_accesses);
    }
    // Prefix boundaries are where deep searches live.
    for e in table.entries().iter().step_by(7) {
        worst = worst.max(fwd.lookup_counted(e.prefix.first_addr()).mem_accesses);
        worst = worst.max(fwd.lookup_counted(e.prefix.last_addr()).mem_accesses);
    }
    worst
}

fn main() {
    let opts = ExpOptions::from_args();
    let table = rt2();
    println!("E13: worst-case lookup, whole table vs largest psi=16 partition (RT_2)");

    let bits = select_bits(&table, eta_for(16));
    let part = Partitioning::new(&table, bits, 16);
    let largest = part
        .forwarding_tables(&table)
        .into_iter()
        .max_by_key(|t| t.len())
        .expect("psi >= 1");

    let mut printer =
        TablePrinter::new(&["trie", "max accesses (whole)", "max accesses (partition)"]);
    for (name, algo) in [
        ("Lulea", LpmAlgorithm::Lulea),
        ("DP", LpmAlgorithm::Dp),
        ("LC(0.25)", LpmAlgorithm::Lc { fill_factor: 0.25 }),
    ] {
        let whole = ForwardingTable::build(algo, &table);
        let partn = ForwardingTable::build(algo, &largest);
        printer.row(&[
            name.to_string(),
            max_accesses(&whole, &table, 3).to_string(),
            max_accesses(&partn, &largest, 3).to_string(),
        ]);
    }
    printer.print();

    println!();
    println!(
        "Dynamic tail latency at psi=16, beta=4K, per-lookup FE costs, {} packets/LC:",
        opts.packets_per_lc
    );
    let traces = trace_streams(PresetName::BL, &table, 16, opts.packets_per_lc, opts.seed);
    let report = RouterSim::new(
        &table,
        &traces,
        SimConfig {
            kind: RouterKind::Spal,
            psi: 16,
            fe: FeServiceModel::PerLookup,
            cache: LrCacheConfig::paper(4096),
            packets_per_lc: opts.packets_per_lc,
            seed: opts.seed,
            ..SimConfig::default()
        },
    )
    .run();
    println!(
        "SPAL (B_L, worst trace): mean {:.2}, p99 {}, p99.9 {}, max {} cycles",
        report.mean_lookup_cycles(),
        report.latency.quantile(0.99),
        report.latency.quantile(0.999),
        report.latency.max()
    );
    println!(
        "conventional router: every packet >= 40 cycles (plus unbounded queueing at 40 Gbps)."
    );
    println!();
    println!("Reading: the paper hedges ('MAY possibly shorten'). Path-length-bound");
    println!("structures respond to partitioning (DP shrinks); Lulea's worst case is its");
    println!("structural 12-access bound regardless of table size; the LC-trie's depends");
    println!("on how the fill factor plays out on the partition. The robust worst-case win");
    println!("is dynamic: most SPAL lookups never touch an FE at all.");
}
