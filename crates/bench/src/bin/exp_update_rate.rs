//! **E11 / §3.2 & §5.1 extension** — Sensitivity to the routing-update
//! rate. The paper flushes every LR-cache on each table update, cites
//! 20–100 updates/s, and sizes its 300k-packet windows to one update
//! interval; it warns the simple flush "will not work effectively if
//! the routing table is updated … very frequently". This experiment
//! quantifies that: mean lookup time at ψ = 4, β = 4K under update
//! rates from none to 1000/s.
//!
//! Run: `cargo run --release -p spal-bench --bin exp_update_rate`

use spal_bench::setup::{parallel_map, rt2, trace_streams, ExpOptions};
use spal_bench::TablePrinter;
use spal_cache::LrCacheConfig;
use spal_sim::{RouterKind, RouterSim, SimConfig};
use spal_traffic::ALL_PRESETS;

fn main() {
    let opts = ExpOptions::from_args();
    let table = rt2();
    // updates/s → cycles between flushes (5 ns cycles).
    let rates: [(&str, Option<u64>); 5] = [
        ("none", None),
        ("20/s", Some(10_000_000)),
        ("100/s", Some(2_000_000)),
        ("400/s", Some(500_000)),
        ("1000/s", Some(200_000)),
    ];
    println!(
        "E11: mean lookup time (cycles) vs routing-update rate; psi=4, beta=4K, {} packets/LC",
        opts.packets_per_lc
    );
    let mut printer = TablePrinter::new(&["trace", "none", "20/s", "100/s", "400/s", "1000/s"]);
    for name in ALL_PRESETS {
        let jobs: Vec<_> = rates
            .iter()
            .map(|&(_, interval)| {
                let table = &table;
                move || {
                    let traces = trace_streams(name, table, 4, opts.packets_per_lc, opts.seed);
                    RouterSim::new(
                        table,
                        &traces,
                        SimConfig {
                            kind: RouterKind::Spal,
                            psi: 4,
                            cache: LrCacheConfig::paper(4096),
                            packets_per_lc: opts.packets_per_lc,
                            flush_interval_cycles: interval,
                            seed: opts.seed,
                            ..SimConfig::default()
                        },
                    )
                    .run()
                }
            })
            .collect();
        let reports = parallel_map(jobs);
        let mut cells = vec![name.label().to_string()];
        cells.extend(
            reports
                .iter()
                .map(|r| format!("{:.2}", r.mean_lookup_cycles())),
        );
        printer.row(&cells);
    }
    printer.print();
    println!();
    println!("At the paper's 20-100 updates/s the full-flush policy costs little; the");
    println!("degradation at several hundred updates/s is the regime the paper warns");
    println!("about ('simple flushing will not work effectively if the routing table is");
    println!("updated incrementally and very frequently').");
}
