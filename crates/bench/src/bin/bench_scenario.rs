//! **Operational-scenario gate**: runs the scripted episodes from
//! `spal_dataplane::scenario` — LC failure with online
//! re-partitioning, flash crowd, sustained overload, and the
//! deterministic soak — and fails if any scenario's hard gates fail
//! (zero oracle divergence always; recovery, drop-accounting, and
//! queue-bound gates per scenario).
//!
//! Results go to `BENCH_scenario.json` (one row per scenario, the
//! scenario's own flat JSON row), and one dated row per scenario is
//! appended to `results/trajectory.jsonl` so regressions in recovery
//! time or overload behaviour are visible across runs.
//!
//! `bench_scenario --quick` runs the CI-sized variants. Flags:
//! `--seed N`, `--out PATH`, `--trajectory PATH`.

use spal_dataplane::{run_scenario, ScenarioConfig, ScenarioKind};
use std::io::Write;
use std::time::{SystemTime, UNIX_EPOCH};

struct Options {
    quick: bool,
    seed: u64,
    out: Option<String>,
    trajectory: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        seed: 7,
        out: None,
        trajectory: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs a number");
            }
            "--out" => {
                i += 1;
                opts.out = Some(args.get(i).expect("--out needs a path").clone());
            }
            "--trajectory" => {
                i += 1;
                opts.trajectory = Some(args.get(i).expect("--trajectory needs a path").clone());
            }
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }
    opts
}

/// Civil date from a unix timestamp (proleptic Gregorian, UTC) —
/// enough for a trajectory row's date stamp, with no date dependency.
fn civil_date(unix_secs: u64) -> (u64, u64, u64) {
    // Howard Hinnant's days-from-civil inverted: shift the epoch to
    // March 1, year 0, where leap days sit at the end of the year.
    let days = unix_secs / 86_400 + 719_468;
    let era = days / 146_097;
    let doe = days % 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn main() {
    let opts = parse_args();
    println!(
        "bench_scenario: seed {}{}",
        opts.seed,
        if opts.quick { " (quick)" } else { "" }
    );

    let mut rows: Vec<String> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for kind in ScenarioKind::ALL {
        let mut cfg = ScenarioConfig::new(kind, opts.quick);
        cfg.seed = opts.seed;
        let result = run_scenario(&cfg);
        println!("  {}", result.summary());
        if !result.passed() {
            failures.push(format!(
                "{}: {}",
                kind.name(),
                result.gate_failures.join("; ")
            ));
        }
        rows.push(result.json_row());
    }

    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scenario.json");
    let out = opts.out.as_deref().unwrap_or(default_out);
    let mut body = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str("  ");
        body.push_str(row);
        body.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    body.push_str("]\n");
    std::fs::write(out, body).expect("writing scenario JSON");
    println!("wrote {} rows to {out}", rows.len());

    // Cross-run trajectory: one dated line per scenario, append-only,
    // so recovery time / drop accounting can be compared across runs.
    let default_traj = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/trajectory.jsonl"
    );
    let traj = opts.trajectory.as_deref().unwrap_or(default_traj);
    let unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_date(unix);
    if let Some(dir) = std::path::Path::new(traj).parent() {
        std::fs::create_dir_all(dir).expect("creating trajectory dir");
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(traj)
        .expect("opening trajectory file");
    for row in &rows {
        // Splice the date into the scenario's own row: every line in
        // the trajectory stays self-describing.
        let dated = row.replacen(
            "{ ",
            &format!("{{ \"date\": \"{y:04}-{m:02}-{d:02}\", \"unix\": {unix}, "),
            1,
        );
        writeln!(f, "{dated}").expect("appending trajectory row");
    }
    println!("appended {} rows to {traj}", rows.len());

    if !failures.is_empty() {
        eprintln!("bench_scenario FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("bench_scenario passed");
}

#[cfg(test)]
mod tests {
    use super::civil_date;

    #[test]
    fn civil_date_known_values() {
        assert_eq!(civil_date(0), (1970, 1, 1));
        assert_eq!(civil_date(951_782_400), (2000, 2, 29));
        assert_eq!(civil_date(1_754_611_200), (2025, 8, 8));
    }
}
