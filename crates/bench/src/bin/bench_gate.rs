//! **Benchmark regression gate** for the simulator core.
//!
//! Runs the Spal / CacheOnly / Conventional routers at 10 and 40 Gbps
//! under both clock engines ([`EngineMode::Naive`] and the default
//! [`EngineMode::FastForward`]) and measures *simulated packets per
//! wallclock second*. Results go to `BENCH_sim.json` at the repo root,
//! one row per `(config, engine)` pair:
//!
//! ```json
//! {"benchmark": "sim_engine", "config": "spal-10g-fast",
//!  "packets_per_sec": 1.2e6, "cycles_per_sec": 4.8e7, "wall_ms": 41.3}
//! ```
//!
//! The gate then enforces the fast-forward engine's contract:
//!
//! * **≥ 2× packets/sec on the low-load 10 Gbps configs** (Spal and
//!   CacheOnly) — sparse arrivals (mean gap 40 cycles) against mostly
//!   cache-hit service are where event-horizon jumps pay off;
//! * **no regression (≥ 0.9×) everywhere else** — the 40 Gbps configs
//!   (dense arrivals leave little to skip) and the Conventional router
//!   at either speed, which its 40-cycle FE saturates even at 10 Gbps
//!   (ρ ≈ 1): with the FE busy nearly every cycle, wall time is bound
//!   by per-event work both engines share, so the scan must merely
//!   stay out of the way.
//!
//! After the engine gate it runs the **lookup-throughput gate** (a
//! compact version of `bench_lookup`): replay a stress trace through
//! the three gated LPM engines, scalar vs batched, and enforce the
//! batch-speedup floors (≥ 1.5× on DIR-24-8 and Lulea, ≥ 1.0× on the
//! DP trie). Those rows are appended to `BENCH_lookup.json` next to the
//! sim output.
//!
//! Exits non-zero if any bound is violated, so CI can run it as a
//! smoke test: `bench_gate --quick`. Other flags: `--packets N`,
//! `--seed N`, `--out PATH`.

use spal_bench::lookup;
use spal_cache::LrCacheConfig;
use spal_rib::{synth, RoutingTable};
use spal_sim::{EngineMode, RouterKind, RouterSim, SimConfig, SimReport};
use spal_traffic::{LcSpeed, Trace};
use std::io::Write;
use std::time::Instant;

/// Repetitions per measurement; the best (minimum-wall) run is kept, the
/// standard trick for shaving scheduler noise off a throughput number.
const REPS: usize = 5;

struct Row {
    config: String,
    packets_per_sec: f64,
    cycles_per_sec: f64,
    wall_ms: f64,
}

struct Options {
    packets_per_lc: usize,
    seed: u64,
    out: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        packets_per_lc: 60_000,
        seed: 1,
        out: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.packets_per_lc = 12_000,
            "--packets" => {
                i += 1;
                opts.packets_per_lc = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--packets needs a number");
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs a number");
            }
            "--out" => {
                i += 1;
                opts.out = Some(args.get(i).expect("--out needs a path").clone());
            }
            // Accepted for run_experiments.sh compatibility (the gate
            // synthesizes its own table, so the RT choice is moot).
            "--rt1" => {}
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }
    opts
}

fn kind_label(kind: RouterKind) -> &'static str {
    match kind {
        RouterKind::Spal => "spal",
        RouterKind::CacheOnly => "cache-only",
        RouterKind::Conventional => "conventional",
    }
}

fn speed_label(speed: LcSpeed) -> &'static str {
    match speed {
        LcSpeed::Gbps10 => "10g",
        LcSpeed::Gbps40 => "40g",
    }
}

/// Time one simulation run (construction excluded), best of [`REPS`].
fn measure(
    table: &RoutingTable,
    traces: &[Trace],
    config: &SimConfig,
    window: Option<u64>,
) -> (SimReport, f64) {
    let mut best: Option<(SimReport, f64)> = None;
    for _ in 0..REPS {
        let sim = RouterSim::new(table, traces, config.clone());
        let start = Instant::now();
        let report = match window {
            Some(cycles) => sim.run_for(cycles),
            None => sim.run(),
        };
        let wall = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, w)| wall < *w) {
            best = Some((report, wall));
        }
    }
    best.expect("at least one rep")
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(path: &str, rows: &[Row]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "[")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            f,
            "  {{\"benchmark\": \"sim_engine\", \"config\": \"{}\", \
             \"packets_per_sec\": {:.1}, \"cycles_per_sec\": {:.1}, \"wall_ms\": {:.3}}}{}",
            json_escape(&r.config),
            r.packets_per_sec,
            r.cycles_per_sec,
            r.wall_ms,
            comma
        )?;
    }
    writeln!(f, "]")?;
    Ok(())
}

fn main() {
    let opts = parse_args();
    let psi = 4;
    // A small table keeps the per-packet trie walk cheap. That is
    // deliberate: the walk costs the same under both engines, so it
    // dilutes the very overhead difference the gate exists to measure —
    // engine relative performance is the target, not table fidelity.
    let table = synth::synthesize(&synth::SynthConfig::sized(4_000, 0xB0B));
    println!(
        "bench_gate: psi={psi}, {} packets/LC, table {} prefixes, best of {REPS}",
        opts.packets_per_lc,
        table.len()
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for kind in [
        RouterKind::Spal,
        RouterKind::CacheOnly,
        RouterKind::Conventional,
    ] {
        for speed in [LcSpeed::Gbps10, LcSpeed::Gbps40] {
            let traces = spal_bench::trace_streams(
                spal_traffic::PresetName::D75,
                &table,
                psi,
                opts.packets_per_lc,
                opts.seed,
            );
            let base = SimConfig {
                kind,
                psi,
                speed,
                cache: LrCacheConfig {
                    blocks: 1024,
                    ..LrCacheConfig::default()
                },
                packets_per_lc: opts.packets_per_lc,
                seed: opts.seed,
                ..SimConfig::default()
            };
            // The conventional router cannot drain a saturated link
            // (its FE is slower than the mean arrival gap), so it gets
            // a fixed open-loop window instead of a run to completion.
            let window = match kind {
                RouterKind::Conventional => {
                    Some(opts.packets_per_lc as u64 * speed.mean_gap() as u64)
                }
                _ => None,
            };
            let mut pps = [0.0f64; 2];
            for (slot, engine) in [EngineMode::Naive, EngineMode::FastForward]
                .into_iter()
                .enumerate()
            {
                let config = SimConfig {
                    engine,
                    ..base.clone()
                };
                let (report, wall) = measure(&table, &traces, &config, window);
                let packets = report.latency.count() as f64;
                let row = Row {
                    config: format!(
                        "{}-{}-{}",
                        kind_label(kind),
                        speed_label(speed),
                        if engine == EngineMode::Naive {
                            "naive"
                        } else {
                            "fast"
                        }
                    ),
                    packets_per_sec: packets / wall,
                    cycles_per_sec: report.cycles as f64 / wall,
                    wall_ms: wall * 1e3,
                };
                println!(
                    "  {:28} {:>10.0} packets/s {:>12.0} cycles/s {:>9.2} ms",
                    row.config, row.packets_per_sec, row.cycles_per_sec, row.wall_ms
                );
                pps[slot] = row.packets_per_sec;
                rows.push(row);
            }
            let ratio = pps[1] / pps[0];
            // The 2× speedup contract applies to the low-load configs;
            // saturated ones (Conventional at any speed, anything at
            // 40 Gbps) are event-bound and only need to not regress.
            let low_load = speed == LcSpeed::Gbps10 && kind != RouterKind::Conventional;
            let floor = if low_load { 2.0 } else { 0.9 };
            let verdict = if ratio >= floor { "ok" } else { "FAIL" };
            println!(
                "  {:28} fast/naive {ratio:.2}x (floor {floor}x) {verdict}",
                format!("{}-{}", kind_label(kind), speed_label(speed))
            );
            if ratio < floor {
                failures.push(format!(
                    "{}-{}: {ratio:.2}x < {floor}x",
                    kind_label(kind),
                    speed_label(speed)
                ));
            }
        }
    }

    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    let out = opts.out.as_deref().unwrap_or(default_out);
    write_json(out, &rows).expect("writing benchmark JSON");
    println!("wrote {} rows to {out}", rows.len());

    // Lookup-throughput gate: batch vs scalar on the gated engines, a
    // compact version of the full `bench_lookup` sweep (one thread,
    // gated engines only), appended to BENCH_lookup.json for tracking.
    // The workload must match bench_lookup's scale: on a smaller table
    // the engines turn cache-resident and the ratio measures ILP alone,
    // under-reporting the prefetch win the floor was set against.
    let lookup_packets = (opts.packets_per_lc * 2).max(100_000);
    let (lookup_table, lookup_trace) =
        lookup::stress_workload(lookup::STRESS_PREFIXES, lookup_packets, opts.seed);
    println!(
        "lookup gate: {} packets ({} distinct), table {} prefixes",
        lookup_trace.len(),
        lookup_trace.distinct(),
        lookup_table.len()
    );
    let engines = lookup::build_engines(&lookup_table, &lookup::GATED_ALGORITHMS);
    let (lookup_rows, lookup_failures) = lookup::run_gate(&engines, &lookup_trace, 1);
    failures.extend(lookup_failures);

    // Poptrie-vs-Lulea gate: the cache-line-packed engine must beat the
    // codeword-compressed one on raw throughput — scalar AND batch32 —
    // at equal or lower storage, on the same stress workload. This pins
    // the engine's reason to exist: fewer distinct cache lines per
    // lookup must show up as wall-clock, not just as a model number.
    let find = |engine: &str, mode: &str| {
        lookup_rows
            .iter()
            .find(|r| r.engine == engine && r.mode == mode)
            .unwrap_or_else(|| panic!("missing {engine}/{mode} row"))
    };
    for mode in ["scalar", "batch32"] {
        let pop = find("Poptrie", mode);
        let lulea = find("Lulea", mode);
        let ratio = pop.packets_per_sec / lulea.packets_per_sec;
        let verdict = if ratio >= 1.0 { "ok" } else { "FAIL" };
        println!("  Poptrie/Lulea {mode} throughput {ratio:.2}x (floor 1.0x) {verdict}");
        if ratio < 1.0 {
            failures.push(format!("Poptrie {mode} {ratio:.2}x slower than Lulea"));
        }
    }
    let (pop_bytes, lulea_bytes) = (
        find("Poptrie", "scalar").storage_bytes,
        find("Lulea", "scalar").storage_bytes,
    );
    println!(
        "  Poptrie storage {pop_bytes} vs Lulea {lulea_bytes} {}",
        if pop_bytes <= lulea_bytes {
            "ok"
        } else {
            "FAIL"
        }
    );
    if pop_bytes > lulea_bytes {
        failures.push(format!(
            "Poptrie storage {pop_bytes} exceeds Lulea {lulea_bytes}"
        ));
    }
    let lookup_out = if out.contains("BENCH_sim") {
        out.replace("BENCH_sim", "BENCH_lookup")
    } else {
        std::path::Path::new(out)
            .with_file_name("BENCH_lookup.json")
            .to_string_lossy()
            .into_owned()
    };
    lookup::write_rows(&lookup_out, &lookup_rows, true).expect("writing lookup JSON");
    println!("appended {} lookup rows to {lookup_out}", lookup_rows.len());

    if !failures.is_empty() {
        eprintln!("bench_gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("bench_gate passed");
}
