//! **E5 / Fig. 4** — Mean lookup time (cycles) versus the mix value γ
//! (share of each set devoted to REM results) for ψ = 4, β = 4K,
//! 40 Gbps, 40-cycle FE, five traces.
//!
//! Paper's shape: γ = 50 % is best or near-best for every trace; γ = 0 %
//! (no blocks for remote results) is clearly worse because every
//! remote-homed packet must re-cross the fabric.
//!
//! Run: `cargo run --release -p spal-bench --bin exp_fig4_mix`

use spal_bench::setup::{parallel_map, rt2, trace_streams, ExpOptions};
use spal_bench::TablePrinter;
use spal_cache::LrCacheConfig;
use spal_fabric::FabricModel;
use spal_sim::{RouterKind, RouterSim, SimConfig};
use spal_traffic::ALL_PRESETS;

const GAMMAS: [f64; 4] = [0.0, 0.25, 0.5, 0.75];

fn sweep(
    table: &spal_rib::RoutingTable,
    fabric: FabricModel,
    opts: ExpOptions,
    printer: &mut TablePrinter,
) {
    for name in ALL_PRESETS {
        let jobs: Vec<_> = GAMMAS
            .iter()
            .map(|&gamma| {
                let table = &*table;
                move || {
                    let traces = trace_streams(name, table, 4, opts.packets_per_lc, opts.seed);
                    let config = SimConfig {
                        kind: RouterKind::Spal,
                        psi: 4,
                        fabric,
                        cache: LrCacheConfig {
                            blocks: 4096,
                            mix_rem_fraction: gamma,
                            ..LrCacheConfig::default()
                        },
                        packets_per_lc: opts.packets_per_lc,
                        seed: opts.seed,
                        ..SimConfig::default()
                    };
                    RouterSim::new(table, &traces, config).run()
                }
            })
            .collect();
        let reports = parallel_map(jobs);
        let mut cells = vec![name.label().to_string()];
        cells.extend(
            reports
                .iter()
                .map(|r| format!("{:.2}", r.mean_lookup_cycles())),
        );
        printer.row(&cells);
    }
}

fn main() {
    let opts = ExpOptions::from_args();
    let table = rt2();
    println!(
        "Fig. 4 reproduction: mean lookup time (cycles) vs mix value gamma; psi=4, beta=4K, {} packets/LC",
        opts.packets_per_lc
    );
    println!();
    println!("(a) Faithful 10 ns fabric (2 cycles):");
    let mut printer = TablePrinter::new(&["trace", "0%", "25%", "50%", "75%"]);
    sweep(&table, FabricModel::Crossbar, opts, &mut printer);
    printer.print();
    printer.save_results_csv("fig4_mix_crossbar");
    println!();
    println!("(b) Sensitivity: 100 ns fabric (20 cycles) — remote misses as dear as");
    println!("    local ones, the regime in which the paper's interior optimum appears:");
    let mut printer = TablePrinter::new(&["trace", "0%", "25%", "50%", "75%"]);
    sweep(
        &table,
        FabricModel::Fixed { cycles: 20 },
        opts,
        &mut printer,
    );
    printer.print();
    printer.save_results_csv("fig4_mix_slow_fabric");
    println!();
    println!("Paper's shape: gamma = 50% best (or nearly best) for every trace. With the");
    println!("2-cycle fabric, remote reloads are so cheap that protecting LOC blocks");
    println!("(gamma = 0) wins by a hair; sweep (b) shows gamma = 50% becoming optimal as");
    println!("the remote path cost approaches the 40-cycle FE cost.");
}
