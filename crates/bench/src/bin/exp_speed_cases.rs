//! **E10 / §5.2 robustness** — The four speed/lookup-cost cases the
//! paper simulated: {10, 40 Gbps} × {40-cycle (Lulea), 62-cycle (DP)}
//! at ψ = 4, β = 4K, γ = 50 %. The paper reports "a similar trend" in
//! all four and presents only 40 Gbps & 40 cycles; this experiment
//! prints all four so the claim can be checked.
//!
//! Run: `cargo run --release -p spal-bench --bin exp_speed_cases`

use spal_bench::setup::{parallel_map, rt2, trace_streams, ExpOptions};
use spal_bench::TablePrinter;
use spal_cache::LrCacheConfig;
use spal_core::LpmAlgorithm;
use spal_sim::{FeServiceModel, RouterKind, RouterSim, SimConfig};
use spal_traffic::{LcSpeed, ALL_PRESETS};

fn main() {
    let opts = ExpOptions::from_args();
    let table = rt2();
    let cases = [
        ("10G/40cyc", LcSpeed::Gbps10, 40u32, LpmAlgorithm::Lulea),
        ("10G/62cyc", LcSpeed::Gbps10, 62, LpmAlgorithm::Dp),
        ("40G/40cyc", LcSpeed::Gbps40, 40, LpmAlgorithm::Lulea),
        ("40G/62cyc", LcSpeed::Gbps40, 62, LpmAlgorithm::Dp),
    ];
    println!(
        "E10: mean lookup time (cycles) across the four speed/FE cases; psi=4, beta=4K, {} packets/LC",
        opts.packets_per_lc
    );
    let mut printer =
        TablePrinter::new(&["trace", "10G/40cyc", "10G/62cyc", "40G/40cyc", "40G/62cyc"]);
    for name in ALL_PRESETS {
        let jobs: Vec<_> = cases
            .iter()
            .map(|&(_, speed, fe, algo)| {
                let table = &table;
                move || {
                    let traces = trace_streams(name, table, 4, opts.packets_per_lc, opts.seed);
                    RouterSim::new(
                        table,
                        &traces,
                        SimConfig {
                            kind: RouterKind::Spal,
                            psi: 4,
                            speed,
                            fe: FeServiceModel::Fixed(fe),
                            algorithm: algo,
                            cache: LrCacheConfig::paper(4096),
                            packets_per_lc: opts.packets_per_lc,
                            seed: opts.seed,
                            ..SimConfig::default()
                        },
                    )
                    .run()
                }
            })
            .collect();
        let reports = parallel_map(jobs);
        let mut cells = vec![name.label().to_string()];
        cells.extend(
            reports
                .iter()
                .map(|r| format!("{:.2}", r.mean_lookup_cycles())),
        );
        printer.row(&cells);
    }
    printer.print();
    println!();
    println!("Paper's claim: all four cases 'follow a similar trend'. Expect 62-cycle");
    println!("columns above their 40-cycle neighbours and 10 Gbps (lighter load) at or");
    println!("below 40 Gbps, with the same trace ordering everywhere.");
}
