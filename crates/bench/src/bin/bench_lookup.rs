//! **Lookup-throughput benchmark and gate**: replay one destination
//! trace through every LPM engine, scalar vs batched, across a thread
//! sweep, and write `BENCH_lookup.json` at the repo root for
//! PR-over-PR tracking.
//!
//! For each engine the trace is sharded contiguously across scoped
//! worker threads sharing one `Arc<dyn Lpm + Send + Sync>`; each worker
//! replays its shard either one `lookup_counted` call per address
//! (scalar — the pre-batch hot path) or through `lookup_batch` in
//! 32-address chunks. Scalar and batch checksums are asserted equal, so
//! every benchmark run re-verifies the batch contract on real traffic.
//!
//! The gate (enforced at one thread, where the ratio is a pure
//! batch-vs-scalar comparison): batch ≥ 1.5× scalar packets/sec on
//! DIR-24-8 and Lulea, ≥ 1.0× on the pointer-heavier DP trie and on
//! the already-line-economical Poptrie. Exits
//! non-zero on a violation so CI can run `bench_lookup --quick`.
//! Flags: `--quick`, `--packets N`, `--seed N`, `--threads N`,
//! `--out PATH`.
//!
//! **DFZ-2026 arms** (`--dfz`, or `--dfz --quick` for the CI tier):
//! instead of the 600k calibration sweep, build every IPv4 engine at
//! the ~1M-prefix DFZ-2026 preset (150k quick) gating build time and
//! per-route storage, replay a stress stream through each (batch
//! checksums asserted equal to scalar), and run the full-table IPv6
//! SHIP-vs-binary gate: SHIP must win on batched throughput at
//! equal-or-lower storage. Rows go to `BENCH_dfz.json`.

use spal_bench::dfz;
use spal_bench::lookup::{
    all_engines, measure_speedup, run_gate, stress_workload, write_rows, ReplayMode, DEFAULT_BATCH,
};

struct Options {
    packets: usize,
    prefixes: usize,
    seed: u64,
    threads: Option<usize>,
    out: Option<String>,
    dfz: bool,
    quick: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        packets: 400_000,
        prefixes: spal_bench::lookup::STRESS_PREFIXES,
        seed: 1,
        threads: None,
        out: None,
        dfz: false,
        quick: false,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                opts.packets = 100_000;
                opts.quick = true;
            }
            "--dfz" => opts.dfz = true,
            "--packets" => {
                i += 1;
                opts.packets = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--packets needs a number");
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs a number");
            }
            "--prefixes" => {
                i += 1;
                opts.prefixes = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--prefixes needs a number");
            }
            "--threads" => {
                i += 1;
                opts.threads = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--threads needs a number"),
                );
            }
            "--out" => {
                i += 1;
                opts.out = Some(args.get(i).expect("--out needs a path").clone());
            }
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }
    opts
}

/// The `--dfz` arms: IPv4 build/storage gates + replay at DFZ-2026
/// scale, then the IPv6 SHIP-vs-binary acceptance gate.
fn run_dfz(opts: &Options) {
    let tier = if opts.quick { "quick" } else { "full" };
    let mut rows = Vec::new();
    let mut failures = Vec::new();

    let t0 = std::time::Instant::now();
    let table = dfz::dfz_v4_table(opts.quick);
    println!(
        "bench_lookup --dfz ({tier}): v4 table {} prefixes generated in {:.1} s",
        table.len(),
        t0.elapsed().as_secs_f64()
    );
    let (engines, _build_rows, mut build_failures) = dfz::run_v4_build_gate(&table, opts.quick);
    failures.append(&mut build_failures);

    let trace = dfz::dfz_v4_trace(&table, opts.packets, opts.seed);
    let shards = trace.shard_slices(1);
    for engine in &engines {
        let (scalar, batch, ratio) = measure_speedup(
            engine.as_ref(),
            &shards,
            ReplayMode::Batch {
                size: DEFAULT_BATCH,
            },
        );
        // Checksum equality is asserted inside measure_speedup; the
        // batch-speedup floors stay pinned to the 600k calibration
        // sweep, so here the ratio is reported, not gated.
        println!(
            "  {:9} t=1 scalar {:>11.0} pps | batch {:>11.0} pps | {ratio:.2}x \
             ({:.2} acc, {:.2} lines/lookup)",
            scalar.engine,
            scalar.packets_per_sec,
            batch.packets_per_sec,
            scalar.mean_accesses,
            scalar.mean_lines,
        );
        rows.push(scalar);
        rows.push(batch);
    }
    drop(engines);

    let t0 = std::time::Instant::now();
    let table6 = dfz::dfz_v6_table(opts.quick);
    println!(
        "  v6 table {} prefixes generated in {:.1} s",
        table6.len(),
        t0.elapsed().as_secs_f64()
    );
    let trace6 = dfz::dfz_v6_trace(&table6, opts.packets, opts.seed);
    let mut v6 = dfz::run_v6_gate(&table6, &trace6, 1);
    rows.append(&mut v6.rows);
    failures.append(&mut v6.failures);

    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dfz.json");
    let out = opts.out.as_deref().unwrap_or(default_out);
    write_rows(out, &rows, false).expect("writing benchmark JSON");
    println!("wrote {} rows to {out}", rows.len());

    if !failures.is_empty() {
        eprintln!("bench_lookup --dfz FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("bench_lookup --dfz passed");
}

fn main() {
    let opts = parse_args();
    if opts.dfz {
        run_dfz(&opts);
        return;
    }
    let (table, trace) = stress_workload(opts.prefixes, opts.packets, opts.seed);
    let threads_avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut thread_sweep = vec![1usize];
    match opts.threads {
        Some(n) if n > 1 => thread_sweep.push(n),
        Some(_) => {}
        None if threads_avail > 1 => thread_sweep.push(threads_avail),
        None => {}
    }
    println!(
        "bench_lookup: {} packets ({} distinct), table {} prefixes, threads {:?}, batch {}",
        trace.len(),
        trace.distinct(),
        table.len(),
        thread_sweep,
        DEFAULT_BATCH
    );

    let engines = all_engines(&table);
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for &threads in &thread_sweep {
        let (r, f) = run_gate(&engines, &trace, threads);
        rows.extend(r);
        failures.extend(f);
    }

    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lookup.json");
    let out = opts.out.as_deref().unwrap_or(default_out);
    write_rows(out, &rows, false).expect("writing benchmark JSON");
    println!("wrote {} rows to {out}", rows.len());

    if !failures.is_empty() {
        eprintln!("bench_lookup FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("bench_lookup passed");
}
