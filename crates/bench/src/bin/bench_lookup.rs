//! **Lookup-throughput benchmark and gate**: replay one destination
//! trace through every LPM engine, scalar vs batched, across a thread
//! sweep, and write `BENCH_lookup.json` at the repo root for
//! PR-over-PR tracking.
//!
//! For each engine the trace is sharded contiguously across scoped
//! worker threads sharing one `Arc<dyn Lpm + Send + Sync>`; each worker
//! replays its shard either one `lookup_counted` call per address
//! (scalar — the pre-batch hot path) or through `lookup_batch` in
//! 32-address chunks. Scalar and batch checksums are asserted equal, so
//! every benchmark run re-verifies the batch contract on real traffic.
//!
//! The gate (enforced at one thread, where the ratio is a pure
//! batch-vs-scalar comparison): batch ≥ 1.5× scalar packets/sec on
//! DIR-24-8 and Lulea, ≥ 1.0× on the pointer-heavier DP trie and on
//! the already-line-economical Poptrie. Exits
//! non-zero on a violation so CI can run `bench_lookup --quick`.
//! Flags: `--quick`, `--packets N`, `--seed N`, `--threads N`,
//! `--out PATH`.

use spal_bench::lookup::{all_engines, run_gate, stress_workload, write_rows, DEFAULT_BATCH};

struct Options {
    packets: usize,
    prefixes: usize,
    seed: u64,
    threads: Option<usize>,
    out: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        packets: 400_000,
        prefixes: spal_bench::lookup::STRESS_PREFIXES,
        seed: 1,
        threads: None,
        out: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.packets = 100_000,
            "--packets" => {
                i += 1;
                opts.packets = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--packets needs a number");
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs a number");
            }
            "--prefixes" => {
                i += 1;
                opts.prefixes = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--prefixes needs a number");
            }
            "--threads" => {
                i += 1;
                opts.threads = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--threads needs a number"),
                );
            }
            "--out" => {
                i += 1;
                opts.out = Some(args.get(i).expect("--out needs a path").clone());
            }
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }
    opts
}

fn main() {
    let opts = parse_args();
    let (table, trace) = stress_workload(opts.prefixes, opts.packets, opts.seed);
    let threads_avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut thread_sweep = vec![1usize];
    match opts.threads {
        Some(n) if n > 1 => thread_sweep.push(n),
        Some(_) => {}
        None if threads_avail > 1 => thread_sweep.push(threads_avail),
        None => {}
    }
    println!(
        "bench_lookup: {} packets ({} distinct), table {} prefixes, threads {:?}, batch {}",
        trace.len(),
        trace.distinct(),
        table.len(),
        thread_sweep,
        DEFAULT_BATCH
    );

    let engines = all_engines(&table);
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for &threads in &thread_sweep {
        let (r, f) = run_gate(&engines, &trace, threads);
        rows.extend(r);
        failures.extend(f);
    }

    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lookup.json");
    let out = opts.out.as_deref().unwrap_or(default_out);
    write_rows(out, &rows, false).expect("writing benchmark JSON");
    println!("wrote {} rows to {out}", rows.len());

    if !failures.is_empty() {
        eprintln!("bench_lookup FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("bench_lookup passed");
}
