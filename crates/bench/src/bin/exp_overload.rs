//! **E17 / §5.2 baseline assumptions** — Overload behaviour. The paper
//! compares against a conventional router whose mean lookup time is
//! "200 ns … if the queuing time of the FE is ignored optimistically":
//! at 40 Gbps (a packet every ~10 cycles) an FE that needs 40 cycles per
//! lookup is hopelessly oversubscribed and its queue diverges. This
//! experiment runs both routers open-loop for a fixed horizon and shows
//! the divergence directly — what "ignored optimistically" hides.
//!
//! Run: `cargo run --release -p spal-bench --bin exp_overload`

use spal_bench::setup::{parallel_map, rt2, trace_streams, ExpOptions};
use spal_bench::TablePrinter;
use spal_cache::LrCacheConfig;
use spal_sim::{RouterKind, RouterSim, SimConfig, SimReport};
use spal_traffic::PresetName;

fn main() {
    let opts = ExpOptions::from_args();
    let table = rt2();
    let psi = 4usize;
    let horizon: u64 = 1_500_000; // 7.5 ms of 5 ns cycles
    println!("E17: open-loop behaviour over {horizon} cycles at 40 Gbps, psi={psi}, trace D_75");
    let kinds = [
        ("SPAL", RouterKind::Spal),
        ("cache-only [6]", RouterKind::CacheOnly),
        ("conventional", RouterKind::Conventional),
    ];
    let jobs: Vec<_> = kinds
        .iter()
        .map(|&(_, kind)| {
            let table = &table;
            move || -> SimReport {
                let traces =
                    trace_streams(PresetName::D75, table, psi, opts.packets_per_lc, opts.seed);
                RouterSim::new(
                    table,
                    &traces,
                    SimConfig {
                        kind,
                        psi,
                        cache: LrCacheConfig::paper(4096),
                        packets_per_lc: opts.packets_per_lc,
                        seed: opts.seed,
                        ..SimConfig::default()
                    },
                )
                .run_for(horizon)
            }
        })
        .collect();
    let reports = parallel_map(jobs);

    let offered = (horizon as f64 / 10.0) as u64 * psi as u64; // ~1 packet/10 cycles/LC
    let mut printer = TablePrinter::new(&[
        "router",
        "completed",
        "completion %",
        "mean cycles",
        "max FE queue",
    ]);
    for ((name, _), report) in kinds.iter().zip(&reports) {
        let done = report.latency.count();
        let peak_queue = report
            .per_lc
            .iter()
            .map(|l| l.fe_queue_high_water)
            .max()
            .unwrap_or(0);
        printer.row(&[
            name.to_string(),
            done.to_string(),
            format!(
                "{:.1}%",
                100.0 * done as f64 / offered.min((opts.packets_per_lc * psi) as u64) as f64
            ),
            format!("{:.2}", report.mean_lookup_cycles()),
            peak_queue.to_string(),
        ]);
    }
    printer.print();
    println!();
    println!("Offered load: ~{offered} packets over the horizon (line rate).");
    println!("Expected: SPAL completes essentially everything with a short FE queue;");
    println!("the conventional router's FE (capacity 1 lookup / 40 cycles = 1/4 of the");
    println!("offered rate) completes ~25% and its queue grows without bound — the");
    println!("divergence the paper's 'queuing time ignored optimistically' sidesteps.");
}
