//! **Ablations** — the §3.2 design choices DESIGN.md calls out, each
//! toggled independently at ψ = 4, β = 4K, trace D_75:
//!
//! * victim cache (8 blocks vs none),
//! * early cache-block recording (W-bit reservation vs none),
//! * mix-aware replacement (M-bit rule vs plain LRU),
//! * set associativity (1 / 2 / 4 / 8; the paper picks 4),
//! * replacement policy (LRU / FIFO / random).
//!
//! Run: `cargo run --release -p spal-bench --bin exp_ablations`

use spal_bench::setup::{parallel_map, rt2, trace_streams, ExpOptions};
use spal_bench::TablePrinter;
use spal_cache::{LrCacheConfig, MixMode, ReplacementPolicy};
use spal_sim::{RouterKind, RouterSim, SimConfig};
use spal_traffic::PresetName;

fn run_case(
    label: &str,
    cache: LrCacheConfig,
    early_recording: bool,
    opts: ExpOptions,
    table: &spal_rib::RoutingTable,
) -> (String, spal_sim::SimReport) {
    let traces = trace_streams(PresetName::D75, table, 4, opts.packets_per_lc, opts.seed);
    let report = RouterSim::new(
        table,
        &traces,
        SimConfig {
            kind: RouterKind::Spal,
            psi: 4,
            cache,
            early_recording,
            packets_per_lc: opts.packets_per_lc,
            seed: opts.seed,
            ..SimConfig::default()
        },
    )
    .run();
    (label.to_string(), report)
}

fn main() {
    let opts = ExpOptions::from_args();
    let table = rt2();
    let base = LrCacheConfig::paper(4096);
    println!(
        "Ablations at psi=4, beta=4K, trace D_75, {} packets/LC",
        opts.packets_per_lc
    );

    let cases: Vec<(String, LrCacheConfig, bool)> = vec![
        ("baseline (paper)".into(), base.clone(), true),
        (
            "no victim cache".into(),
            LrCacheConfig {
                victim_blocks: 0,
                ..base.clone()
            },
            true,
        ),
        ("no early recording".into(), base.clone(), false),
        (
            "mix rule off (plain LRU)".into(),
            LrCacheConfig {
                mix_mode: MixMode::Ignore,
                ..base.clone()
            },
            true,
        ),
        (
            "assoc 1".into(),
            LrCacheConfig {
                assoc: 1,
                mix_rem_fraction: 0.0,
                ..base.clone()
            },
            true,
        ),
        // Where the victim cache earns its 8 blocks: conflict misses of a
        // direct-mapped array (at 4-way it is nearly idle, see row 2).
        (
            "assoc 1, no victim".into(),
            LrCacheConfig {
                assoc: 1,
                mix_rem_fraction: 0.0,
                victim_blocks: 0,
                ..base.clone()
            },
            true,
        ),
        (
            "assoc 2".into(),
            LrCacheConfig {
                assoc: 2,
                ..base.clone()
            },
            true,
        ),
        (
            "assoc 8".into(),
            LrCacheConfig {
                assoc: 8,
                ..base.clone()
            },
            true,
        ),
        (
            "FIFO replacement".into(),
            LrCacheConfig {
                policy: ReplacementPolicy::Fifo,
                ..base.clone()
            },
            true,
        ),
        (
            "random replacement".into(),
            LrCacheConfig {
                policy: ReplacementPolicy::Random,
                ..base.clone()
            },
            true,
        ),
    ];

    let jobs: Vec<_> = cases
        .into_iter()
        .map(|(label, cache, early)| {
            let table = &table;
            move || run_case(&label, cache, early, opts, table)
        })
        .collect();
    let results = parallel_map(jobs);

    let mut printer = TablePrinter::new(&[
        "variant",
        "mean cycles",
        "hit rate",
        "fabric msgs",
        "FE lookups",
    ]);
    for (label, report) in &results {
        printer.row(&[
            label.clone(),
            format!("{:.2}", report.mean_lookup_cycles()),
            format!("{:.3}", report.hit_rate()),
            report.fabric.sent.to_string(),
            report
                .per_lc
                .iter()
                .map(|l| l.fe_lookups)
                .sum::<u64>()
                .to_string(),
        ]);
    }
    printer.print();
    println!();
    println!("Expected: the paper's configuration at or near the best mean; assoc 4 ~ assoc 8");
    println!("(diminishing returns, Sec. 3.2); no-early-recording inflates fabric/FE work.");
}
