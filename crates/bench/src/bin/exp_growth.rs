//! **E15 / §1 scalability claim** — "It takes no specific traffic into
//! consideration when selecting the partitioning bits, promising good
//! scalability". Concretely: bits chosen for today's table should keep
//! the partitions balanced as the BGP table grows (the paper opens with
//! the table-growth problem). We select bits on a table, grow it through
//! announce-heavy update churn in steps, and track partition balance
//! with the *frozen* bits versus freshly reselected ones.
//!
//! Run: `cargo run --release -p spal-bench --bin exp_growth`

use spal_bench::TablePrinter;
use spal_core::bits::{eta_for, select_bits};
use spal_core::partition::Partitioning;
use spal_rib::updates::{apply, update_stream, UpdateStreamConfig};
use spal_rib::{synth, RoutingTable};

fn main() {
    let psi = 16;
    let start = synth::synthesize(&synth::SynthConfig::sized(80_000, 0xBEEF));
    let frozen_bits = select_bits(&start, eta_for(psi));
    println!(
        "E15: partition balance under table growth; psi={psi}, bits frozen at 80k prefixes: {frozen_bits:?}"
    );

    let mut printer = TablePrinter::new(&[
        "prefixes",
        "frozen bits max/min",
        "frozen overhead",
        "fresh bits",
        "fresh max/min",
    ]);
    let mut table: RoutingTable = start;
    let mut seed = 1u64;
    for step in 0..=4 {
        if step > 0 {
            // ~20k net new announcements per step (announce-heavy churn).
            let (updates, _) = update_stream(
                &table,
                &UpdateStreamConfig {
                    count: 45_000,
                    withdraw_fraction: 0.25,
                    seed,
                },
            );
            seed += 1;
            for u in updates {
                apply(&mut table, u);
            }
        }
        let frozen = Partitioning::new(&table, frozen_bits.clone(), psi).stats(&table);
        let fresh_bits = select_bits(&table, eta_for(psi));
        let fresh = Partitioning::new(&table, fresh_bits.clone(), psi).stats(&table);
        printer.row(&[
            table.len().to_string(),
            format!("{:.3}", frozen.imbalance_ratio()),
            format!("{:.2}%", frozen.replication_overhead() * 100.0),
            format!("{fresh_bits:?}"),
            format!("{:.3}", fresh.imbalance_ratio()),
        ]);
    }
    printer.print();
    println!();
    println!("The claim holds if the frozen bits' max/min ratio stays near the freshly");
    println!("reselected one as the table grows — bit selection keys on structural");
    println!("prefix statistics that churn moves slowly.");
}
