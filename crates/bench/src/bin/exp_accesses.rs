//! **E4 / §5.1 text** — Mean memory accesses per lookup for the three
//! tries over RT_1 and RT_2, and the FE cycle costs they imply under the
//! paper's timing model (12 ns SRAM access + 120 ns code on 5 ns
//! cycles).
//!
//! Paper's measurements on its snapshots: Lulea 6.2 (RT_1) / 6.6 (RT_2)
//! accesses, DP ≈16 accesses for either — hence the 40-cycle and
//! 62-cycle FE models. Shape to reproduce: Lulea ≈ 5–8, DP ≈ 2–3× Lulea,
//! implied cycles ≈ 40 vs ≈ 60.
//!
//! Run: `cargo run --release -p spal-bench --bin exp_accesses`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spal_bench::setup::{rt1, rt2};
use spal_bench::TablePrinter;
use spal_core::{ForwardingTable, LpmAlgorithm};
use spal_lpm::model::FeTimingModel;
use spal_lpm::{mean_accesses, Lpm};
use spal_rib::RoutingTable;

/// Traffic-like address sample: uniform over routes, uniform within the
/// matched route (covered traffic, as FEs see after the LR-cache).
fn sample_addresses(table: &RoutingTable, n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let e = table.entries()[rng.gen_range(0..table.len())];
            e.prefix.first_addr() + (rng.gen::<u64>() % e.prefix.size()) as u32
        })
        .collect()
}

fn main() {
    let algorithms = [
        ("Lulea", LpmAlgorithm::Lulea),
        ("DP", LpmAlgorithm::Dp),
        ("LC(0.25)", LpmAlgorithm::Lc { fill_factor: 0.25 }),
        ("Binary", LpmAlgorithm::Binary),
        ("DIR-24-8", LpmAlgorithm::Dir24),
    ];
    let tables = [("RT_1", rt1()), ("RT_2", rt2())];
    let timing = FeTimingModel::default();
    println!("E4: mean memory accesses per lookup and implied FE cycles (paper Sec. 5.1)");
    let mut printer = TablePrinter::new(&["trie", "table", "mean accesses", "implied FE cycles"]);
    for (tname, table) in &tables {
        let addrs = sample_addresses(table, 20_000, 11);
        for (aname, algo) in algorithms {
            let fwd = ForwardingTable::build(algo, table);
            let mean = mean_accesses(&fwd, &addrs);
            printer.row(&[
                aname.to_string(),
                tname.to_string(),
                format!("{mean:.2}"),
                timing.lookup_cycles(mean).to_string(),
            ]);
        }
    }
    printer.print();
    println!();
    println!("Paper: Lulea 6.2/6.6 accesses -> ~40 cycles; DP ~16 accesses -> ~62 cycles.");
    println!("DIR-24-8 [10] runs at memory speed (1-2 accesses) but needs >32 MB per");
    println!("instance (Sec. 2.1) — the memory/speed trade-off SPAL avoids:");
    let d = ForwardingTable::build(LpmAlgorithm::Dir24, &rt2());
    println!(
        "  DIR-24-8 storage for RT_2: {:.1} MB vs Lulea's {:.1} KB",
        d.storage_bytes() as f64 / (1 << 20) as f64,
        ForwardingTable::build(LpmAlgorithm::Lulea, &rt2()).storage_bytes() as f64 / 1024.0
    );
}
