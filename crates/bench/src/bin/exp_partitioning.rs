//! **E1 / §4 text** — Partitioning-bit positions and ROT-partition sizes
//! for RT_1 and RT_2 at ψ = 4 and ψ = 16.
//!
//! The paper reports bits {12, 14} (RT_1) / {8, 14} (RT_2) for ψ = 4 and
//! {12, 14, 15, 16} / {11, 13, 14, 16} for ψ = 16 on its exact table
//! snapshots; on the synthetic stand-ins the positions land in the same
//! mid-prefix band (≪ 24, per Criterion 1) and the partitions come out
//! near-equal (Criterion 2).
//!
//! Run: `cargo run --release -p spal-bench --bin exp_partitioning`

use spal_bench::setup::{rt1, rt2};
use spal_bench::TablePrinter;
use spal_core::bits::{eta_for, select_bits};
use spal_core::partition::{rot_partitions, PartitionStats, Partitioning};

fn main() {
    let tables = [("RT_1", rt1()), ("RT_2", rt2())];
    let mut printer = TablePrinter::new(&[
        "table",
        "psi",
        "bits",
        "min",
        "max",
        "total",
        "overhead",
        "imbalance",
    ]);
    for (name, table) in &tables {
        for psi in [4usize, 16] {
            let eta = eta_for(psi);
            let bits = select_bits(table, eta);
            let part = Partitioning::new(table, bits.clone(), psi);
            let stats = part.stats(table);
            printer.row(&[
                name.to_string(),
                psi.to_string(),
                format!("{bits:?}"),
                stats.min_size.to_string(),
                stats.max_size.to_string(),
                stats.total_with_replication.to_string(),
                format!("{:.1}%", stats.replication_overhead() * 100.0),
                format!("{:.3}", stats.imbalance_ratio()),
            ]);
        }
    }
    println!("E1: partitioning bits and per-LC table sizes (paper Sec. 4)");
    println!(
        "RT_1 = {} prefixes, RT_2 = {} prefixes (synthetic stand-ins)",
        tables[0].1.len(),
        tables[1].1.len()
    );
    printer.print();

    // Raw ROT-partition sizes for the psi=4 cases, like the paper's text.
    for (name, table) in &tables {
        let bits = select_bits(table, 2);
        let parts = rot_partitions(table, &bits);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let stats = PartitionStats::of(table.len(), sizes.iter().copied());
        println!(
            "{name}: bits {bits:?} -> ROT-partition sizes {sizes:?} (max/min {:.3})",
            stats.imbalance_ratio()
        );
    }
    println!();
    println!("Paper (its snapshots): RT_1 bits {{12,14}} / RT_2 bits {{8,14}} at psi=4;");
    println!("RT_1 {{12,14,15,16}} / RT_2 {{11,13,14,16}} at psi=16. Expect the same");
    println!("mid-prefix band (all bits < 24) and near-equal partition sizes here.");
}
