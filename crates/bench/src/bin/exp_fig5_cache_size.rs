//! **E6 / Fig. 5** — Mean lookup time (cycles) versus LR-cache size β
//! for ψ = 16, 40 Gbps, 40-cycle FE, five traces; γ = 50 % (25 % at
//! β = 1K, the paper's small-cache rule).
//!
//! Paper's shape: monotone improvement with β; at β = 4K every trace is
//! below 9.2 cycles (> 21 Mpps per LC, > 336 Mpps router-wide).
//!
//! Run: `cargo run --release -p spal-bench --bin exp_fig5_cache_size`

use spal_bench::setup::{parallel_map, rt2, trace_streams, ExpOptions};
use spal_bench::TablePrinter;
use spal_cache::LrCacheConfig;
use spal_sim::{RouterKind, RouterSim, SimConfig};
use spal_traffic::ALL_PRESETS;

fn main() {
    let opts = ExpOptions::from_args();
    let betas = [1024usize, 2048, 4096, 8192];
    let table = rt2();
    println!(
        "Fig. 5 reproduction: mean lookup time (cycles) vs LR-cache size; psi=16, {} packets/LC",
        opts.packets_per_lc
    );
    let mut printer = TablePrinter::new(&["trace", "1K", "2K", "4K", "8K"]);
    for name in ALL_PRESETS {
        let jobs: Vec<_> = betas
            .iter()
            .map(|&beta| {
                let table = &table;
                move || {
                    let traces = trace_streams(name, table, 16, opts.packets_per_lc, opts.seed);
                    let config = SimConfig {
                        kind: RouterKind::Spal,
                        psi: 16,
                        cache: LrCacheConfig::paper(beta),
                        packets_per_lc: opts.packets_per_lc,
                        seed: opts.seed,
                        ..SimConfig::default()
                    };
                    RouterSim::new(table, &traces, config).run()
                }
            })
            .collect();
        let reports = parallel_map(jobs);
        let mut cells = vec![name.label().to_string()];
        cells.extend(
            reports
                .iter()
                .map(|r| format!("{:.2}", r.mean_lookup_cycles())),
        );
        printer.row(&cells);
        eprintln!(
            "{}: Mpps/LC at 4K = {:.1}",
            name.label(),
            reports[2].latency.lookups_per_second() / 1e6
        );
    }
    printer.print();
    printer.save_results_csv("fig5_cache_size");
    println!();
    println!("Paper's shape: larger beta => shorter lookups; at beta=4K all traces");
    println!("below 9.2 cycles, i.e. beyond 21 Mpps per LC (336 Mpps at psi=16).");
}
