//! **E12 / §2.2 contrast** — Exact-address LR-caching versus the
//! address-range caching of ref \[6\], and the effect of prefix
//! exceptions.
//!
//! The paper's §2.2 argument: range merging improves coverage only while
//! ranges stay large; backbone tables carry /32 host routes and a growing
//! number of prefix exceptions, which drive the minimum range granularity
//! to 1 and erode the advantage. Traffic here is spatially dense (many
//! hosts per active subnet — the case range caching is built for), and we
//! compare three tables: exception-free (≤ /24 only), RT_2 as-is, and
//! RT_2 with extra host-route exceptions injected into the active
//! subnets.
//!
//! Run: `cargo run --release -p spal-bench --bin exp_range_cache`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spal_bench::setup::{rt2, ExpOptions};
use spal_bench::TablePrinter;
use spal_cache::range::{RangeCache, RangeEntry};
use spal_cache::{LrCache, LrCacheConfig, Origin, ProbeResult};
use spal_core::baseline::{interval_map, interval_of, interval_stats};
use spal_rib::{NextHop, RouteEntry, RoutingTable};
use spal_traffic::locality::LocalityModel;
use spal_traffic::{AddressPool, Trace};

const ENTRIES: usize = 1024;

fn run_case(name: &str, table: &RoutingTable, trace: &Trace, printer: &mut TablePrinter) {
    let map = interval_map(table);
    let stats = interval_stats(&map);

    let mut range: RangeCache<Option<u16>> = RangeCache::new(ENTRIES);
    for &addr in trace.destinations() {
        if range.probe(addr).is_none() {
            let iv = interval_of(&map, addr);
            range.insert(RangeEntry {
                start: iv.start,
                end: iv.end,
                value: iv.next_hop.map(|h| h.0),
            });
        }
    }

    let mut exact: LrCache<Option<NextHop>> = LrCache::new(LrCacheConfig::paper(ENTRIES));
    for &addr in trace.destinations() {
        if matches!(exact.probe(addr), ProbeResult::Miss) {
            let nh = table.longest_match(addr).map(|e| e.next_hop);
            let _ = exact.fill(addr, nh, Origin::Loc);
        }
    }

    printer.row(&[
        name.to_string(),
        stats.count.to_string(),
        stats.min_size.to_string(),
        format!("{:.3}", range.stats().hit_rate()),
        format!("{:.3}", exact.stats().hit_rate()),
    ]);
}

fn main() {
    let opts = ExpOptions::from_args();
    let packets = opts.packets_per_lc;
    let full = rt2();
    let clean = RoutingTable::from_entries(
        full.entries()
            .iter()
            .copied()
            .filter(|e| e.prefix.len() <= 24),
    );

    // Spatially dense traffic: 16 hosts per active subnet, 16k distinct.
    let pool = AddressPool::covered_clustered(&clean, 16_384, 16, 41);
    let trace = Trace::generate(
        "dense",
        &pool,
        LocalityModel::ZipfBursty {
            alpha: 1.1,
            burst_prob: 0.35,
        },
        packets,
        42,
    );

    // Exception-heavy variant: a /32 injected next to a share of the
    // active hosts (the "growing number of prefix exceptions" of §2.2).
    let mut rng = StdRng::seed_from_u64(43);
    let mut spiked = full.entries().to_vec();
    for &addr in pool.addresses().iter().step_by(4) {
        spiked.push(RouteEntry {
            prefix: spal_rib::Prefix::new(addr ^ 1, 32).expect("len 32"),
            next_hop: NextHop(rng.gen_range(0..32)),
        });
    }
    let spiked = RoutingTable::from_entries(spiked);

    println!(
        "E12: range caching [6] vs exact LR-caching; {} cache entries, {} packets, dense traffic",
        ENTRIES, packets
    );
    let mut printer = TablePrinter::new(&[
        "table",
        "intervals",
        "min range",
        "range-cache hit",
        "exact-cache hit",
    ]);
    run_case("no exceptions (<=/24)", &clean, &trace, &mut printer);
    run_case("RT_2 as-is", &full, &trace, &mut printer);
    run_case("RT_2 + injected /32s", &spiked, &trace, &mut printer);
    printer.print();
    println!();
    println!("Sec. 2.2's shape: with large ranges (row 1) the range cache's per-entry");
    println!("coverage beats exact caching; exceptions shrink the minimum range to 1 and");
    println!("fragment the hot subnets (row 3), eroding the advantage while the exact");
    println!("LR-cache is unaffected — SPAL's reason for caching single results.");
}
