//! **E8 / §1 & §5.2 headline** — A SPAL router with ψ = 16 and β = 4K
//! forwards > 336 Mpps, 4.2× the conventional router whose every lookup
//! costs the full 200 ns (40 cycles) FE time ("if the queuing time of
//! the FE is ignored optimistically" — the paper's own baseline
//! arithmetic, reproduced here, plus a simulated cache-only comparison).
//!
//! Run: `cargo run --release -p spal-bench --bin exp_headline`

use spal_bench::setup::{parallel_map, rt2, trace_streams, ExpOptions};
use spal_bench::TablePrinter;
use spal_cache::LrCacheConfig;
use spal_sim::{RouterKind, RouterSim, SimConfig};
use spal_traffic::ALL_PRESETS;

fn main() {
    let opts = ExpOptions::from_args();
    let table = rt2();
    println!(
        "E8: headline forwarding rates at psi=16, beta=4K, 40 Gbps, 40-cycle FE ({} packets/LC)",
        opts.packets_per_lc
    );
    // Conventional baseline, per the paper: 40 cycles/lookup flat.
    let conv_cycles = 40.0;
    let conv_mpps_per_lc = 1.0 / (conv_cycles * 5e-9) / 1e6;
    let mut printer = TablePrinter::new(&[
        "trace",
        "SPAL cycles",
        "SPAL Mpps (router)",
        "conv Mpps (router)",
        "speedup",
        "cache-only cycles",
    ]);
    for name in ALL_PRESETS {
        let table_ref = &table;
        let jobs: Vec<Box<dyn FnOnce() -> spal_sim::SimReport + Send>> = vec![
            Box::new(move || {
                let traces = trace_streams(name, table_ref, 16, opts.packets_per_lc, opts.seed);
                RouterSim::new(
                    table_ref,
                    &traces,
                    SimConfig {
                        kind: RouterKind::Spal,
                        psi: 16,
                        cache: LrCacheConfig::paper(4096),
                        packets_per_lc: opts.packets_per_lc,
                        seed: opts.seed,
                        ..SimConfig::default()
                    },
                )
                .run()
            }),
            Box::new(move || {
                let traces = trace_streams(name, table_ref, 16, opts.packets_per_lc, opts.seed);
                RouterSim::new(
                    table_ref,
                    &traces,
                    SimConfig {
                        kind: RouterKind::CacheOnly,
                        psi: 16,
                        cache: LrCacheConfig::paper(4096),
                        packets_per_lc: opts.packets_per_lc,
                        seed: opts.seed,
                        ..SimConfig::default()
                    },
                )
                .run()
            }),
        ];
        let mut reports = parallel_map(jobs);
        let cache_only = reports.pop().expect("two jobs");
        let spal = reports.pop().expect("two jobs");
        let spal_cycles = spal.mean_lookup_cycles();
        let spal_router_mpps = spal.router_packets_per_second() / 1e6;
        printer.row(&[
            name.label().to_string(),
            format!("{spal_cycles:.2}"),
            format!("{spal_router_mpps:.0}"),
            format!("{:.0}", conv_mpps_per_lc * 16.0),
            format!("{:.1}x", conv_cycles / spal_cycles),
            format!("{:.2}", cache_only.mean_lookup_cycles()),
        ]);
    }
    printer.print();
    println!();
    println!("Paper: SPAL at psi=16/beta=4K stays below 9.2 cycles (>336 Mpps router-wide), 4.2x");
    println!(
        "the conventional router's {} Mpps; our synthetic traces sit at the locality level",
        (conv_mpps_per_lc * 16.0) as u64
    );
    println!("the paper's >0.9 hit-rate band implies, so the measured speedup is >= 4.2x.");
    println!("Cache-only (ref [6]) sits between the two: caches help, sharing helps more.");
}
