//! **E3 / Fig. 3** — Total SRAM (KB) for the three tries, with (suffix
//! `_S`, SPAL-partitioned, summed over all ψ partitions) and without
//! (`_W`, one whole-table copy per LC × ψ) partitioning, for the four
//! cases {ψ=4, ψ=16} × {RT_1, RT_2}.
//!
//! Fig. 3 is a log-scale bar chart; the series to reproduce: `_W` bars
//! sit roughly ψ× above the corresponding whole-table size, `_S` bars
//! sit near the whole-table size (partitioning splits, replication adds
//! a little), so `_S` ≪ `_W` everywhere, and Lulea < LC < DP in size.
//!
//! Run: `cargo run --release -p spal-bench --bin exp_fig3_sram`

use spal_bench::fmt::kbytes;
use spal_bench::setup::{rt1, rt2};
use spal_bench::TablePrinter;
use spal_core::bits::{eta_for, select_bits};
use spal_core::partition::Partitioning;
use spal_core::{ForwardingTable, LpmAlgorithm};
use spal_lpm::Lpm;

fn main() {
    let algorithms = [
        ("DP", LpmAlgorithm::Dp),
        ("LL", LpmAlgorithm::Lulea),
        ("LC", LpmAlgorithm::Lc { fill_factor: 0.25 }),
    ];
    let tables = [("RT_1", rt1()), ("RT_2", rt2())];
    println!(
        "E3 / Fig. 3: total SRAM (KB) across the router, partitioned (_S) vs whole-per-LC (_W)"
    );
    let mut printer = TablePrinter::new(&["case", "DP_S", "DP_W", "LL_S", "LL_W", "LC_S", "LC_W"]);
    for psi in [4usize, 16] {
        for (tname, table) in &tables {
            let bits = select_bits(table, eta_for(psi));
            let part = Partitioning::new(table, bits, psi);
            let partitions = part.forwarding_tables(table);
            let mut cells = vec![format!("psi={psi}, {tname}")];
            for (_, algo) in algorithms {
                let s: usize = partitions
                    .iter()
                    .map(|t| ForwardingTable::build(algo, t).storage_bytes())
                    .sum();
                let w = ForwardingTable::build(algo, table).storage_bytes() * psi;
                cells.push(kbytes(s));
                cells.push(kbytes(w));
            }
            printer.row(&cells);
        }
    }
    printer.print();
    println!();
    println!("Expected shape (paper's log-scale Fig. 3): every _S bar far below its _W bar;");
    println!("the gap grows with psi (the _W series scales with psi, the _S series does not);");
    println!("Lulea (LL) smallest, DP largest.");
}
