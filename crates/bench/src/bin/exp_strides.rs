//! **E14 / §2.1 & ref 15 context** — The stride trade-off behind every
//! multibit structure: "the number of bits inspected at each time (called
//! the stride) affects the search speed and the memory amount needed for
//! keeping the trie". Sweeps fixed-stride CPE tries over RT_2 and places
//! the paper's structures (Lulea = compressed 16/8/8, DIR-24-8 = 24/8 in
//! hardware, LC-trie = adaptive strides) on the same axes.
//!
//! Run: `cargo run --release -p spal-bench --bin exp_strides`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spal_bench::setup::rt2;
use spal_bench::TablePrinter;
use spal_core::{ForwardingTable, LpmAlgorithm};
use spal_lpm::model::FeTimingModel;
use spal_lpm::multibit::MultibitTrie;
use spal_lpm::{mean_accesses, Lpm};
use spal_rib::RoutingTable;

fn sample(table: &RoutingTable, n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let e = table.entries()[rng.gen_range(0..table.len())];
            e.prefix.first_addr() + (rng.gen::<u64>() % e.prefix.size()) as u32
        })
        .collect()
}

fn main() {
    let table = rt2();
    let addrs = sample(&table, 20_000, 5);
    let timing = FeTimingModel::default();
    println!(
        "E14: stride vs storage vs speed on RT_2 ({} prefixes)",
        table.len()
    );
    let mut printer = TablePrinter::new(&["structure", "storage KB", "mean accesses", "FE cycles"]);
    // NB: wide second levels (e.g. 16/16) are omitted: tens of thousands
    // of sparse 2^16-slot nodes cost tens of GB — the uncompressed
    // blow-up that motivates Lulea's bitmaps in the first place.
    let stride_sets: [&[u8]; 6] = [
        &[4, 4, 4, 4, 4, 4, 4, 4],
        &[8, 8, 8, 8],
        &[12, 12, 8],
        &[16, 8, 8],
        &[16, 8, 4, 4],
        &[24, 8],
    ];
    for strides in stride_sets {
        let t = MultibitTrie::build(&table, strides);
        let mean = mean_accesses(&t, &addrs);
        printer.row(&[
            format!("CPE {strides:?}"),
            format!("{:.0}", t.storage_bytes() as f64 / 1024.0),
            format!("{mean:.2}"),
            timing.lookup_cycles(mean).to_string(),
        ]);
    }
    for (label, algo) in [
        ("Lulea (compressed 16/8/8)", LpmAlgorithm::Lulea),
        (
            "LC-trie (adaptive, fill 0.25)",
            LpmAlgorithm::Lc { fill_factor: 0.25 },
        ),
        ("DIR-24-8 (hardware 24/8)", LpmAlgorithm::Dir24),
        ("DP trie (uni-bit, compressed)", LpmAlgorithm::Dp),
    ] {
        let t = ForwardingTable::build(algo, &table);
        let mean = mean_accesses(&t, &addrs);
        printer.row(&[
            label.to_string(),
            format!("{:.0}", t.storage_bytes() as f64 / 1024.0),
            format!("{mean:.2}"),
            timing.lookup_cycles(mean).to_string(),
        ]);
    }
    printer.print();
    println!();
    println!("The ref-[15] trade-off: wider strides buy accesses with memory. Lulea's");
    println!("compression gets 16/8/8 speed at a fraction of the CPE 16/8/8 footprint —");
    println!("why the paper adopts it for the FEs — and partitioning (Sec. 4) shrinks");
    println!("whichever point on this curve you pick by another ~1/psi.");
}
