//! **E9 / §2.3 contrast** — SPAL's bit partitioning versus ref \[1\]'s
//! partition-by-length: per-partition size spread at ψ ∈ {4, 8, 16} on
//! RT_1 and RT_2.
//!
//! The point the paper makes: length classes are wildly unequal (/24
//! alone is ≈ half the table), every FE must keep *all* partitions (so
//! per-LC memory does not shrink with ψ), and no lookup result is
//! shared. SPAL's bit partitions are near-equal and per-LC memory drops
//! as ψ grows.
//!
//! Run: `cargo run --release -p spal-bench --bin exp_length_partition`

use spal_bench::setup::{rt1, rt2};
use spal_bench::TablePrinter;
use spal_core::baseline::partition_by_length;
use spal_core::bits::{eta_for, select_bits};
use spal_core::partition::{PartitionStats, Partitioning};

fn main() {
    let tables = [("RT_1", rt1()), ("RT_2", rt2())];
    println!("E9: SPAL bit partitioning vs partition-by-length (ref [1])");
    let mut printer = TablePrinter::new(&[
        "table",
        "psi",
        "scheme",
        "min",
        "max",
        "max/min",
        "per-LC prefixes",
    ]);
    for (tname, table) in &tables {
        for psi in [4usize, 8, 16] {
            let bits = select_bits(table, eta_for(psi));
            let spal = Partitioning::new(table, bits, psi).stats(table);
            printer.row(&[
                tname.to_string(),
                psi.to_string(),
                "SPAL".to_string(),
                spal.min_size.to_string(),
                spal.max_size.to_string(),
                format!("{:.2}", spal.imbalance_ratio()),
                // Each LC holds ONE partition under SPAL.
                spal.max_size.to_string(),
            ]);
            let parts = partition_by_length(table, psi);
            let len_stats = PartitionStats::of(table.len(), parts.iter().map(|p| p.len()));
            printer.row(&[
                tname.to_string(),
                psi.to_string(),
                "by-length".to_string(),
                len_stats.min_size.to_string(),
                len_stats.max_size.to_string(),
                format!("{:.2}", len_stats.imbalance_ratio()),
                // Ref [1] keeps ALL partitions at each FE.
                table.len().to_string(),
            ]);
        }
    }
    printer.print();
    println!();
    println!("Shape: SPAL max/min stays near 1 and per-LC prefixes shrink ~1/psi;");
    println!("by-length partitions are dominated by the /24 class and each FE still");
    println!("stores the whole table, so per-LC prefixes never shrink.");
}
