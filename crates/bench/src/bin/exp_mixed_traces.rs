//! **E16 / §5.1 methodology** — Heterogeneous line cards. The paper
//! derives "one stream for each LC" from *various* traces; this
//! experiment gives each of five LCs a different preset (D_75, D_81,
//! L_92-0, L_92-1, B_L) and reports per-LC mean lookup times, showing
//! how SPAL couples LCs: a poor-locality LC leans on its neighbours'
//! home caches, and its misses load the FEs every LC shares.
//!
//! Run: `cargo run --release -p spal-bench --bin exp_mixed_traces`

use spal_bench::setup::{rt2, ExpOptions};
use spal_bench::TablePrinter;
use spal_cache::LrCacheConfig;
use spal_sim::{RouterKind, RouterSim, SimConfig};
use spal_traffic::{preset, ALL_PRESETS};

fn main() {
    let opts = ExpOptions::from_args();
    let table = rt2();
    let psi = ALL_PRESETS.len(); // one LC per preset
    println!(
        "E16: heterogeneous LCs — one preset per LC; psi={psi}, beta=4K, {} packets/LC",
        opts.packets_per_lc
    );
    // Each LC gets its own preset-generated stream (not a split).
    let traces: Vec<_> = ALL_PRESETS
        .iter()
        .map(|&name| {
            preset(name).generate(
                &table,
                opts.packets_per_lc,
                opts.seed ^ name.label().len() as u64,
            )
        })
        .collect();
    let report = RouterSim::new(
        &table,
        &traces,
        SimConfig {
            kind: RouterKind::Spal,
            psi,
            cache: LrCacheConfig::paper(4096),
            packets_per_lc: opts.packets_per_lc,
            seed: opts.seed,
            ..SimConfig::default()
        },
    )
    .run();

    let mut printer = TablePrinter::new(&["LC / trace", "hit rate", "FE lookups", "FE util"]);
    for (lc, name) in ALL_PRESETS.iter().enumerate() {
        let r = &report.per_lc[lc];
        printer.row(&[
            format!("LC{lc} ({})", name.label()),
            format!("{:.3}", r.cache.hit_rate()),
            r.fe_lookups.to_string(),
            format!("{:.3}", r.fe_busy_cycles as f64 / report.cycles as f64),
        ]);
    }
    printer.print();
    println!();
    println!("router-wide: {}", report.summary());
    println!();
    println!("Reading: per-LC hit rates follow each trace's locality, while FE load");
    println!("spreads across all LCs (home lookups are address-determined, not");
    println!("arrival-determined) — the load-sharing §3.3 promises.");
}
