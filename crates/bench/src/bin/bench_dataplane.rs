//! **Dataplane throughput gate**: the multi-threaded SPAL runtime on
//! the 600k-prefix stress workload, swept over worker counts, with and
//! without BGP churn. Results go to `BENCH_dataplane.json`, one row per
//! configuration:
//!
//! ```json
//! {"benchmark": "dataplane", "config": "w4", "workers": 4,
//!  "throughput_mpps": 3.1, "wall_ms": 812.4, "hit_rate": 0.01, ...}
//! ```
//!
//! Gated bounds (all correctness bounds are unconditional; the
//! throughput floors adapt to the host, reported in the output):
//!
//! * **correctness** — every run's checksum equals a scalar
//!   full-table oracle replay (no churn), in-run spot checks against
//!   `lookup_counted` on the pinned snapshot never disagree, and the
//!   post-churn published table matches the control plane's RIB;
//! * **scaling** — on hosts with ≥ 4 cores, 1 → 4 workers must reach
//!   ≥ 2.0× aggregate throughput; on smaller hosts (CI containers are
//!   often single-core) the sweep still runs but the floor drops to
//!   0.2× — four workers time-sliced onto one core pay real context
//!   switches per remote round trip, so the gate only catches the
//!   concurrency machinery (rings, epochs, parked jobs) collapsing,
//!   not the absence of parallel speedup;
//! * **churn degradation** — with the control plane republishing under
//!   a paced update stream, throughput at the widest sweep point must
//!   stay ≥ 0.55× of the churn-free run (≥ 0.4× on < 4 cores, where
//!   the control thread steals the only core);
//! * **churn apply** — the same stream against a Lulea snapshot, patched
//!   chunk-granularly vs force-rebuilt (`delta_patching: false`): the
//!   patch arm must engage (> 0 delta applies), beat the rebuild arm's
//!   mean apply latency ≥ 2×, and keep apply p99 ≤ 50 ms — a
//!   rebuild-per-publication or a grace wait back on the apply path
//!   blows that ceiling.
//!
//! Exits non-zero on any violation so CI can run it:
//! `bench_dataplane --quick`. Flags: `--packets N` (total per sweep
//! point), `--prefixes N`, `--seed N`, `--out PATH`.

use spal_bench::lookup;
use spal_cache::LrCacheConfig;
use spal_core::{ForwardingTable, LpmAlgorithm};
use spal_dataplane::{run, ChurnConfig, DataplaneConfig, DataplaneReport};
use spal_lpm::{CountedLookup, Lpm};
use spal_traffic::Trace;
use std::io::Write;

const REPS: usize = 3;

struct Options {
    packets: usize,
    prefixes: usize,
    seed: u64,
    out: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        packets: 2_000_000,
        prefixes: lookup::STRESS_PREFIXES,
        seed: 1,
        out: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                opts.packets = 200_000;
                opts.prefixes = 60_000;
            }
            "--packets" => {
                i += 1;
                opts.packets = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--packets needs a number");
            }
            "--prefixes" => {
                i += 1;
                opts.prefixes = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--prefixes needs a number");
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs a number");
            }
            "--out" => {
                i += 1;
                opts.out = Some(args.get(i).expect("--out needs a path").clone());
            }
            "--rt1" => {}
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }
    opts
}

struct Row {
    config: String,
    workers: usize,
    churn: bool,
    packets: u64,
    throughput_mpps: f64,
    wall_ms: f64,
    hit_rate: f64,
    rem_share: f64,
    checksum_ok: Option<bool>,
    spot_mismatches: u64,
    final_mismatches: Option<u64>,
    apply_mean_us: Option<f64>,
    apply_max_us: Option<f64>,
    apply_p50_us: Option<f64>,
    apply_p95_us: Option<f64>,
    apply_p99_us: Option<f64>,
    delta_applies: Option<u64>,
    rebuild_applies: Option<u64>,
    delta_bytes_touched: Option<u64>,
    tail_p99_ns: f64,
}

fn measure(
    table: &spal_rib::RoutingTable,
    traces: &[Trace],
    cfg: &DataplaneConfig,
) -> DataplaneReport {
    let mut best: Option<DataplaneReport> = None;
    for _ in 0..REPS {
        let report = run(table, traces, cfg);
        if best.as_ref().is_none_or(|b| report.elapsed < b.elapsed) {
            best = Some(report);
        }
    }
    best.expect("at least one rep")
}

fn row_from(config: &str, report: &DataplaneReport, oracle: Option<u64>) -> Row {
    let churn = report.churn.as_ref();
    Row {
        config: config.to_string(),
        workers: report.workers.len(),
        churn: churn.is_some(),
        packets: report.total_packets(),
        throughput_mpps: report.throughput_mpps(),
        wall_ms: report.elapsed.as_secs_f64() * 1e3,
        hit_rate: report.hit_rate(),
        rem_share: report.rem_share(),
        checksum_ok: oracle.map(|sum| report.checksum() == sum),
        spot_mismatches: report.spot_check_mismatches(),
        final_mismatches: churn.map(|c| c.final_mismatches),
        apply_mean_us: churn.map(|c| c.apply_us.mean_us()),
        apply_max_us: churn.map(|c| c.apply_us.max_us),
        apply_p50_us: churn.map(|c| c.apply_us.p50_us()),
        apply_p95_us: churn.map(|c| c.apply_us.p95_us()),
        apply_p99_us: churn.map(|c| c.apply_us.p99_us()),
        delta_applies: churn.map(|c| c.delta_applies),
        rebuild_applies: churn.map(|c| c.rebuild_applies),
        delta_bytes_touched: churn.map(|c| c.delta_bytes_touched),
        tail_p99_ns: report.tail.p99_ns,
    }
}

fn opt_json<T: std::fmt::Display>(v: &Option<T>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "null".to_string(),
    }
}

fn write_json(path: &str, rows: &[Row], cores: usize) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "[")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            f,
            "  {{\"benchmark\": \"dataplane\", \"config\": \"{}\", \"workers\": {}, \
             \"host_cores\": {cores}, \"churn\": {}, \"packets\": {}, \
             \"throughput_mpps\": {:.4}, \"wall_ms\": {:.3}, \"hit_rate\": {:.6}, \
             \"rem_share\": {:.6}, \"checksum_ok\": {}, \"spot_mismatches\": {}, \
             \"final_mismatches\": {}, \"apply_mean_us\": {}, \"apply_max_us\": {}, \
             \"apply_p50_us\": {}, \"apply_p95_us\": {}, \"apply_p99_us\": {}, \
             \"delta_applies\": {}, \"rebuild_applies\": {}, \"delta_bytes_touched\": {}, \
             \"tail_p99_ns\": {:.1}}}{}",
            r.config,
            r.workers,
            r.churn,
            r.packets,
            r.throughput_mpps,
            r.wall_ms,
            r.hit_rate,
            r.rem_share,
            opt_json(&r.checksum_ok),
            r.spot_mismatches,
            opt_json(&r.final_mismatches),
            opt_json(&r.apply_mean_us.map(|v| format!("{v:.2}"))),
            opt_json(&r.apply_max_us.map(|v| format!("{v:.2}"))),
            opt_json(&r.apply_p50_us.map(|v| format!("{v:.2}"))),
            opt_json(&r.apply_p95_us.map(|v| format!("{v:.2}"))),
            opt_json(&r.apply_p99_us.map(|v| format!("{v:.2}"))),
            opt_json(&r.delta_applies),
            opt_json(&r.rebuild_applies),
            opt_json(&r.delta_bytes_touched),
            r.tail_p99_ns,
            comma
        )?;
    }
    writeln!(f, "]")?;
    Ok(())
}

fn main() {
    let opts = parse_args();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (table, trace) = lookup::stress_workload(opts.prefixes, opts.packets, opts.seed);
    println!(
        "bench_dataplane: {} packets total, table {} prefixes, {} distinct dests, \
         {cores} host cores, best of {REPS}",
        trace.len(),
        table.len(),
        trace.distinct()
    );

    // Scalar full-table oracle checksum for the no-churn runs: the
    // partitioned, cached, message-passing runtime must resolve every
    // packet to exactly what one big DP trie says.
    let oracle_sum = {
        let full = ForwardingTable::build(LpmAlgorithm::Dp, &table);
        let mut sum = 0u64;
        let mut out = vec![CountedLookup::MISS; 1024];
        for chunk in trace.destinations().chunks(1024) {
            full.lookup_batch(chunk, &mut out[..chunk.len()]);
            for r in &out[..chunk.len()] {
                sum = sum.wrapping_add(r.next_hop.map(|h| h.0 as u64 + 1).unwrap_or(0));
            }
        }
        sum
    };

    // Large batches amortize ring/epoch traffic per admitted packet —
    // on a time-sliced single core, every cross-worker round trip costs
    // a scheduling quantum, so bigger batches matter most there.
    let base_cfg = DataplaneConfig {
        algorithm: LpmAlgorithm::Dp,
        cache: LrCacheConfig::paper(4096),
        batch: 256,
        ring_capacity: 8192,
        spot_check_every: 64,
        seed: opts.seed,
        ..Default::default()
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let sweep = [1usize, 2, 4];
    let mut mpps_by_workers = std::collections::HashMap::new();

    for &workers in &sweep {
        let traces = trace.split(workers);
        let cfg = DataplaneConfig {
            workers,
            ..base_cfg.clone()
        };
        let report = measure(&table, &traces, &cfg);
        let row = row_from(&format!("w{workers}"), &report, Some(oracle_sum));
        println!(
            "  {:12} {:>8.3} Mpps {:>10.1} ms | hit {:.3} rem {:.3} | p99 {:>6.0} ns/pkt | checksum {}",
            row.config,
            row.throughput_mpps,
            row.wall_ms,
            row.hit_rate,
            row.rem_share,
            row.tail_p99_ns,
            if row.checksum_ok == Some(true) { "ok" } else { "MISMATCH" },
        );
        if row.checksum_ok != Some(true) {
            failures.push(format!("w{workers}: checksum mismatch vs scalar oracle"));
        }
        if row.spot_mismatches > 0 {
            failures.push(format!(
                "w{workers}: {} spot-check mismatches",
                row.spot_mismatches
            ));
        }
        mpps_by_workers.insert(workers, row.throughput_mpps);
        rows.push(row);
    }

    // Scaling gate, host-aware: the 2× contract needs 4 real cores.
    let scaling = mpps_by_workers[&4] / mpps_by_workers[&1];
    let scaling_floor = if cores >= 4 { 2.0 } else { 0.2 };
    let verdict = if scaling >= scaling_floor {
        "ok"
    } else {
        "FAIL"
    };
    println!(
        "  scaling 1->4 workers: {scaling:.2}x (floor {scaling_floor}x, {cores} cores) {verdict}"
    );
    if scaling < scaling_floor {
        failures.push(format!(
            "scaling 1->4: {scaling:.2}x < {scaling_floor}x on {cores} cores"
        ));
    }

    // Churn-degradation gate at the widest sweep point.
    let churn_workers = *sweep.last().expect("non-empty sweep");
    let traces = trace.split(churn_workers);
    let churn_cfg = DataplaneConfig {
        workers: churn_workers,
        churn: Some(ChurnConfig {
            updates: (opts.packets / 400).clamp(200, 20_000),
            updates_per_publication: 50,
            withdraw_fraction: 0.3,
            pace_us: 100,
        }),
        ..base_cfg.clone()
    };
    let churn_report = measure(&table, &traces, &churn_cfg);
    let row = row_from(&format!("w{churn_workers}-churn"), &churn_report, None);
    let churn_stats = churn_report.churn.as_ref().expect("churn ran");
    println!(
        "  {:12} {:>8.3} Mpps {:>10.1} ms | {} updates in {} pubs | apply mean {:.1} us p99 {:.1} us max {:.1} us | {} patched / {} rebuilt",
        row.config,
        row.throughput_mpps,
        row.wall_ms,
        churn_stats.updates_applied,
        churn_stats.publications,
        churn_stats.apply_us.mean_us(),
        churn_stats.apply_us.p99_us(),
        churn_stats.apply_us.max_us,
        churn_stats.delta_applies,
        churn_stats.rebuild_applies,
    );
    println!(
        "  {:12} reclaim (off-path grace) mean {:.1} us max {:.1} us",
        "",
        churn_stats.reclaim_us.mean_us(),
        churn_stats.reclaim_us.max_us,
    );
    if row.spot_mismatches > 0 {
        failures.push(format!(
            "churn: {} spot-check mismatches",
            row.spot_mismatches
        ));
    }
    if churn_stats.final_mismatches > 0 {
        failures.push(format!(
            "churn: published table diverged from RIB in {} samples",
            churn_stats.final_mismatches
        ));
    }
    // Incremental patching keeps publications cheap, so the floor is
    // tighter than the rebuild-era 0.5x / 0.35x.
    let degradation = row.throughput_mpps / mpps_by_workers[&churn_workers];
    let churn_floor = if cores >= 4 { 0.55 } else { 0.4 };
    let verdict = if degradation >= churn_floor {
        "ok"
    } else {
        "FAIL"
    };
    println!(
        "  churn degradation: {degradation:.2}x of churn-free (floor {churn_floor}x) {verdict}"
    );
    if degradation < churn_floor {
        failures.push(format!(
            "churn degradation {degradation:.2}x < {churn_floor}x"
        ));
    }
    rows.push(row);

    // Churn-apply gate: the same churn stream against a compressed
    // static engine (Lulea), patched vs force-rebuilt. The rebuild arm
    // is the control — both arms run on this host back to back, so the
    // ratio is immune to machine speed. Chunk-granular patching must
    // actually engage, must beat whole-fragment rebuilds on mean apply
    // latency by 2x, and the patched arm's p99 must stay under an
    // absolute ceiling that a rebuild-per-publication (or a grace wait
    // back on the apply path) would blow through.
    let lulea_cfg = DataplaneConfig {
        workers: churn_workers,
        algorithm: LpmAlgorithm::Lulea,
        churn: churn_cfg.churn.clone(),
        ..base_cfg.clone()
    };
    let patched_report = measure(&table, &traces, &lulea_cfg);
    let patched_row = row_from(
        &format!("w{churn_workers}-churn-lulea"),
        &patched_report,
        None,
    );
    let rebuild_cfg = DataplaneConfig {
        delta_patching: false,
        ..lulea_cfg.clone()
    };
    let rebuild_report = measure(&table, &traces, &rebuild_cfg);
    let rebuild_row = row_from(
        &format!("w{churn_workers}-churn-lulea-rebuild"),
        &rebuild_report,
        None,
    );
    for (arm, report, r) in [
        ("lulea-patched", &patched_report, &patched_row),
        ("lulea-rebuild", &rebuild_report, &rebuild_row),
    ] {
        let c = report.churn.as_ref().expect("churn ran");
        println!(
            "  {:22} apply mean {:>9.1} us p99 {:>9.1} us max {:>9.1} us | {} patched / {} rebuilt | {} B touched",
            r.config,
            c.apply_us.mean_us(),
            c.apply_us.p99_us(),
            c.apply_us.max_us,
            c.delta_applies,
            c.rebuild_applies,
            c.delta_bytes_touched,
        );
        if r.spot_mismatches > 0 {
            failures.push(format!(
                "{arm}: {} spot-check mismatches",
                r.spot_mismatches
            ));
        }
        if c.final_mismatches > 0 {
            failures.push(format!(
                "{arm}: published table diverged from RIB in {} samples",
                c.final_mismatches
            ));
        }
    }
    let patched_churn = patched_report.churn.as_ref().expect("churn ran");
    let rebuild_churn = rebuild_report.churn.as_ref().expect("churn ran");
    if patched_churn.delta_applies == 0 {
        failures.push("lulea-patched: delta path never engaged (0 patched applies)".to_string());
    }
    if rebuild_churn.delta_applies != 0 {
        failures.push(format!(
            "lulea-rebuild: control arm took {} delta applies with patching disabled",
            rebuild_churn.delta_applies
        ));
    }
    let apply_speedup = rebuild_churn.apply_us.mean_us() / patched_churn.apply_us.mean_us();
    const APPLY_SPEEDUP_FLOOR: f64 = 2.0;
    const APPLY_P99_CEILING_US: f64 = 50_000.0;
    let patched_p99 = patched_churn.apply_us.p99_us();
    let verdict = if apply_speedup >= APPLY_SPEEDUP_FLOOR && patched_p99 <= APPLY_P99_CEILING_US {
        "ok"
    } else {
        "FAIL"
    };
    println!(
        "  churn apply: patched {apply_speedup:.1}x faster than rebuild \
         (floor {APPLY_SPEEDUP_FLOOR}x), p99 {patched_p99:.1} us \
         (ceiling {APPLY_P99_CEILING_US} us) {verdict}"
    );
    if apply_speedup < APPLY_SPEEDUP_FLOOR {
        failures.push(format!(
            "churn apply speedup {apply_speedup:.2}x < {APPLY_SPEEDUP_FLOOR}x vs rebuild arm"
        ));
    }
    if patched_p99 > APPLY_P99_CEILING_US {
        failures.push(format!(
            "churn apply p99 {patched_p99:.1} us > {APPLY_P99_CEILING_US} us ceiling"
        ));
    }
    rows.push(patched_row);
    rows.push(rebuild_row);

    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dataplane.json");
    let out = opts.out.as_deref().unwrap_or(default_out);
    write_json(out, &rows, cores).expect("writing benchmark JSON");
    println!("wrote {} rows to {out}", rows.len());

    if !failures.is_empty() {
        eprintln!("bench_dataplane FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("bench_dataplane passed");
}
