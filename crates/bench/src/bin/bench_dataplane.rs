//! **Dataplane throughput gate**: the multi-threaded SPAL runtime on a
//! 600k-prefix table, swept over worker counts, vector vs scalar mode,
//! with and without BGP churn. Results go to `BENCH_dataplane.json`
//! (one row per configuration) and `BENCH_latency.json` (per-path
//! completion-latency percentiles per configuration):
//!
//! ```json
//! {"benchmark": "dataplane", "config": "w4", "workers": 4,
//!  "vector": true, "throughput_mpps": 30.1, "hit_rate": 0.93,
//!  "hit_rate_cold": 0.85, "hit_rate_steady": 0.96, ...}
//! ```
//!
//! Two destination streams over the same table:
//!
//! * **stress** — near-uniform over 1.2M flows, cache-adversarial
//!   (~0.003 LR-cache hit rate). One row keeps running it
//!   (`w1-scalar-baseline`) because it is the configuration the
//!   pre-vector benchmark recorded at ≈1.6 Mpps — the denominator of
//!   the vector-speedup gate below.
//! * **locality** — the paper's `B_L` preset (32k flows, Zipf bursts),
//!   the stream the SPAL cache design actually targets. Every other
//!   row runs this.
//!
//! Gated bounds (correctness bounds unconditional; throughput floors
//! adapt to the host, reported in the output):
//!
//! * **correctness** — every churn-free run's checksum equals a scalar
//!   full-table oracle replay of its trace, in-run spot checks against
//!   `lookup_counted` on the pinned snapshot never disagree, and the
//!   post-churn published table matches the control plane's RIB;
//! * **vector speedup** — single-worker vector-mode throughput on the
//!   locality stream must be ≥ 10× the `w1-scalar-baseline` row;
//! * **scaling** — on hosts with ≥ 4 cores, 1 → 4 workers must scale
//!   above 1.0× in vector mode; on smaller hosts the sweep still runs but
//!   the gate is skipped (printed as such) — four workers time-sliced
//!   onto one core measure the scheduler, not the dataplane;
//! * **churn tail latency** — vector-mode p99.9 completion latency
//!   under churn must stay ≤ 2× the scalar-mode run of the same churn
//!   configuration (coalescing must not hold packets hostage);
//! * **churn degradation** — with the control plane republishing under
//!   a paced update stream, vector-mode throughput at the widest sweep
//!   point must stay ≥ 0.55× of the churn-free run (≥ 0.4× on < 4
//!   cores, where the control thread steals the only core);
//! * **churn apply** — the same stream against a Lulea snapshot,
//!   patched chunk-granularly vs force-rebuilt (`delta_patching:
//!   false`): the patch arm must engage (> 0 delta applies), beat the
//!   rebuild arm's mean apply latency ≥ 2×, and keep apply p99 ≤ 50 ms.
//!
//! Exits non-zero on any violation so CI can run it:
//! `bench_dataplane --quick`. Flags: `--packets N` (total per sweep
//! point), `--prefixes N`, `--seed N`, `--out PATH`,
//! `--out-latency PATH`.

use spal_bench::{dfz, lookup};
use spal_cache::LrCacheConfig;
use spal_core::{ForwardingTable, ForwardingTable6, LpmAlgorithm, LpmAlgorithm6};
use spal_dataplane::{
    run, run6, ChurnConfig, Dataplane6Config, DataplaneConfig, DataplaneReport, LatencyHisto,
};
use spal_lpm::{CountedLookup, Lpm, Lpm6};
use spal_traffic::Trace;
use std::io::Write;

const REPS: usize = 3;

struct Options {
    packets: usize,
    prefixes: usize,
    seed: u64,
    quick: bool,
    v6: bool,
    out: Option<String>,
    out_latency: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        packets: 2_000_000,
        prefixes: lookup::STRESS_PREFIXES,
        seed: 1,
        quick: false,
        v6: false,
        out: None,
        out_latency: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                opts.packets = 200_000;
                opts.prefixes = 60_000;
                opts.quick = true;
            }
            "--packets" => {
                i += 1;
                opts.packets = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--packets needs a number");
            }
            "--prefixes" => {
                i += 1;
                opts.prefixes = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--prefixes needs a number");
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs a number");
            }
            "--out" => {
                i += 1;
                opts.out = Some(args.get(i).expect("--out needs a path").clone());
            }
            "--out-latency" => {
                i += 1;
                opts.out_latency = Some(args.get(i).expect("--out-latency needs a path").clone());
            }
            "--v6" => opts.v6 = true,
            "--rt1" => {}
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }
    opts
}

struct Row {
    config: String,
    workload: &'static str,
    workers: usize,
    vector: bool,
    churn: bool,
    packets: u64,
    throughput_mpps: f64,
    wall_ms: f64,
    hit_rate: f64,
    hit_rate_cold: f64,
    hit_rate_steady: f64,
    rem_share: f64,
    checksum_ok: Option<bool>,
    spot_mismatches: u64,
    final_mismatches: Option<u64>,
    apply_mean_us: Option<f64>,
    apply_max_us: Option<f64>,
    apply_p50_us: Option<f64>,
    apply_p95_us: Option<f64>,
    apply_p99_us: Option<f64>,
    delta_applies: Option<u64>,
    rebuild_applies: Option<u64>,
    delta_bytes_touched: Option<u64>,
    tail_p99_ns: f64,
    latency_p999_ns: u64,
}

fn measure(
    table: &spal_rib::RoutingTable,
    traces: &[Trace],
    cfg: &DataplaneConfig,
) -> DataplaneReport {
    let mut best: Option<DataplaneReport> = None;
    for _ in 0..REPS {
        let report = run(table, traces, cfg);
        if best.as_ref().is_none_or(|b| report.elapsed < b.elapsed) {
            best = Some(report);
        }
    }
    best.expect("at least one rep")
}

fn row_from(
    config: &str,
    workload: &'static str,
    vector: bool,
    report: &DataplaneReport,
    oracle: Option<u64>,
) -> Row {
    let churn = report.churn.as_ref();
    Row {
        config: config.to_string(),
        workload,
        workers: report.workers.len(),
        vector,
        churn: churn.is_some(),
        packets: report.total_packets(),
        throughput_mpps: report.throughput_mpps(),
        wall_ms: report.elapsed.as_secs_f64() * 1e3,
        hit_rate: report.hit_rate(),
        hit_rate_cold: report.hit_rate_cold(),
        hit_rate_steady: report.hit_rate_steady(),
        rem_share: report.rem_share(),
        checksum_ok: oracle.map(|sum| report.checksum() == sum),
        spot_mismatches: report.spot_check_mismatches(),
        final_mismatches: churn.map(|c| c.final_mismatches),
        apply_mean_us: churn.map(|c| c.apply_us.mean_us()),
        apply_max_us: churn.map(|c| c.apply_us.max_us),
        apply_p50_us: churn.map(|c| c.apply_us.p50_us()),
        apply_p95_us: churn.map(|c| c.apply_us.p95_us()),
        apply_p99_us: churn.map(|c| c.apply_us.p99_us()),
        delta_applies: churn.map(|c| c.delta_applies),
        rebuild_applies: churn.map(|c| c.rebuild_applies),
        delta_bytes_touched: churn.map(|c| c.delta_bytes_touched),
        tail_p99_ns: report.tail.p99_ns,
        latency_p999_ns: report.latency_paths().all().p999_ns(),
    }
}

fn print_row(r: &Row) {
    println!(
        "  {:22} {:>8.3} Mpps {:>9.1} ms | hit {:.3} (cold {:.3} / steady {:.3}) rem {:.3} \
         | p99.9 {:>8} ns | {}",
        r.config,
        r.throughput_mpps,
        r.wall_ms,
        r.hit_rate,
        r.hit_rate_cold,
        r.hit_rate_steady,
        r.rem_share,
        r.latency_p999_ns,
        match r.checksum_ok {
            Some(true) => "checksum ok",
            Some(false) => "checksum MISMATCH",
            None => "churn",
        },
    );
}

fn opt_json<T: std::fmt::Display>(v: &Option<T>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "null".to_string(),
    }
}

fn write_json(path: &str, rows: &[Row], cores: usize) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "[")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            f,
            "  {{\"benchmark\": \"dataplane\", \"config\": \"{}\", \"workload\": \"{}\", \
             \"workers\": {}, \"vector\": {}, \"host_cores\": {cores}, \"churn\": {}, \
             \"packets\": {}, \"throughput_mpps\": {:.4}, \"wall_ms\": {:.3}, \
             \"hit_rate\": {:.6}, \"hit_rate_cold\": {:.6}, \"hit_rate_steady\": {:.6}, \
             \"rem_share\": {:.6}, \"checksum_ok\": {}, \"spot_mismatches\": {}, \
             \"final_mismatches\": {}, \"apply_mean_us\": {}, \"apply_max_us\": {}, \
             \"apply_p50_us\": {}, \"apply_p95_us\": {}, \"apply_p99_us\": {}, \
             \"delta_applies\": {}, \"rebuild_applies\": {}, \"delta_bytes_touched\": {}, \
             \"tail_p99_ns\": {:.1}, \"latency_p999_ns\": {}}}{}",
            r.config,
            r.workload,
            r.workers,
            r.vector,
            r.churn,
            r.packets,
            r.throughput_mpps,
            r.wall_ms,
            r.hit_rate,
            r.hit_rate_cold,
            r.hit_rate_steady,
            r.rem_share,
            opt_json(&r.checksum_ok),
            r.spot_mismatches,
            opt_json(&r.final_mismatches),
            opt_json(&r.apply_mean_us.map(|v| format!("{v:.2}"))),
            opt_json(&r.apply_max_us.map(|v| format!("{v:.2}"))),
            opt_json(&r.apply_p50_us.map(|v| format!("{v:.2}"))),
            opt_json(&r.apply_p95_us.map(|v| format!("{v:.2}"))),
            opt_json(&r.apply_p99_us.map(|v| format!("{v:.2}"))),
            opt_json(&r.delta_applies),
            opt_json(&r.rebuild_applies),
            opt_json(&r.delta_bytes_touched),
            r.tail_p99_ns,
            r.latency_p999_ns,
            comma
        )?;
    }
    writeln!(f, "]")?;
    Ok(())
}

/// One `BENCH_latency.json` row: per-path completion-latency
/// percentiles for a configuration. "Completion" is what the paper's
/// packet sees — hit paths record the admit burst's probe cost, the
/// miss path records admit → resolve (including the remote round
/// trip).
fn latency_row(config: &str, workers: usize, vector: bool, report: &DataplaneReport) -> String {
    let paths = report.latency_paths();
    let one = |h: &LatencyHisto| {
        format!(
            "{{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
            h.count(),
            h.p50_ns(),
            h.p99_ns(),
            h.p999_ns(),
            h.max_ns()
        )
    };
    format!(
        "{{\"benchmark\": \"dataplane_latency\", \"config\": \"{config}\", \"workers\": {workers}, \
         \"vector\": {vector}, \"churn\": {}, \"loc_hit\": {}, \"rem_hit\": {}, \"miss\": {}, \
         \"all\": {}}}",
        report.churn.is_some(),
        one(&paths.loc_hit),
        one(&paths.rem_hit),
        one(&paths.miss),
        one(&paths.all()),
    )
}

fn write_latency_json(path: &str, rows: &[String]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "[")?;
    for (i, line) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(f, "  {line}{comma}")?;
    }
    writeln!(f, "]")?;
    Ok(())
}

fn oracle_checksum(full: &ForwardingTable, trace: &Trace) -> u64 {
    let mut sum = 0u64;
    let mut out = vec![CountedLookup::MISS; 1024];
    for chunk in trace.destinations().chunks(1024) {
        full.lookup_batch(chunk, &mut out[..chunk.len()]);
        for r in &out[..chunk.len()] {
            sum = sum.wrapping_add(r.next_hop.map(|h| h.0 as u64 + 1).unwrap_or(0));
        }
    }
    sum
}

/// The `--v6` arm: the IPv6 dataplane (SHIP engines, 128-bit caches
/// and fabric) over the DFZ-2026 v6 table. Gates: every churn-free
/// run's checksum equals an oracle replay through the binary reference
/// trie (bit-identical to `longest_match` by the equivalence suites,
/// but O(prefix) per packet instead of an O(table) scan), in-run spot
/// checks never disagree, the post-churn published tables match the
/// control plane's RIB, and churn apply p99 stays under the same 50 ms
/// ceiling as the IPv4 arm — scaled by threads/cores on oversubscribed
/// hosts, where the control thread's wall-clock apply time measures the
/// scheduler's time-slicing rather than the apply itself.
fn run_v6(opts: &Options) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let tier = if opts.quick { "quick" } else { "full" };
    let table = dfz::dfz_v6_table(opts.quick);
    let trace = dfz::dfz_v6_trace(&table, opts.packets, opts.seed);
    println!(
        "bench_dataplane --v6 ({tier}): {} packets/config, table {} prefixes, {cores} host \
         cores, best of {REPS}",
        opts.packets,
        table.len(),
    );

    // Oracle replay through the binary reference trie — bit-identical
    // to `RoutingTable6::longest_match` (pinned by the ship_equiv and
    // prop_v6 suites) but O(prefix length) per packet instead of the
    // table scan, which at 200k routes x 2M packets would never finish.
    let oracle_trie = ForwardingTable6::build(LpmAlgorithm6::Binary, &table);
    let oracle: u64 = trace
        .destinations()
        .iter()
        .map(|&addr| {
            oracle_trie
                .lookup(addr)
                .map(|nh| nh.0 as u64 + 1)
                .unwrap_or(0)
        })
        .sum();

    let base_cfg = Dataplane6Config {
        algorithm: LpmAlgorithm6::Ship,
        cache: LrCacheConfig::paper(4096),
        batch: 256,
        ring_capacity: 8192,
        spot_check_every: 64,
        seed: opts.seed,
        ..Default::default()
    };
    let measure6 = |traces: &[spal_traffic::Trace6], cfg: &Dataplane6Config| {
        let mut best: Option<DataplaneReport> = None;
        for _ in 0..REPS {
            let report = run6(&table, traces, cfg);
            if best.as_ref().is_none_or(|b| report.elapsed < b.elapsed) {
                best = Some(report);
            }
        }
        best.expect("at least one rep")
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut latency_rows: Vec<String> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for workers in [1usize, 4] {
        let cfg = Dataplane6Config {
            workers,
            ..base_cfg.clone()
        };
        let report = measure6(&trace.split(workers), &cfg);
        let config = format!("v6-w{workers}");
        let row = row_from(&config, "v6", true, &report, Some(oracle));
        print_row(&row);
        if row.checksum_ok == Some(false) {
            failures.push(format!(
                "{config}: checksum mismatch vs longest_match oracle"
            ));
        }
        if row.spot_mismatches > 0 {
            failures.push(format!(
                "{config}: {} spot-check mismatches",
                row.spot_mismatches
            ));
        }
        latency_rows.push(latency_row(&config, workers, true, &report));
        rows.push(row);
    }

    // Churn row: SHIP bin-granular patching with per-LC fragment
    // rebuild on decline, targeted invalidation, zero-divergence gates.
    let churn_workers = 4;
    let churn_cfg = Dataplane6Config {
        workers: churn_workers,
        churn: Some(ChurnConfig {
            updates: (opts.packets / 400).clamp(200, 20_000),
            updates_per_publication: 50,
            withdraw_fraction: 0.3,
            pace_us: 100,
        }),
        ..base_cfg.clone()
    };
    let churn_report = measure6(&trace.split(churn_workers), &churn_cfg);
    let config = format!("v6-w{churn_workers}-churn");
    let row = row_from(&config, "v6", true, &churn_report, None);
    let churn_stats = churn_report.churn.as_ref().expect("churn ran");
    print_row(&row);
    println!(
        "  {:22} {} updates in {} pubs | apply mean {:.1} us p99 {:.1} us max {:.1} us | \
         {} patched / {} rebuilt",
        "",
        churn_stats.updates_applied,
        churn_stats.publications,
        churn_stats.apply_us.mean_us(),
        churn_stats.apply_us.p99_us(),
        churn_stats.apply_us.max_us,
        churn_stats.delta_applies,
        churn_stats.rebuild_applies,
    );
    if row.spot_mismatches > 0 {
        failures.push(format!(
            "{config}: {} spot-check mismatches",
            row.spot_mismatches
        ));
    }
    if churn_stats.final_mismatches > 0 {
        failures.push(format!(
            "{config}: published tables diverged from RIB in {} samples",
            churn_stats.final_mismatches
        ));
    }
    // Same 50 ms apply ceiling as the IPv4 arm — when the control
    // thread actually gets a core. Oversubscribed hosts (fewer cores
    // than workers + control) time-slice the apply against spinning
    // workers, inflating wall-clock apply ~(threads/cores)x, so the
    // ceiling scales by that factor there (mirroring the host-aware
    // scaling/degradation gates above); the measured p99 is still
    // recorded in the JSON row either way.
    const V6_APPLY_P99_CEILING_US: f64 = 50_000.0;
    let threads = churn_workers + 1;
    let ceiling = if cores >= threads {
        V6_APPLY_P99_CEILING_US
    } else {
        V6_APPLY_P99_CEILING_US * threads as f64 / cores as f64
    };
    let p99 = churn_stats.apply_us.p99_us();
    let verdict = if p99 <= ceiling { "ok" } else { "FAIL" };
    let host = if cores >= threads {
        String::new()
    } else {
        format!(", {cores}-core host running {threads} threads")
    };
    println!("  v6 churn apply p99 {p99:.1} us (ceiling {ceiling:.0} us{host}) {verdict}");
    if p99 > ceiling {
        failures.push(format!(
            "{config}: apply p99 {p99:.1} us > {ceiling:.0} us ceiling"
        ));
    }
    latency_rows.push(latency_row(&config, churn_workers, true, &churn_report));
    rows.push(row);

    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dataplane6.json");
    let out = opts.out.as_deref().unwrap_or(default_out);
    write_json(out, &rows, cores).expect("writing benchmark JSON");
    println!("wrote {} rows to {out}", rows.len());

    let default_latency = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_latency6.json");
    let out_latency = opts.out_latency.as_deref().unwrap_or(default_latency);
    write_latency_json(out_latency, &latency_rows).expect("writing latency JSON");
    println!("wrote {} rows to {out_latency}", latency_rows.len());

    if !failures.is_empty() {
        eprintln!("bench_dataplane --v6 FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("bench_dataplane --v6 passed");
}

fn main() {
    let opts = parse_args();
    if opts.v6 {
        run_v6(&opts);
        return;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // One table, two streams: the historical cache-adversarial stress
    // stream and the locality stream the runtime is designed for.
    let (table, stress) = lookup::stress_workload(opts.prefixes, opts.packets, opts.seed);
    let locality = lookup::dataplane_trace(&table, opts.packets, opts.seed);
    println!(
        "bench_dataplane: {} packets/config, table {} prefixes, {cores} host cores, best of {REPS}",
        opts.packets,
        table.len(),
    );
    println!(
        "  streams: stress {} distinct dests | locality (B_L) {} distinct dests",
        stress.distinct(),
        locality.distinct()
    );

    // Scalar full-table oracle checksums: the partitioned, cached,
    // message-passing runtime must resolve every packet to exactly what
    // one big DP trie says — per trace.
    let full = ForwardingTable::build(LpmAlgorithm::Dp, &table);
    let stress_oracle = oracle_checksum(&full, &stress);
    let locality_oracle = oracle_checksum(&full, &locality);
    drop(full);

    // Large batches amortize ring/epoch traffic per admitted packet —
    // on a time-sliced single core, every cross-worker round trip costs
    // a scheduling quantum, so bigger batches matter most there.
    let base_cfg = DataplaneConfig {
        algorithm: LpmAlgorithm::Dp,
        cache: LrCacheConfig::paper(4096),
        batch: 256,
        ring_capacity: 8192,
        spot_check_every: 64,
        seed: opts.seed,
        ..Default::default()
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut latency_rows: Vec<String> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    let check_correctness = |row: &Row, failures: &mut Vec<String>| {
        if row.checksum_ok == Some(false) {
            failures.push(format!(
                "{}: checksum mismatch vs scalar oracle",
                row.config
            ));
        }
        if row.spot_mismatches > 0 {
            failures.push(format!(
                "{}: {} spot-check mismatches",
                row.config, row.spot_mismatches
            ));
        }
    };

    // --- The pre-vector baseline row: scalar loop, stress stream. ---
    // This reproduces the configuration the seed benchmark recorded at
    // ≈1.6 Mpps single-worker; the vector gate below divides by it.
    let baseline_cfg = DataplaneConfig {
        workers: 1,
        vector: false,
        ..base_cfg.clone()
    };
    let baseline_report = measure(&table, &stress.split(1), &baseline_cfg);
    let baseline_row = row_from(
        "w1-scalar-baseline",
        "stress",
        false,
        &baseline_report,
        Some(stress_oracle),
    );
    print_row(&baseline_row);
    check_correctness(&baseline_row, &mut failures);
    latency_rows.push(latency_row(
        "w1-scalar-baseline",
        1,
        false,
        &baseline_report,
    ));
    let baseline_mpps = baseline_row.throughput_mpps;
    rows.push(baseline_row);

    // The locality rows model the paper's deployment: each LC runs the
    // flat DIR-24-8 engine (whose batched lookup interleaves its table
    // reads) over its partition; the Dp trie above is the *historical*
    // baseline configuration, kept for the speedup denominator.
    let locality_cfg = DataplaneConfig {
        algorithm: LpmAlgorithm::Dir24,
        ..base_cfg.clone()
    };

    // --- Scalar loop on the locality stream: isolates how much of the
    // speedup is the workload fix vs the vector rework. ---
    let novector_cfg = DataplaneConfig {
        workers: 1,
        vector: false,
        ..locality_cfg.clone()
    };
    let novector_report = measure(&table, &locality.split(1), &novector_cfg);
    let novector_row = row_from(
        "w1-novector",
        "locality",
        false,
        &novector_report,
        Some(locality_oracle),
    );
    print_row(&novector_row);
    check_correctness(&novector_row, &mut failures);
    latency_rows.push(latency_row("w1-novector", 1, false, &novector_report));
    rows.push(novector_row);

    // --- Vector-mode sweep on the locality stream. ---
    let sweep = [1usize, 2, 4];
    let mut mpps_by_workers = std::collections::HashMap::new();
    for &workers in &sweep {
        let traces = locality.split(workers);
        let cfg = DataplaneConfig {
            workers,
            ..locality_cfg.clone()
        };
        let report = measure(&table, &traces, &cfg);
        let config = format!("w{workers}");
        let row = row_from(&config, "locality", true, &report, Some(locality_oracle));
        print_row(&row);
        check_correctness(&row, &mut failures);
        latency_rows.push(latency_row(&config, workers, true, &report));
        mpps_by_workers.insert(workers, row.throughput_mpps);
        rows.push(row);
    }

    // Vector-speedup gate: w1 vector vs the scalar-baseline row. The
    // 10x contract is calibrated at full scale, where the 600k-prefix
    // trie makes the stress baseline genuinely miss-bound (~1.6 Mpps);
    // --quick's 60k-prefix table flatters the baseline (its trie walk
    // fits cache), so the quick floor is proportionally lower.
    let vector_floor: f64 = if opts.quick { 5.0 } else { 10.0 };
    let vector_speedup = mpps_by_workers[&1] / baseline_mpps;
    let verdict = if vector_speedup >= vector_floor {
        "ok"
    } else {
        "FAIL"
    };
    println!(
        "  vector speedup: w1 {:.2} Mpps = {vector_speedup:.1}x of scalar baseline \
         {baseline_mpps:.2} Mpps (floor {vector_floor}x) {verdict}",
        mpps_by_workers[&1]
    );
    if vector_speedup < vector_floor {
        failures.push(format!(
            "vector speedup {vector_speedup:.2}x < {vector_floor}x vs scalar baseline"
        ));
    }

    // Scaling gate, host-aware: positive scaling needs real cores.
    let scaling = mpps_by_workers[&4] / mpps_by_workers[&1];
    if cores >= 4 {
        let verdict = if scaling > 1.0 { "ok" } else { "FAIL" };
        println!("  scaling 1->4 workers: {scaling:.2}x (floor 1.0x, {cores} cores) {verdict}");
        if scaling <= 1.0 {
            failures.push(format!(
                "scaling 1->4: {scaling:.2}x <= 1.0x on {cores} cores"
            ));
        }
    } else {
        println!(
            "  scaling 1->4 workers: {scaling:.2}x — gate SKIPPED ({cores} host cores < 4: \
             time-sliced workers measure the scheduler, not the dataplane)"
        );
    }

    // --- Churn rows at the widest sweep point: vector, and a scalar
    // arm as the tail-latency control. ---
    let churn_workers = *sweep.last().expect("non-empty sweep");
    let traces = locality.split(churn_workers);
    let churn = ChurnConfig {
        updates: (opts.packets / 400).clamp(200, 20_000),
        updates_per_publication: 50,
        withdraw_fraction: 0.3,
        pace_us: 100,
    };
    let churn_cfg = DataplaneConfig {
        workers: churn_workers,
        churn: Some(churn.clone()),
        ..locality_cfg.clone()
    };
    let churn_report = measure(&table, &traces, &churn_cfg);
    let churn_config = format!("w{churn_workers}-churn");
    let row = row_from(&churn_config, "locality", true, &churn_report, None);
    let churn_stats = churn_report.churn.as_ref().expect("churn ran");
    print_row(&row);
    println!(
        "  {:22} {} updates in {} pubs | apply mean {:.1} us p99 {:.1} us max {:.1} us | \
         {} patched / {} rebuilt | reclaim mean {:.1} us",
        "",
        churn_stats.updates_applied,
        churn_stats.publications,
        churn_stats.apply_us.mean_us(),
        churn_stats.apply_us.p99_us(),
        churn_stats.apply_us.max_us,
        churn_stats.delta_applies,
        churn_stats.rebuild_applies,
        churn_stats.reclaim_us.mean_us(),
    );
    if row.spot_mismatches > 0 {
        failures.push(format!(
            "churn: {} spot-check mismatches",
            row.spot_mismatches
        ));
    }
    if churn_stats.final_mismatches > 0 {
        failures.push(format!(
            "churn: published table diverged from RIB in {} samples",
            churn_stats.final_mismatches
        ));
    }
    latency_rows.push(latency_row(
        &churn_config,
        churn_workers,
        true,
        &churn_report,
    ));
    let churn_vector_p999 = row.latency_p999_ns;
    let churn_vector_mpps = row.throughput_mpps;
    rows.push(row);

    let churn_scalar_cfg = DataplaneConfig {
        vector: false,
        ..churn_cfg.clone()
    };
    let churn_scalar_report = measure(&table, &traces, &churn_scalar_cfg);
    let churn_scalar_config = format!("w{churn_workers}-churn-novector");
    let row = row_from(
        &churn_scalar_config,
        "locality",
        false,
        &churn_scalar_report,
        None,
    );
    print_row(&row);
    if row.spot_mismatches > 0 {
        failures.push(format!(
            "churn-novector: {} spot-check mismatches",
            row.spot_mismatches
        ));
    }
    latency_rows.push(latency_row(
        &churn_scalar_config,
        churn_workers,
        false,
        &churn_scalar_report,
    ));
    let churn_scalar_p999 = row.latency_p999_ns;
    rows.push(row);

    // Churn tail-latency gate: coalescing must not hold packets
    // hostage — vector-mode p99.9 under churn stays within 2x of the
    // scalar arm of the exact same churn configuration.
    const CHURN_P999_RATIO_CEILING: f64 = 2.0;
    let p999_ratio = churn_vector_p999 as f64 / (churn_scalar_p999 as f64).max(1.0);
    let verdict = if p999_ratio <= CHURN_P999_RATIO_CEILING {
        "ok"
    } else {
        "FAIL"
    };
    println!(
        "  churn p99.9: vector {churn_vector_p999} ns vs scalar {churn_scalar_p999} ns = \
         {p999_ratio:.2}x (ceiling {CHURN_P999_RATIO_CEILING}x) {verdict}"
    );
    if p999_ratio > CHURN_P999_RATIO_CEILING {
        failures.push(format!(
            "churn p99.9 latency {p999_ratio:.2}x scalar > {CHURN_P999_RATIO_CEILING}x ceiling"
        ));
    }

    // Churn-degradation gate: incremental patching keeps publications
    // cheap, so the floor is tighter than the rebuild-era 0.5x / 0.35x.
    let degradation = churn_vector_mpps / mpps_by_workers[&churn_workers];
    let churn_floor = if cores >= 4 { 0.55 } else { 0.4 };
    let verdict = if degradation >= churn_floor {
        "ok"
    } else {
        "FAIL"
    };
    println!(
        "  churn degradation: {degradation:.2}x of churn-free (floor {churn_floor}x) {verdict}"
    );
    if degradation < churn_floor {
        failures.push(format!(
            "churn degradation {degradation:.2}x < {churn_floor}x"
        ));
    }

    // --- Churn-apply gate: the same churn stream against a compressed
    // static engine (Lulea), patched vs force-rebuilt. The rebuild arm
    // is the control — both arms run on this host back to back, so the
    // ratio is immune to machine speed. Chunk-granular patching must
    // actually engage, must beat whole-fragment rebuilds on mean apply
    // latency by 2x, and the patched arm's p99 must stay under an
    // absolute ceiling that a rebuild-per-publication (or a grace wait
    // back on the apply path) would blow through. ---
    let lulea_cfg = DataplaneConfig {
        workers: churn_workers,
        algorithm: LpmAlgorithm::Lulea,
        churn: Some(churn.clone()),
        ..base_cfg.clone()
    };
    let patched_report = measure(&table, &traces, &lulea_cfg);
    let patched_row = row_from(
        &format!("w{churn_workers}-churn-lulea"),
        "locality",
        true,
        &patched_report,
        None,
    );
    let rebuild_cfg = DataplaneConfig {
        delta_patching: false,
        ..lulea_cfg.clone()
    };
    let rebuild_report = measure(&table, &traces, &rebuild_cfg);
    let rebuild_row = row_from(
        &format!("w{churn_workers}-churn-lulea-rebuild"),
        "locality",
        true,
        &rebuild_report,
        None,
    );
    for (arm, report, r) in [
        ("lulea-patched", &patched_report, &patched_row),
        ("lulea-rebuild", &rebuild_report, &rebuild_row),
    ] {
        let c = report.churn.as_ref().expect("churn ran");
        println!(
            "  {:22} apply mean {:>9.1} us p99 {:>9.1} us max {:>9.1} us | {} patched / \
             {} rebuilt | {} B touched",
            r.config,
            c.apply_us.mean_us(),
            c.apply_us.p99_us(),
            c.apply_us.max_us,
            c.delta_applies,
            c.rebuild_applies,
            c.delta_bytes_touched,
        );
        if r.spot_mismatches > 0 {
            failures.push(format!(
                "{arm}: {} spot-check mismatches",
                r.spot_mismatches
            ));
        }
        if c.final_mismatches > 0 {
            failures.push(format!(
                "{arm}: published table diverged from RIB in {} samples",
                c.final_mismatches
            ));
        }
    }
    let patched_churn = patched_report.churn.as_ref().expect("churn ran");
    let rebuild_churn = rebuild_report.churn.as_ref().expect("churn ran");
    if patched_churn.delta_applies == 0 {
        failures.push("lulea-patched: delta path never engaged (0 patched applies)".to_string());
    }
    if rebuild_churn.delta_applies != 0 {
        failures.push(format!(
            "lulea-rebuild: control arm took {} delta applies with patching disabled",
            rebuild_churn.delta_applies
        ));
    }
    let apply_speedup = rebuild_churn.apply_us.mean_us() / patched_churn.apply_us.mean_us();
    const APPLY_SPEEDUP_FLOOR: f64 = 2.0;
    const APPLY_P99_CEILING_US: f64 = 50_000.0;
    let patched_p99 = patched_churn.apply_us.p99_us();
    let verdict = if apply_speedup >= APPLY_SPEEDUP_FLOOR && patched_p99 <= APPLY_P99_CEILING_US {
        "ok"
    } else {
        "FAIL"
    };
    println!(
        "  churn apply: patched {apply_speedup:.1}x faster than rebuild \
         (floor {APPLY_SPEEDUP_FLOOR}x), p99 {patched_p99:.1} us \
         (ceiling {APPLY_P99_CEILING_US} us) {verdict}"
    );
    if apply_speedup < APPLY_SPEEDUP_FLOOR {
        failures.push(format!(
            "churn apply speedup {apply_speedup:.2}x < {APPLY_SPEEDUP_FLOOR}x vs rebuild arm"
        ));
    }
    if patched_p99 > APPLY_P99_CEILING_US {
        failures.push(format!(
            "churn apply p99 {patched_p99:.1} us > {APPLY_P99_CEILING_US} us ceiling"
        ));
    }
    rows.push(patched_row);
    rows.push(rebuild_row);

    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dataplane.json");
    let out = opts.out.as_deref().unwrap_or(default_out);
    write_json(out, &rows, cores).expect("writing benchmark JSON");
    println!("wrote {} rows to {out}", rows.len());

    let default_latency = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_latency.json");
    let out_latency = opts.out_latency.as_deref().unwrap_or(default_latency);
    write_latency_json(out_latency, &latency_rows).expect("writing latency JSON");
    println!("wrote {} rows to {out_latency}", latency_rows.len());

    if !failures.is_empty() {
        eprintln!("bench_dataplane FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("bench_dataplane passed");
}
