//! DFZ-2026-scale benchmark arms: the ~1M-prefix IPv4 sweep and the
//! full-table IPv6 SHIP-vs-binary gate (`bench_lookup --dfz`), plus the
//! workload constructors the `bench_dataplane --v6` arm shares.
//!
//! Three gates, all calibrated against the measured numbers recorded in
//! EXPERIMENTS.md E25:
//!
//! * **build time** — every IPv4 engine must build the DFZ table under
//!   a generous absolute ceiling (the gate catches an accidentally
//!   quadratic build, not host noise), and SHIP must build within 2× of
//!   the v6 binary trie (measured ≈ 0.5×);
//! * **storage** — per-route byte ceilings ~50% above the measured
//!   full-scale numbers for IPv4, and SHIP ≤ the binary trie for IPv6
//!   (the acceptance criterion's storage half);
//! * **lookup throughput** — SHIP must beat the binary trie on batched
//!   full-table replay (the acceptance criterion's speed half); the
//!   IPv4 engines are measured scalar-vs-batch with checksums asserted
//!   equal, but their batch floors are only *enforced* at the 600k
//!   calibration scale (`bench_lookup` without `--dfz`).

use crate::lookup::{LookupRow, ReplayChecksum, ReplayMode, DEFAULT_BATCH, REPS};
use spal_core::{ForwardingTable, ForwardingTable6, LpmAlgorithm, LpmAlgorithm6};
use spal_lpm::{CountedLookup, Lpm, Lpm6};
use spal_rib::v6::{dfz2026_v6, synthesize6_dfz, RoutingTable6};
use spal_rib::{synth, RoutingTable};
use spal_traffic::{generate6, preset, LocalityModel, PresetName, Trace, Trace6, TracePreset};
use std::sync::Arc;
use std::time::Instant;

/// Quick-tier (CI) IPv4 table size. Matches `dfz_v4_quick` in
/// `crates/lpm/tests/dfz_stress.rs` so the storage caps line up.
pub const QUICK_V4_PREFIXES: usize = 150_000;

/// Quick-tier (CI) IPv6 table size (matches `dfz_v6_quick`).
pub const QUICK_V6_PREFIXES: usize = 30_000;

/// Table-generation seed shared with the stress tests.
pub const DFZ_SEED: u64 = 0xDF2026;

/// Per-engine build-time ceilings (seconds). Full scale builds six
/// engines over 1.01M routes; the slowest measured build is seconds,
/// so a minute of headroom only trips on complexity regressions.
pub fn build_ceiling_s(quick: bool) -> f64 {
    if quick {
        30.0
    } else {
        120.0
    }
}

/// Full-scale per-route storage ceilings, ~50% above the measured
/// DFZ-2026 numbers (1.01M routes: DIR-24-8 41.6, Lulea 8.1, LC 17.9,
/// DP 33.6, Poptrie 7.7 B/route — EXPERIMENTS.md E25).
pub const V4_FULL_CAPS: &[(&str, f64)] = &[
    ("DIR-24-8", 65.0),
    ("Lulea", 12.0),
    ("LC", 27.0),
    ("DP", 50.0),
    ("Poptrie", 12.0),
];

/// Quick-tier ceilings: fixed-size structures (DIR-24-8's 32 MB base
/// array) dominate per-route cost at 150k routes (measured 231.8
/// B/route), so its cap is absolute-ish; the rest get 2× full caps.
pub fn v4_caps(quick: bool) -> Vec<(&'static str, f64)> {
    if quick {
        V4_FULL_CAPS
            .iter()
            .map(|&(name, cap)| match name {
                "DIR-24-8" => (name, 350.0),
                _ => (name, cap * 2.0),
            })
            .collect()
    } else {
        V4_FULL_CAPS.to_vec()
    }
}

/// The DFZ-2026 IPv4 table at the requested tier.
pub fn dfz_v4_table(quick: bool) -> RoutingTable {
    if quick {
        synth::synthesize(&synth::SynthConfig::dfz2026(QUICK_V4_PREFIXES, DFZ_SEED))
    } else {
        synth::dfz2026_v4(DFZ_SEED)
    }
}

/// The DFZ-2026 IPv6 table at the requested tier.
pub fn dfz_v6_table(quick: bool) -> RoutingTable6 {
    if quick {
        synthesize6_dfz(QUICK_V6_PREFIXES, 0xD15C)
    } else {
        dfz2026_v6(0xD15C)
    }
}

/// Near-uniform IPv4 stress stream over a DFZ table (same shape as
/// [`crate::lookup::stress_workload`]'s trace: cache-adversarial, so
/// the replay measures the engines, not the host cache).
pub fn dfz_v4_trace(table: &RoutingTable, packets: usize, seed: u64) -> Trace {
    TracePreset {
        distinct: 2 * table.len(),
        model: LocalityModel::Zipf { alpha: 0.05 },
        ..preset(PresetName::D75)
    }
    .generate(table, packets, seed)
}

/// One engine-build measurement.
#[derive(Debug, Clone)]
pub struct BuildRow {
    /// Engine name.
    pub engine: String,
    /// Wall seconds for one build.
    pub build_s: f64,
    /// `storage_bytes` of the built engine.
    pub bytes: usize,
}

/// The IPv4 algorithms the DFZ arm sweeps. Multibit is excluded: its
/// fixed 16-8-8 strides are not a forwarding-table choice and its DFZ
/// storage is pinned by the stress tests instead.
pub const DFZ_V4_ALGORITHMS: [LpmAlgorithm; 5] = [
    LpmAlgorithm::Dir24,
    LpmAlgorithm::Lulea,
    LpmAlgorithm::Lc { fill_factor: 0.25 },
    LpmAlgorithm::Dp,
    LpmAlgorithm::Poptrie,
];

/// Build every DFZ-swept IPv4 engine, timing each build and checking
/// the build-time ceiling and the per-route storage caps. Returns the
/// engines (for the replay sweep), the build rows, and any violations.
#[allow(clippy::type_complexity)]
pub fn run_v4_build_gate(
    table: &RoutingTable,
    quick: bool,
) -> (Vec<Arc<dyn Lpm + Send + Sync>>, Vec<BuildRow>, Vec<String>) {
    let ceiling = build_ceiling_s(quick);
    let caps = v4_caps(quick);
    let mut engines: Vec<Arc<dyn Lpm + Send + Sync>> = Vec::new();
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for &alg in &DFZ_V4_ALGORITHMS {
        let t0 = Instant::now();
        let engine = ForwardingTable::build(alg, table);
        let build_s = t0.elapsed().as_secs_f64();
        let bytes = engine.storage_bytes();
        let per_route = bytes as f64 / table.len() as f64;
        let name = engine.name().to_string();
        println!(
            "  {:9} built in {:>7.2} s | {:>12} B ({per_route:>6.1} B/route, ceiling {ceiling} s)",
            name, build_s, bytes
        );
        if build_s > ceiling {
            failures.push(format!(
                "{name}: DFZ build took {build_s:.1} s > {ceiling} s ceiling"
            ));
        }
        if let Some(&(_, cap)) = caps.iter().find(|&&(n, _)| n == name) {
            if per_route > cap {
                failures.push(format!(
                    "{name}: DFZ storage {per_route:.1} B/route > {cap} B/route cap"
                ));
            }
        }
        rows.push(BuildRow {
            engine: name,
            build_s,
            bytes,
        });
        engines.push(Arc::new(engine));
    }
    (engines, rows, failures)
}

/// Replay an IPv6 trace once through `lpm`, sharded contiguously across
/// `threads` scoped workers (the 128-bit mirror of
/// [`crate::lookup::replay_once`]).
pub fn replay6_once(
    lpm: &(dyn Lpm6 + Sync),
    dests: &[u128],
    threads: usize,
    mode: ReplayMode,
) -> (ReplayChecksum, f64) {
    let per = dests.len().div_ceil(threads.max(1));
    let shards: Vec<&[u128]> = dests.chunks(per.max(1)).collect();
    let start = Instant::now();
    let partials: Vec<ReplayChecksum> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|&shard| scope.spawn(move || replay6_shard(lpm, shard, mode)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("v6 replay worker panicked"))
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let mut total = ReplayChecksum::default();
    for p in partials {
        total.merge(p);
    }
    (total, wall)
}

fn replay6_shard(lpm: &(dyn Lpm6 + Sync), shard: &[u128], mode: ReplayMode) -> ReplayChecksum {
    let mut sum = ReplayChecksum::default();
    match mode {
        ReplayMode::Scalar => {
            for &addr in shard {
                sum.absorb(lpm.lookup_counted(addr));
            }
        }
        ReplayMode::Batch { size } => {
            let mut out = vec![CountedLookup::MISS; size];
            for chunk in shard.chunks(size) {
                lpm.lookup_batch(chunk, &mut out[..chunk.len()]);
                for &c in &out[..chunk.len()] {
                    sum.absorb(c);
                }
            }
        }
    }
    sum
}

/// Best-of-[`REPS`] v6 replay with the checksum asserted stable.
pub fn replay6(
    lpm: &(dyn Lpm6 + Sync),
    dests: &[u128],
    threads: usize,
    mode: ReplayMode,
) -> (ReplayChecksum, f64) {
    let mut best: Option<(ReplayChecksum, f64)> = None;
    for _ in 0..REPS {
        let (sum, wall) = replay6_once(lpm, dests, threads, mode);
        if let Some((prev, best_wall)) = &mut best {
            assert_eq!(*prev, sum, "v6 replay checksum changed between reps");
            *best_wall = best_wall.min(wall);
        } else {
            best = Some((sum, wall));
        }
    }
    best.expect("at least one rep")
}

fn row6(
    lpm: &(dyn Lpm6 + Sync),
    mode: ReplayMode,
    threads: usize,
    sum: ReplayChecksum,
    wall: f64,
) -> LookupRow {
    LookupRow {
        engine: lpm.name().to_string(),
        mode: mode.label(),
        threads,
        packets_per_sec: sum.lookups as f64 / wall,
        wall_ms: wall * 1e3,
        mean_accesses: sum.mem_accesses as f64 / sum.lookups.max(1) as f64,
        mean_lines: sum.lines_touched as f64 / sum.lookups.max(1) as f64,
        storage_bytes: Lpm6::storage_bytes(lpm),
    }
}

/// Result of [`run_v6_gate`].
pub struct V6GateResult {
    /// Scalar + batch rows per engine (SHIP first).
    pub rows: Vec<LookupRow>,
    /// Gate violations (empty = pass).
    pub failures: Vec<String>,
}

/// SHIP build time must stay within this multiple of the v6 binary
/// trie's (measured ≈ 0.5×, so 2× only trips on a real regression).
pub const SHIP_BUILD_RATIO_CEILING: f64 = 2.0;

/// The acceptance gate: build SHIP and the v6 binary trie over `table`,
/// replay `trace` through both, and require SHIP to **beat the binary
/// trie on batched lookup throughput at equal-or-lower storage** with a
/// build time within [`SHIP_BUILD_RATIO_CEILING`]. Scalar and batch
/// checksums are asserted equal per engine, and the two engines'
/// checksums are asserted equal to each other (bit-identity on the
/// benchmark stream itself).
pub fn run_v6_gate(table: &RoutingTable6, trace: &Trace6, threads: usize) -> V6GateResult {
    let build = |alg| {
        // Best-of-3 build timing: quick-tier builds are milliseconds,
        // where one scheduler hiccup would dominate a single sample.
        let mut best: Option<(ForwardingTable6, f64)> = None;
        for _ in 0..3 {
            let t0 = Instant::now();
            let engine = ForwardingTable6::build(alg, table);
            let s = t0.elapsed().as_secs_f64();
            if best.as_ref().is_none_or(|&(_, b)| s < b) {
                best = Some((engine, s));
            }
        }
        best.expect("at least one build")
    };
    let (ship, ship_build) = build(LpmAlgorithm6::Ship);
    let (binary, binary_build) = build(LpmAlgorithm6::Binary);
    println!(
        "  build: SHIP {:.1} ms vs binary {:.1} ms ({:.2}x, ceiling {SHIP_BUILD_RATIO_CEILING}x)",
        ship_build * 1e3,
        binary_build * 1e3,
        ship_build / binary_build
    );

    let mode = ReplayMode::Batch {
        size: DEFAULT_BATCH,
    };
    let mut rows = Vec::new();
    let mut sums = Vec::new();
    for engine in [&ship, &binary] {
        let (scalar_row, batch_row, speedup) = measure6(engine, trace, threads, mode);
        println!(
            "  {:9} t={threads} scalar {:>11.0} pps | batch {:>11.0} pps | {speedup:.2}x \
             ({:.2} acc, {:.2} lines/lookup, {} B)",
            scalar_row.engine,
            scalar_row.packets_per_sec,
            batch_row.packets_per_sec,
            scalar_row.mean_accesses,
            scalar_row.mean_lines,
            scalar_row.storage_bytes,
        );
        sums.push(batch_row.packets_per_sec);
        rows.push(scalar_row);
        rows.push(batch_row);
    }

    let mut failures = Vec::new();
    let (ship_pps, binary_pps) = (sums[0], sums[1]);
    let (ship_bytes, binary_bytes) = (ship.storage_bytes(), Lpm6::storage_bytes(&binary));
    let speed_ok = ship_pps >= binary_pps;
    let storage_ok = ship_bytes <= binary_bytes;
    let build_ok = ship_build <= SHIP_BUILD_RATIO_CEILING * binary_build;
    println!(
        "  v6 gate: SHIP {:.2}x binary throughput (floor 1.0x) | {} B vs {} B | {}",
        ship_pps / binary_pps,
        ship_bytes,
        binary_bytes,
        if speed_ok && storage_ok && build_ok {
            "ok"
        } else {
            "FAIL"
        }
    );
    if !speed_ok {
        failures.push(format!(
            "SHIP batched throughput {ship_pps:.0} pps < binary trie {binary_pps:.0} pps"
        ));
    }
    if !storage_ok {
        failures.push(format!(
            "SHIP storage {ship_bytes} B > binary trie {binary_bytes} B"
        ));
    }
    if !build_ok {
        failures.push(format!(
            "SHIP build {:.1} ms > {SHIP_BUILD_RATIO_CEILING}x binary {:.1} ms",
            ship_build * 1e3,
            binary_build * 1e3
        ));
    }
    V6GateResult { rows, failures }
}

/// Paired scalar/batch v6 measurement (the
/// [`crate::lookup::measure_speedup`] shape at 128 bits): back-to-back
/// reps, best pairwise ratio, checksums asserted equal across modes.
pub fn measure6(
    lpm: &(dyn Lpm6 + Sync),
    trace: &Trace6,
    threads: usize,
    batch: ReplayMode,
) -> (LookupRow, LookupRow, f64) {
    let dests = trace.destinations();
    let mut scalar_best: Option<(ReplayChecksum, f64)> = None;
    let mut batch_best: Option<(ReplayChecksum, f64)> = None;
    let mut speedup = 0.0f64;
    for _ in 0..REPS {
        let (s_sum, s_wall) = replay6_once(lpm, dests, threads, ReplayMode::Scalar);
        let (b_sum, b_wall) = replay6_once(lpm, dests, threads, batch);
        assert_eq!(s_sum, b_sum, "v6 batch replay diverged from scalar");
        speedup = speedup.max(s_wall / b_wall);
        if scalar_best.as_ref().is_none_or(|&(_, w)| s_wall < w) {
            scalar_best = Some((s_sum, s_wall));
        }
        if batch_best.as_ref().is_none_or(|&(_, w)| b_wall < w) {
            batch_best = Some((b_sum, b_wall));
        }
    }
    let (s_sum, s_wall) = scalar_best.expect("at least one rep");
    let (b_sum, b_wall) = batch_best.expect("at least one rep");
    (
        row6(lpm, ReplayMode::Scalar, threads, s_sum, s_wall),
        row6(lpm, batch, threads, b_sum, b_wall),
        speedup,
    )
}

/// The `bench_dataplane --v6` traffic: a Zipf locality stream over the
/// DFZ table (the v6 analogue of [`crate::lookup::dataplane_trace`]).
pub fn dfz_v6_trace(table: &RoutingTable6, packets: usize, seed: u64) -> Trace6 {
    generate6(table, 32_768.min(table.len() * 4), packets, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_lpm::ship::Ship6;

    #[test]
    fn v6_replay_modes_agree_and_count_everything() {
        let table = synthesize6_dfz(2_000, 5);
        let ship = Ship6::build(&table);
        let trace = dfz_v6_trace(&table, 4_000, 9);
        for threads in [1, 3] {
            let (scalar, _) =
                replay6_once(&ship, trace.destinations(), threads, ReplayMode::Scalar);
            let (batch, _) = replay6_once(
                &ship,
                trace.destinations(),
                threads,
                ReplayMode::Batch { size: 32 },
            );
            assert_eq!(scalar, batch);
            assert_eq!(scalar.lookups, 4_000);
            assert!(scalar.hits > 0);
        }
    }

    #[test]
    fn v6_gate_passes_at_small_scale() {
        let table = synthesize6_dfz(3_000, 11);
        let trace = dfz_v6_trace(&table, 6_000, 3);
        let result = run_v6_gate(&table, &trace, 1);
        assert_eq!(result.rows.len(), 4);
        // Storage is deterministic, so that half of the gate must hold
        // even at toy scale; the throughput half is hardware-dependent
        // and asserted only in the benchmark binaries.
        assert!(
            !result.failures.iter().any(|f| f.contains("storage")),
            "{:?}",
            result.failures
        );
    }

    #[test]
    fn quick_caps_cover_every_swept_engine() {
        let caps = v4_caps(true);
        for alg in DFZ_V4_ALGORITHMS {
            let name = match alg {
                LpmAlgorithm::Dir24 => "DIR-24-8",
                LpmAlgorithm::Lulea => "Lulea",
                LpmAlgorithm::Lc { .. } => "LC",
                LpmAlgorithm::Dp => "DP",
                LpmAlgorithm::Poptrie => "Poptrie",
                _ => unreachable!(),
            };
            assert!(caps.iter().any(|&(n, _)| n == name), "no cap for {name}");
        }
    }
}
