//! IPv6 prefixes and tables.
//!
//! The paper's conclusion argues SPAL "is feasibly applicable to IPv6" and
//! that SRAM savings grow several-fold under 128-bit addressing. This
//! module provides the 128-bit analogue of [`crate::Prefix`] /
//! [`crate::RoutingTable`], enough for the partitioner and the binary trie
//! (both generic over [`crate::AddressBits`]) to run IPv6 experiments.

use crate::bits::{AddressBits, TriBit};
use crate::table::NextHop;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::fmt;

/// An IPv6 prefix in canonical form (bits beyond `len` are zero).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix6 {
    bits: u128,
    len: u8,
}

// `len` is a bit count, not a container length; `is_empty` is meaningless.
#[allow(clippy::len_without_is_empty)]
impl Prefix6 {
    /// The `::/0` default route.
    pub const DEFAULT: Prefix6 = Prefix6 { bits: 0, len: 0 };

    /// Construct, canonicalising the bits. Errors if `len > 128`.
    pub fn new(bits: u128, len: u8) -> Result<Self, crate::PrefixError> {
        if len > 128 {
            return Err(crate::PrefixError::LengthOutOfRange(len));
        }
        Ok(Prefix6 {
            bits: bits & u128::prefix_mask(len),
            len,
        })
    }

    /// The canonical prefix bits.
    #[inline]
    pub fn bits(self) -> u128 {
        self.bits
    }

    /// The prefix length.
    #[inline]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the default route.
    #[inline]
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// Whether `addr` lies inside this prefix.
    #[inline]
    pub fn matches(self, addr: u128) -> bool {
        addr & u128::prefix_mask(self.len) == self.bits
    }

    /// Tri-state value of bit `i` (0 = MSB), `*` beyond the length.
    #[inline]
    pub fn tri_bit(self, i: u8) -> TriBit {
        assert!(i < 128, "bit index {i} out of range");
        if i >= self.len {
            TriBit::Wild
        } else if self.bits.bit(i) {
            TriBit::One
        } else {
            TriBit::Zero
        }
    }

    /// Whether this prefix contains `other`.
    #[inline]
    pub fn contains(self, other: Prefix6) -> bool {
        self.len <= other.len && other.bits & u128::prefix_mask(self.len) == self.bits
    }
}

impl crate::bits::IpPrefix for Prefix6 {
    type Addr = u128;

    #[inline]
    fn len(self) -> u8 {
        Prefix6::len(self)
    }

    #[inline]
    fn tri_bit(self, i: u8) -> TriBit {
        Prefix6::tri_bit(self, i)
    }

    #[inline]
    fn matches(self, addr: u128) -> bool {
        Prefix6::matches(self, addr)
    }
}

impl fmt::Debug for Prefix6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix6({self})")
    }
}

impl fmt::Display for Prefix6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Full (non-compressed) colon-hex form; adequate for diagnostics.
        let groups: Vec<String> = (0..8)
            .map(|g| format!("{:x}", (self.bits >> (112 - 16 * g)) as u16))
            .collect();
        write!(f, "{}/{}", groups.join(":"), self.len)
    }
}

/// One IPv6 route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry6 {
    pub prefix: Prefix6,
    pub next_hop: NextHop,
}

/// A minimal IPv6 routing table with a linear reference matcher.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable6 {
    entries: Vec<RouteEntry6>,
}

impl RoutingTable6 {
    /// Build from entries; duplicate prefixes keep the last next hop.
    pub fn from_entries(entries: impl IntoIterator<Item = RouteEntry6>) -> Self {
        let mut map = std::collections::HashMap::new();
        for e in entries {
            map.insert(e.prefix, e.next_hop);
        }
        let mut entries: Vec<RouteEntry6> = map
            .into_iter()
            .map(|(prefix, next_hop)| RouteEntry6 { prefix, next_hop })
            .collect();
        entries.sort_by_key(|e| (e.prefix.bits(), e.prefix.len()));
        RoutingTable6 { entries }
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The routes.
    pub fn entries(&self) -> &[RouteEntry6] {
        &self.entries
    }

    /// Reference longest-prefix match, O(n).
    pub fn longest_match(&self, addr: u128) -> Option<RouteEntry6> {
        self.entries
            .iter()
            .filter(|e| e.prefix.matches(addr))
            .max_by_key(|e| e.prefix.len())
            .copied()
    }
}

/// Generate a synthetic IPv6 table: global-unicast (2000::/3) allocations
/// with lengths clustered at /32 (LIR), /48 (site) and /64 (subnet),
/// mirroring early-IPv6 allocation policy.
pub fn synthesize6(target: usize, seed: u64) -> RoutingTable6 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<Prefix6> = HashSet::with_capacity(target * 2);
    let mut entries = Vec::with_capacity(target);
    const LENGTHS: [(u8, f64); 6] = [
        (24, 0.03),
        (32, 0.35),
        (40, 0.07),
        (48, 0.40),
        (56, 0.05),
        (64, 0.10),
    ];
    while entries.len() < target {
        let mut x = rng.gen_range(0.0..1.0);
        let mut len = 48u8;
        for (l, w) in LENGTHS {
            if x < w {
                len = l;
                break;
            }
            x -= w;
        }
        // Global unicast: top 3 bits = 001.
        let addr = (rng.gen::<u128>() >> 3) | (0b001u128 << 125);
        let prefix = Prefix6::new(addr, len).expect("len <= 128");
        if seen.insert(prefix) {
            entries.push(RouteEntry6 {
                prefix,
                next_hop: NextHop(rng.gen_range(0..32)),
            });
        }
    }
    RoutingTable6::from_entries(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_canonicalises() {
        let p = Prefix6::new(u128::MAX, 32).unwrap();
        assert_eq!(p.bits(), 0xFFFF_FFFFu128 << 96);
        assert!(Prefix6::new(0, 129).is_err());
    }

    #[test]
    fn matching_and_containment() {
        let p = Prefix6::new(0x2001_0db8u128 << 96, 32).unwrap();
        assert!(p.matches(0x2001_0db8u128 << 96 | 42));
        assert!(!p.matches(0x2001_0db9u128 << 96));
        let q = Prefix6::new(0x2001_0db8_0001u128 << 80, 48).unwrap();
        assert!(p.contains(q));
        assert!(!q.contains(p));
        assert!(Prefix6::DEFAULT.contains(p));
        assert!(Prefix6::DEFAULT.is_default());
    }

    #[test]
    fn tri_bits() {
        let p = Prefix6::new(1u128 << 127, 1).unwrap();
        assert_eq!(p.tri_bit(0), TriBit::One);
        assert_eq!(p.tri_bit(1), TriBit::Wild);
    }

    #[test]
    fn display() {
        let p = Prefix6::new(0x2001_0db8u128 << 96, 32).unwrap();
        assert_eq!(p.to_string(), "2001:db8:0:0:0:0:0:0/32");
    }

    #[test]
    fn synth_size_and_determinism() {
        let a = synthesize6(500, 9);
        assert_eq!(a.len(), 500);
        let b = synthesize6(500, 9);
        assert_eq!(a.entries(), b.entries());
        // All in global unicast space.
        for e in a.entries() {
            assert_eq!(e.prefix.bits() >> 125, 0b001);
        }
    }

    #[test]
    fn longest_match_reference() {
        let p32 = Prefix6::new(0x2001_0db8u128 << 96, 32).unwrap();
        let p48 = Prefix6::new(0x2001_0db8_0001u128 << 80, 48).unwrap();
        let t = RoutingTable6::from_entries([
            RouteEntry6 {
                prefix: p32,
                next_hop: NextHop(1),
            },
            RouteEntry6 {
                prefix: p48,
                next_hop: NextHop(2),
            },
        ]);
        let inside48 = 0x2001_0db8_0001u128 << 80 | 7;
        let inside32 = 0x2001_0db8_0002u128 << 80;
        assert_eq!(t.longest_match(inside48).unwrap().next_hop, NextHop(2));
        assert_eq!(t.longest_match(inside32).unwrap().next_hop, NextHop(1));
        assert!(t.longest_match(0x3000u128 << 112).is_none());
    }
}
