//! IPv6 prefixes and tables.
//!
//! The paper's conclusion argues SPAL "is feasibly applicable to IPv6" and
//! that SRAM savings grow several-fold under 128-bit addressing. This
//! module provides the 128-bit analogue of [`crate::Prefix`] /
//! [`crate::RoutingTable`], enough for the partitioner and the binary trie
//! (both generic over [`crate::AddressBits`]) to run IPv6 experiments.

use crate::bits::{AddressBits, TriBit};
use crate::table::NextHop;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::fmt;

/// An IPv6 prefix in canonical form (bits beyond `len` are zero).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix6 {
    bits: u128,
    len: u8,
}

// `len` is a bit count, not a container length; `is_empty` is meaningless.
#[allow(clippy::len_without_is_empty)]
impl Prefix6 {
    /// The `::/0` default route.
    pub const DEFAULT: Prefix6 = Prefix6 { bits: 0, len: 0 };

    /// Construct, canonicalising the bits. Errors if `len > 128`.
    pub fn new(bits: u128, len: u8) -> Result<Self, crate::PrefixError> {
        if len > 128 {
            return Err(crate::PrefixError::LengthOutOfRange(len));
        }
        Ok(Prefix6 {
            bits: bits & u128::prefix_mask(len),
            len,
        })
    }

    /// The canonical prefix bits.
    #[inline]
    pub fn bits(self) -> u128 {
        self.bits
    }

    /// The prefix length.
    #[inline]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the default route.
    #[inline]
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// Whether `addr` lies inside this prefix.
    #[inline]
    pub fn matches(self, addr: u128) -> bool {
        addr & u128::prefix_mask(self.len) == self.bits
    }

    /// Tri-state value of bit `i` (0 = MSB), `*` beyond the length.
    #[inline]
    pub fn tri_bit(self, i: u8) -> TriBit {
        assert!(i < 128, "bit index {i} out of range");
        if i >= self.len {
            TriBit::Wild
        } else if self.bits.bit(i) {
            TriBit::One
        } else {
            TriBit::Zero
        }
    }

    /// Whether this prefix contains `other`.
    #[inline]
    pub fn contains(self, other: Prefix6) -> bool {
        self.len <= other.len && other.bits & u128::prefix_mask(self.len) == self.bits
    }

    /// The lowest address in the prefix (its canonical bits).
    #[inline]
    pub fn first_addr(self) -> u128 {
        self.bits
    }

    /// The highest address in the prefix.
    #[inline]
    pub fn last_addr(self) -> u128 {
        self.bits | !u128::prefix_mask(self.len)
    }
}

impl crate::bits::IpPrefix for Prefix6 {
    type Addr = u128;

    #[inline]
    fn len(self) -> u8 {
        Prefix6::len(self)
    }

    #[inline]
    fn tri_bit(self, i: u8) -> TriBit {
        Prefix6::tri_bit(self, i)
    }

    #[inline]
    fn matches(self, addr: u128) -> bool {
        Prefix6::matches(self, addr)
    }
}

impl fmt::Debug for Prefix6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix6({self})")
    }
}

impl fmt::Display for Prefix6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Full (non-compressed) colon-hex form; adequate for diagnostics.
        let groups: Vec<String> = (0..8)
            .map(|g| format!("{:x}", (self.bits >> (112 - 16 * g)) as u16))
            .collect();
        write!(f, "{}/{}", groups.join(":"), self.len)
    }
}

/// One IPv6 route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry6 {
    pub prefix: Prefix6,
    pub next_hop: NextHop,
}

/// A minimal IPv6 routing table with a linear reference matcher.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable6 {
    entries: Vec<RouteEntry6>,
}

impl RoutingTable6 {
    /// Build from entries; duplicate prefixes keep the last next hop.
    pub fn from_entries(entries: impl IntoIterator<Item = RouteEntry6>) -> Self {
        let mut map = std::collections::HashMap::new();
        for e in entries {
            map.insert(e.prefix, e.next_hop);
        }
        let mut entries: Vec<RouteEntry6> = map
            .into_iter()
            .map(|(prefix, next_hop)| RouteEntry6 { prefix, next_hop })
            .collect();
        entries.sort_by_key(|e| (e.prefix.bits(), e.prefix.len()));
        RoutingTable6 { entries }
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The routes, sorted by (bits, length).
    pub fn entries(&self) -> &[RouteEntry6] {
        &self.entries
    }

    /// Just the prefixes, in entry order.
    pub fn prefixes(&self) -> impl Iterator<Item = Prefix6> + '_ {
        self.entries.iter().map(|e| e.prefix)
    }

    /// Insert or replace a route. O(n) worst case (vector shift); tables
    /// are built in bulk via [`RoutingTable6::from_entries`], this exists
    /// for the incremental-update paths.
    pub fn insert(&mut self, entry: RouteEntry6) {
        match self
            .entries
            .binary_search_by_key(&(entry.prefix.bits(), entry.prefix.len()), |e| {
                (e.prefix.bits(), e.prefix.len())
            }) {
            Ok(i) => self.entries[i] = entry,
            Err(i) => self.entries.insert(i, entry),
        }
    }

    /// Remove the route for `prefix`, returning it if present.
    pub fn remove(&mut self, prefix: Prefix6) -> Option<RouteEntry6> {
        match self
            .entries
            .binary_search_by_key(&(prefix.bits(), prefix.len()), |e| {
                (e.prefix.bits(), e.prefix.len())
            }) {
            Ok(i) => Some(self.entries.remove(i)),
            Err(_) => None,
        }
    }

    /// The next hop stored for exactly `prefix`, if present. O(log n).
    pub fn get(&self, prefix: Prefix6) -> Option<NextHop> {
        self.entries
            .binary_search_by_key(&(prefix.bits(), prefix.len()), |e| {
                (e.prefix.bits(), e.prefix.len())
            })
            .ok()
            .map(|i| self.entries[i].next_hop)
    }

    /// All routes whose canonical bits fall inside `[lo, hi]`, as a
    /// contiguous sorted slice. O(log n) to locate — this is what lets
    /// the SHIP engine rebuild a single address-block bin without
    /// scanning the full table. Prefix-aligned ranges cannot partially
    /// overlap a route, so callers filter by length where needed.
    pub fn range(&self, lo: u128, hi: u128) -> &[RouteEntry6] {
        let start = self.entries.partition_point(|e| e.prefix.bits() < lo);
        let end = self.entries.partition_point(|e| e.prefix.bits() <= hi);
        &self.entries[start..end]
    }

    /// Longest match for `addr` among routes no longer than `max_len`
    /// bits. O(max_len · log n); used by incremental patch paths to
    /// recompute the default a region inherits from above.
    pub fn best_cover(&self, addr: u128, max_len: u8) -> Option<RouteEntry6> {
        for len in (0..=max_len).rev() {
            let p = Prefix6::new(addr, len).expect("masked prefix is valid");
            if let Some(nh) = self.get(p) {
                return Some(RouteEntry6 {
                    prefix: p,
                    next_hop: nh,
                });
            }
        }
        None
    }

    /// Reference longest-prefix match, O(n).
    pub fn longest_match(&self, addr: u128) -> Option<RouteEntry6> {
        self.entries
            .iter()
            .filter(|e| e.prefix.matches(addr))
            .max_by_key(|e| e.prefix.len())
            .copied()
    }

    /// The largest next-hop index present, plus one. Zero when empty.
    pub fn next_hop_count(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.next_hop.0 as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Generate a synthetic IPv6 table: global-unicast (2000::/3) allocations
/// with lengths clustered at /32 (LIR), /48 (site) and /64 (subnet),
/// mirroring early-IPv6 allocation policy.
pub fn synthesize6(target: usize, seed: u64) -> RoutingTable6 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<Prefix6> = HashSet::with_capacity(target * 2);
    let mut entries = Vec::with_capacity(target);
    const LENGTHS: [(u8, f64); 6] = [
        (24, 0.03),
        (32, 0.35),
        (40, 0.07),
        (48, 0.40),
        (56, 0.05),
        (64, 0.10),
    ];
    while entries.len() < target {
        let mut x = rng.gen_range(0.0..1.0);
        let mut len = 48u8;
        for (l, w) in LENGTHS {
            if x < w {
                len = l;
                break;
            }
            x -= w;
        }
        // Global unicast: top 3 bits = 001.
        let addr = (rng.gen::<u128>() >> 3) | (0b001u128 << 125);
        let prefix = Prefix6::new(addr, len).expect("len <= 128");
        if seen.insert(prefix) {
            entries.push(RouteEntry6 {
                prefix,
                next_hop: NextHop(rng.gen_range(0..32)),
            });
        }
    }
    RoutingTable6::from_entries(entries)
}

/// Number of IPv6 prefixes in the DFZ-2026 preset (~200k, the size of
/// the real IPv6 default-free zone in 2026).
pub const DFZ2026_V6_SIZE: usize = 200_000;

/// Length weights for the DFZ-2026 IPv6 preset, modelled on the modern
/// v6 DFZ: /48 dominates (~46 %), /32 LIR allocations are the next
/// band, with secondary modes at /29 (post-2011 RIPE default), /36, /40
/// and /44, and a filtered residue longer than /48.
const DFZ2026_V6_LENGTH_WEIGHTS: &[(u8, f64)] = &[
    (19, 0.2),
    (20, 0.4),
    (21, 0.3),
    (22, 0.6),
    (23, 0.3),
    (24, 0.8),
    (25, 0.2),
    (26, 0.3),
    (27, 0.3),
    (28, 1.2),
    (29, 5.5),
    (30, 1.0),
    (31, 0.6),
    (32, 12.5),
    (33, 0.8),
    (34, 0.6),
    (35, 0.6),
    (36, 5.0),
    (38, 0.6),
    (40, 7.5),
    (42, 0.7),
    (44, 8.0),
    (45, 1.2),
    (46, 2.0),
    (47, 1.5),
    (48, 46.0),
    (52, 0.3),
    (56, 0.4),
    (64, 0.7),
];

/// Sample a prefix length from the DFZ-2026 IPv6 distribution — also
/// used by [`update_stream6`] so churn keeps the table's shape.
pub fn sample_length6(rng: &mut StdRng) -> u8 {
    let total: f64 = DFZ2026_V6_LENGTH_WEIGHTS.iter().map(|&(_, w)| w).sum();
    let mut x = rng.gen_range(0.0..total);
    for &(len, w) in DFZ2026_V6_LENGTH_WEIGHTS {
        if x < w {
            return len;
        }
        x -= w;
    }
    48 // numerically unreachable; the dominant length is a safe fallback
}

/// A random address in the IPv6 global unicast space (2000::/3).
fn random_global_unicast6(rng: &mut StdRng) -> u128 {
    (rng.gen::<u128>() >> 3) | (0b001u128 << 125)
}

/// The DFZ-2026 IPv6 table at full size. See [`synthesize6_dfz`].
pub fn dfz2026_v6(seed: u64) -> RoutingTable6 {
    synthesize6_dfz(DFZ2026_V6_SIZE, seed)
}

/// Generate a DFZ-2026-shaped IPv6 table of `target` routes.
///
/// Structure mirrors real v6 allocation policy: a handful of RIR
/// super-blocks (/12) carve up 2000::/3; LIR allocations (/32 and /29)
/// are drawn inside them; and site routes (/33 and longer — including
/// the dominant /48 band) mostly nest inside a previously chosen LIR
/// block, producing the more-specific nesting that defeats
/// range-merging caches and exercises SHIP's per-bin grouping.
pub fn synthesize6_dfz(target: usize, seed: u64) -> RoutingTable6 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<Prefix6> = HashSet::with_capacity(target * 2);
    let mut entries = Vec::with_capacity(target);

    // RIR super-blocks: /12s like 2a00::/12, 2400::/12, 2600::/12 ...
    let rirs: Vec<Prefix6> = (0..8)
        .map(|_| Prefix6::new(random_global_unicast6(&mut rng), 12).expect("len <= 128"))
        .collect();
    // LIR allocations inside the RIRs: mostly /32, some /29.
    let n_lirs = (target / 16).clamp(64, 16_384);
    let lirs: Vec<Prefix6> = (0..n_lirs)
        .map(|_| {
            let rir = rirs[rng.gen_range(0..rirs.len())];
            let len = if rng.gen_bool(0.25) { 29 } else { 32 };
            let extra = rng.gen::<u128>() & !u128::prefix_mask(rir.len());
            Prefix6::new(rir.bits() | extra, len).expect("len <= 128")
        })
        .collect();

    while entries.len() < target {
        let len = sample_length6(&mut rng);
        let prefix = if len >= 33 && rng.gen_bool(0.85) {
            // Site route nested inside an LIR allocation.
            let lir = lirs[rng.gen_range(0..lirs.len())];
            let extra = rng.gen::<u128>() & !u128::prefix_mask(lir.len());
            Prefix6::new(lir.bits() | extra, len).expect("len <= 128")
        } else if (len == 29 || len == 32) && rng.gen_bool(0.6) {
            // Announce an LIR allocation itself: real covering
            // aggregates are in the DFZ, which is what gives the /48
            // band its more-specific nesting. (Duplicates are rejected
            // below and redrawn.)
            let mut pick = lirs[rng.gen_range(0..lirs.len())];
            for _ in 0..8 {
                if pick.len() == len && !seen.contains(&pick) {
                    break;
                }
                pick = lirs[rng.gen_range(0..lirs.len())];
            }
            if pick.len() == len && !seen.contains(&pick) {
                pick
            } else {
                let rir = rirs[rng.gen_range(0..rirs.len())];
                let extra = rng.gen::<u128>() & !u128::prefix_mask(rir.len());
                Prefix6::new(rir.bits() | extra, len).expect("len <= 128")
            }
        } else if len >= 20 {
            // Allocation-scale route inside an RIR super-block.
            let rir = rirs[rng.gen_range(0..rirs.len())];
            let extra = rng.gen::<u128>() & !u128::prefix_mask(rir.len());
            Prefix6::new(rir.bits() | extra, len).expect("len <= 128")
        } else {
            Prefix6::new(random_global_unicast6(&mut rng), len).expect("len <= 128")
        };
        if seen.insert(prefix) {
            entries.push(RouteEntry6 {
                prefix,
                next_hop: NextHop(rng.gen_range(0..64)),
            });
        }
    }
    RoutingTable6::from_entries(entries)
}

/// One IPv6 routing update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Update6 {
    /// Announce (or re-announce with a new next hop) a route.
    Announce(RouteEntry6),
    /// Withdraw the route for a prefix.
    Withdraw(Prefix6),
}

/// Generate a consistent IPv6 update stream against `base`, mirroring
/// [`crate::updates::update_stream`]: withdrawals only target live
/// prefixes, roughly half of announcements re-announce an existing
/// prefix, and new prefixes follow the DFZ-2026 length shape.
pub fn update_stream6(
    base: &RoutingTable6,
    cfg: &crate::updates::UpdateStreamConfig,
) -> (Vec<Update6>, RoutingTable6) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut live: Vec<RouteEntry6> = base.entries().to_vec();
    let mut updates = Vec::with_capacity(cfg.count);
    for _ in 0..cfg.count {
        let withdraw = !live.is_empty() && rng.gen_bool(cfg.withdraw_fraction);
        if withdraw {
            let i = rng.gen_range(0..live.len());
            let e = live.swap_remove(i);
            updates.push(Update6::Withdraw(e.prefix));
        } else if !live.is_empty() && rng.gen_bool(0.5) {
            let i = rng.gen_range(0..live.len());
            let nh = NextHop(rng.gen_range(0..64));
            live[i].next_hop = nh;
            updates.push(Update6::Announce(live[i]));
        } else {
            let len = sample_length6(&mut rng);
            let prefix = Prefix6::new(random_global_unicast6(&mut rng), len).expect("len <= 128");
            let entry = RouteEntry6 {
                prefix,
                next_hop: NextHop(rng.gen_range(0..64)),
            };
            match live.iter_mut().find(|e| e.prefix == prefix) {
                Some(e) => e.next_hop = entry.next_hop,
                None => live.push(entry),
            }
            updates.push(Update6::Announce(entry));
        }
    }
    (updates, RoutingTable6::from_entries(live))
}

/// Apply an update to a table (the oracle path).
pub fn apply6(table: &mut RoutingTable6, update: Update6) {
    match update {
        Update6::Announce(e) => table.insert(e),
        Update6::Withdraw(p) => {
            table.remove(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_canonicalises() {
        let p = Prefix6::new(u128::MAX, 32).unwrap();
        assert_eq!(p.bits(), 0xFFFF_FFFFu128 << 96);
        assert!(Prefix6::new(0, 129).is_err());
    }

    #[test]
    fn matching_and_containment() {
        let p = Prefix6::new(0x2001_0db8u128 << 96, 32).unwrap();
        assert!(p.matches(0x2001_0db8u128 << 96 | 42));
        assert!(!p.matches(0x2001_0db9u128 << 96));
        let q = Prefix6::new(0x2001_0db8_0001u128 << 80, 48).unwrap();
        assert!(p.contains(q));
        assert!(!q.contains(p));
        assert!(Prefix6::DEFAULT.contains(p));
        assert!(Prefix6::DEFAULT.is_default());
    }

    #[test]
    fn tri_bits() {
        let p = Prefix6::new(1u128 << 127, 1).unwrap();
        assert_eq!(p.tri_bit(0), TriBit::One);
        assert_eq!(p.tri_bit(1), TriBit::Wild);
    }

    #[test]
    fn display() {
        let p = Prefix6::new(0x2001_0db8u128 << 96, 32).unwrap();
        assert_eq!(p.to_string(), "2001:db8:0:0:0:0:0:0/32");
    }

    #[test]
    fn synth_size_and_determinism() {
        let a = synthesize6(500, 9);
        assert_eq!(a.len(), 500);
        let b = synthesize6(500, 9);
        assert_eq!(a.entries(), b.entries());
        // All in global unicast space.
        for e in a.entries() {
            assert_eq!(e.prefix.bits() >> 125, 0b001);
        }
    }

    #[test]
    fn table_ops_mirror_v4_semantics() {
        let p32 = Prefix6::new(0x2001_0db8u128 << 96, 32).unwrap();
        let p48 = Prefix6::new(0x2001_0db8_0001u128 << 80, 48).unwrap();
        let mut t = RoutingTable6::default();
        t.insert(RouteEntry6 {
            prefix: p48,
            next_hop: NextHop(2),
        });
        t.insert(RouteEntry6 {
            prefix: p32,
            next_hop: NextHop(1),
        });
        assert_eq!(t.get(p32), Some(NextHop(1)));
        assert_eq!(t.get(p48), Some(NextHop(2)));
        // Replace keeps the size.
        t.insert(RouteEntry6 {
            prefix: p32,
            next_hop: NextHop(9),
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(p32), Some(NextHop(9)));
        // Range scan over the /32's span sees both routes.
        let span = t.range(p32.first_addr(), p32.last_addr());
        assert_eq!(span.len(), 2);
        // best_cover finds the /48 inside, the /32 outside it.
        let inside48 = p48.bits() | 7;
        assert_eq!(t.best_cover(inside48, 128).unwrap().prefix, p48);
        assert_eq!(t.best_cover(inside48, 47).unwrap().prefix, p32);
        assert_eq!(t.remove(p48).unwrap().next_hop, NextHop(2));
        assert_eq!(t.remove(p48), None);
        assert_eq!(t.next_hop_count(), 10);
    }

    #[test]
    fn dfz2026_v6_shape() {
        let t = synthesize6_dfz(20_000, 11);
        assert_eq!(t.len(), 20_000);
        let mut counts = [0usize; 129];
        for e in t.entries() {
            counts[e.prefix.len() as usize] += 1;
            // Everything in global unicast.
            assert_eq!(e.prefix.bits() >> 125, 0b001);
        }
        // /48 dominates at roughly its DFZ share.
        assert!(counts[48] * 10 > t.len() * 3, "got {}", counts[48]);
        // /32 is the second band; /29 and /40/44 modes are present.
        assert!(counts[32] > counts[40]);
        assert!(counts[29] > 0 && counts[36] > 0 && counts[44] > 0);
        // Nesting: most /48s sit inside a live /32 or /29 allocation.
        let nested = t
            .entries()
            .iter()
            .filter(|e| e.prefix.len() == 48)
            .filter(|e| {
                t.best_cover(e.prefix.bits(), 47)
                    .is_some_and(|c| c.prefix.len() >= 29)
            })
            .count();
        assert!(
            nested * 2 > counts[48],
            "nested = {nested} of {}",
            counts[48]
        );
        // Deterministic.
        let u = synthesize6_dfz(20_000, 11);
        assert_eq!(t.entries(), u.entries());
    }

    #[test]
    fn update_stream6_consistent_with_final_table() {
        let base = synthesize6_dfz(2_000, 3);
        let cfg = crate::updates::UpdateStreamConfig {
            count: 1_500,
            withdraw_fraction: 0.3,
            seed: 17,
        };
        let (updates, fin) = update_stream6(&base, &cfg);
        assert_eq!(updates.len(), 1_500);
        let mut table = base.clone();
        let mut live: HashSet<Prefix6> = base.prefixes().collect();
        for &u in &updates {
            if let Update6::Withdraw(p) = u {
                assert!(live.contains(&p), "withdrew a dead prefix {p}");
            }
            match u {
                Update6::Announce(e) => {
                    live.insert(e.prefix);
                }
                Update6::Withdraw(p) => {
                    live.remove(&p);
                }
            }
            apply6(&mut table, u);
        }
        assert_eq!(table.entries(), fin.entries());
        // Deterministic.
        let (again, _) = update_stream6(&base, &cfg);
        assert_eq!(updates, again);
    }

    #[test]
    fn longest_match_reference() {
        let p32 = Prefix6::new(0x2001_0db8u128 << 96, 32).unwrap();
        let p48 = Prefix6::new(0x2001_0db8_0001u128 << 80, 48).unwrap();
        let t = RoutingTable6::from_entries([
            RouteEntry6 {
                prefix: p32,
                next_hop: NextHop(1),
            },
            RouteEntry6 {
                prefix: p48,
                next_hop: NextHop(2),
            },
        ]);
        let inside48 = 0x2001_0db8_0001u128 << 80 | 7;
        let inside32 = 0x2001_0db8_0002u128 << 80;
        assert_eq!(t.longest_match(inside48).unwrap().next_hop, NextHop(2));
        assert_eq!(t.longest_match(inside32).unwrap().next_hop, NextHop(1));
        assert!(t.longest_match(0x3000u128 << 112).is_none());
    }
}
