//! Synthetic BGP update streams.
//!
//! §3.2 of the paper models the consequence of table updates (an
//! LR-cache flush per update, 20–100 updates/s); this module provides
//! the updates themselves — announce/withdraw/re-announce events with
//! realistic proportions — so incremental structures (the DP trie, the
//! binary trie) can be exercised against a rebuilt-from-scratch oracle.

use crate::prefix::Prefix;
use crate::table::{NextHop, RouteEntry, RoutingTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One routing update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Update {
    /// Announce (or re-announce with a new next hop) a route.
    Announce(RouteEntry),
    /// Withdraw the route for a prefix.
    Withdraw(Prefix),
}

/// Configuration of the update generator.
#[derive(Debug, Clone)]
pub struct UpdateStreamConfig {
    /// Number of updates to generate.
    pub count: usize,
    /// Probability an update withdraws an existing route (the rest are
    /// announcements; roughly half of those re-announce an existing
    /// prefix with a new next hop, as BGP churn mostly does).
    pub withdraw_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UpdateStreamConfig {
    fn default() -> Self {
        UpdateStreamConfig {
            count: 1_000,
            withdraw_fraction: 0.3,
            seed: 7,
        }
    }
}

/// Generate an update stream against `base`. The stream is *consistent*:
/// withdrawals only target prefixes present at that point, and the
/// returned final table reflects all updates applied in order.
pub fn update_stream(base: &RoutingTable, cfg: &UpdateStreamConfig) -> (Vec<Update>, RoutingTable) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut live: Vec<RouteEntry> = base.entries().to_vec();
    let mut updates = Vec::with_capacity(cfg.count);
    for _ in 0..cfg.count {
        let withdraw = !live.is_empty() && rng.gen_bool(cfg.withdraw_fraction);
        if withdraw {
            let i = rng.gen_range(0..live.len());
            let e = live.swap_remove(i);
            updates.push(Update::Withdraw(e.prefix));
        } else if !live.is_empty() && rng.gen_bool(0.5) {
            // Re-announce an existing prefix with a new next hop.
            let i = rng.gen_range(0..live.len());
            let nh = NextHop(rng.gen_range(0..32));
            live[i].next_hop = nh;
            updates.push(Update::Announce(live[i]));
        } else {
            // A brand-new (or previously withdrawn) prefix, drawn from
            // the backbone length distribution so churn preserves the
            // table's shape (real announcements are /24-heavy).
            let len = crate::synth::sample_length(&mut rng);
            let prefix = Prefix::new(rng.gen(), len).expect("len <= 32");
            let entry = RouteEntry {
                prefix,
                next_hop: NextHop(rng.gen_range(0..32)),
            };
            match live.iter_mut().find(|e| e.prefix == prefix) {
                Some(e) => e.next_hop = entry.next_hop,
                None => live.push(entry),
            }
            updates.push(Update::Announce(entry));
        }
    }
    (updates, RoutingTable::from_entries(live))
}

/// Apply an update to a routing table (the oracle path).
pub fn apply(table: &mut RoutingTable, update: Update) {
    match update {
        Update::Announce(e) => table.insert(e),
        Update::Withdraw(p) => {
            table.remove(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn stream_is_consistent_with_final_table() {
        let base = synth::small(3);
        let (updates, fin) = update_stream(&base, &UpdateStreamConfig::default());
        assert_eq!(updates.len(), 1_000);
        let mut table = base.clone();
        for &u in &updates {
            apply(&mut table, u);
        }
        assert_eq!(table.entries(), fin.entries());
    }

    #[test]
    fn withdrawals_target_live_prefixes() {
        let base = synth::small(5);
        let (updates, _) = update_stream(&base, &UpdateStreamConfig::default());
        let mut live: std::collections::HashSet<Prefix> = base.prefixes().collect();
        for &u in &updates {
            match u {
                Update::Announce(e) => {
                    live.insert(e.prefix);
                }
                Update::Withdraw(p) => {
                    assert!(live.remove(&p), "withdrew a dead prefix {p}");
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let base = synth::small(7);
        let cfg = UpdateStreamConfig::default();
        let (a, fa) = update_stream(&base, &cfg);
        let (b, fb) = update_stream(&base, &cfg);
        assert_eq!(a, b);
        assert_eq!(fa.entries(), fb.entries());
    }

    #[test]
    fn withdraw_fraction_zero_only_announces() {
        let base = synth::small(9);
        let cfg = UpdateStreamConfig {
            withdraw_fraction: 0.0,
            count: 200,
            seed: 1,
        };
        let (updates, fin) = update_stream(&base, &cfg);
        assert!(updates.iter().all(|u| matches!(u, Update::Announce(_))));
        assert!(fin.len() >= base.len());
    }
}
