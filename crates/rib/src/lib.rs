//! Routing-table substrate for the SPAL reproduction.
//!
//! This crate provides everything the rest of the workspace needs to talk
//! about IP routes:
//!
//! * [`Prefix`] — an IPv4 CIDR prefix with the bit-level accessors the SPAL
//!   partitioning algorithm needs (`0` / `1` / `*` per bit position),
//! * [`RoutingTable`] — an in-memory BGP-style routing table with a linear
//!   reference longest-prefix-match used as a test oracle,
//! * [`synth`] — deterministic synthetic generators standing in for the two
//!   tables evaluated in the paper (FUNET "RT_1", 41,709 prefixes; AS1221
//!   "RT_2", 140,838 prefixes), and
//! * [`v6`] — an IPv6 prefix type demonstrating that the machinery extends
//!   to 128-bit addresses (the paper's §6 claims SPAL is "feasibly
//!   applicable to IPv6").
//!
//! The original table files are long gone; see `DESIGN.md` (substitution 1)
//! for why synthetic tables with the published size and length distribution
//! preserve the behaviour every experiment depends on.

pub mod bits;
pub mod parse;
pub mod prefix;
pub mod stats;
pub mod synth;
pub mod table;
pub mod updates;
pub mod v6;

pub use bits::{AddressBits, TriBit};
pub use prefix::{Prefix, PrefixError};
pub use table::{NextHop, RouteEntry, RoutingTable};
