//! Descriptive statistics over routing tables: prefix-length distribution
//! and nesting structure. Used to validate that synthetic tables look like
//! the backbone tables the paper references (refs 2, 11, 15).

use crate::prefix::Prefix;
use crate::table::RoutingTable;

/// Per-length counts plus derived summary quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct LengthDistribution {
    /// `counts[l]` = number of prefixes of length `l`, for `l` in `0..=32`.
    pub counts: [usize; 33],
    /// Total number of prefixes.
    pub total: usize,
}

impl LengthDistribution {
    /// Compute the distribution of a table.
    pub fn of(table: &RoutingTable) -> Self {
        let mut counts = [0usize; 33];
        for e in table {
            counts[e.prefix.len() as usize] += 1;
        }
        LengthDistribution {
            counts,
            total: table.len(),
        }
    }

    /// Fraction of prefixes whose length is `<= len`. The paper's §3.1
    /// observes this exceeds 83 % at `len = 24` for backbone tables.
    pub fn fraction_at_most(&self, len: u8) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n: usize = self.counts[..=len as usize].iter().sum();
        n as f64 / self.total as f64
    }

    /// Fraction of prefixes of exactly `len` bits.
    pub fn fraction_exact(&self, len: u8) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts[len as usize] as f64 / self.total as f64
    }

    /// The most common prefix length (ties broken toward shorter), or
    /// `None` for an empty table. /24 dominates real backbone tables.
    pub fn mode(&self) -> Option<u8> {
        if self.total == 0 {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(l, _)| l as u8)
    }

    /// Mean prefix length.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: usize = self.counts.iter().enumerate().map(|(l, &c)| l * c).sum();
        sum as f64 / self.total as f64
    }
}

/// Nesting statistics: how many prefixes are more-specifics of another
/// prefix in the same table ("prefix exceptions", §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NestingStats {
    /// Prefixes contained in at least one strictly shorter prefix.
    pub nested: usize,
    /// Prefixes not covered by any other prefix.
    pub roots: usize,
    /// Maximum nesting depth (a root has depth 0).
    pub max_depth: usize,
}

/// Compute nesting statistics. O(n log n + n · d) where `d` is the number
/// of ancestors examined per prefix (≤ 32).
pub fn nesting_stats(table: &RoutingTable) -> NestingStats {
    use std::collections::HashSet;
    let set: HashSet<Prefix> = table.prefixes().collect();
    let mut nested = 0usize;
    let mut roots = 0usize;
    let mut max_depth = 0usize;
    for p in table.prefixes() {
        let mut depth = 0usize;
        let mut cur = p;
        while let Some(parent) = cur.parent() {
            cur = parent;
            if set.contains(&cur) {
                depth += 1;
            }
        }
        if depth > 0 {
            nested += 1;
        } else {
            roots += 1;
        }
        max_depth = max_depth.max(depth);
    }
    NestingStats {
        nested,
        roots,
        max_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{NextHop, RouteEntry};

    fn table(prefixes: &[&str]) -> RoutingTable {
        RoutingTable::from_entries(prefixes.iter().enumerate().map(|(i, s)| RouteEntry {
            prefix: s.parse().unwrap(),
            next_hop: NextHop(i as u16),
        }))
    }

    #[test]
    fn distribution_counts() {
        let t = table(&["10.0.0.0/8", "10.1.0.0/16", "10.2.0.0/16", "1.2.3.0/24"]);
        let d = LengthDistribution::of(&t);
        assert_eq!(d.total, 4);
        assert_eq!(d.counts[8], 1);
        assert_eq!(d.counts[16], 2);
        assert_eq!(d.counts[24], 1);
        assert_eq!(d.mode(), Some(16));
        assert!((d.fraction_at_most(16) - 0.75).abs() < 1e-12);
        assert!((d.fraction_exact(24) - 0.25).abs() < 1e-12);
        assert!((d.mean() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_empty() {
        let d = LengthDistribution::of(&RoutingTable::new());
        assert_eq!(d.mode(), None);
        assert_eq!(d.fraction_at_most(32), 0.0);
        assert_eq!(d.mean(), 0.0);
    }

    #[test]
    fn nesting() {
        let t = table(&["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "11.0.0.0/8"]);
        let s = nesting_stats(&t);
        assert_eq!(s.roots, 2);
        assert_eq!(s.nested, 2);
        assert_eq!(s.max_depth, 2);
    }

    #[test]
    fn nesting_disjoint_table() {
        let t = table(&["10.0.0.0/8", "11.0.0.0/8"]);
        let s = nesting_stats(&t);
        assert_eq!(s.roots, 2);
        assert_eq!(s.nested, 0);
        assert_eq!(s.max_depth, 0);
    }
}
