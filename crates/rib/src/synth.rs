//! Deterministic synthetic BGP routing tables.
//!
//! The paper evaluates on two tables: the FUNET table ("RT_1", 41,709
//! prefixes) and an AS1221 snapshot ("RT_2", 140,838 prefixes). Neither
//! file is available today, so [`rt1`] and [`rt2`] generate tables of
//! exactly those sizes whose *shape* matches what was published about
//! backbone tables of the era (and what the paper itself relies on):
//!
//! * a length distribution dominated by /24 (≈ 52 %), with well over 83 %
//!   of prefixes of length ≤ 24 (§3.1 uses this to argue partitioning bits
//!   should come from positions ≤ 24);
//! * CIDR-style allocation: long prefixes cluster inside shorter
//!   "aggregate" blocks, giving the nesting ("prefix exceptions") that
//!   §2.2 argues defeats range-merging caches;
//! * a number of /32 host routes, making the minimum range granularity 1.
//!
//! Generation is fully deterministic given a seed.

use crate::prefix::Prefix;
use crate::table::{NextHop, RouteEntry, RoutingTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Relative weight of each prefix length in the generated table, modelled
/// on published backbone-table distributions circa 2003 (refs [2], [11],
/// [15] of the paper). Index = prefix length.
const LENGTH_WEIGHTS: [f64; 33] = [
    0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, // 0-7
    0.04, 0.03, 0.05, 0.09, 0.27, 0.55, 1.1, 1.8, // 8-15
    10.5, 1.6, 3.2, 6.2, 4.6, 4.8, 6.8, 6.6,  // 16-23
    52.0, // 24
    0.30, 0.45, 0.35, 0.30, 0.40, 0.30, 0.02, 0.65, // 25-32
];

/// Length weights for the DFZ-2026 preset, modelled on the modern
/// default-free zone (CIDR-report / potaroo shape circa 2025): /24 is an
/// even larger share than in 2003 (~57 %), the /20–/23 band has grown at
/// /16's expense, and almost everything longer than /24 is filtered, save
/// a residue of host routes. Index = prefix length.
const DFZ2026_LENGTH_WEIGHTS: [f64; 33] = [
    0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, // 0-7
    0.02, 0.01, 0.04, 0.10, 0.30, 0.55, 1.0, 1.7, // 8-15
    3.7, 2.0, 3.3, 4.7, 5.4, 5.2, 8.2, 5.5,  // 16-23
    57.0, // 24
    0.20, 0.15, 0.10, 0.08, 0.10, 0.05, 0.01, 0.60, // 25-32
];

/// Configuration for the synthetic table generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of unique prefixes to produce.
    pub target: usize,
    /// RNG seed; same seed ⇒ identical table.
    pub seed: u64,
    /// Fraction of prefixes generated *inside* a previously generated
    /// shorter prefix (CIDR aggregation / more-specifics). Backbone tables
    /// show roughly half of all prefixes nested under another route.
    pub nested_fraction: f64,
    /// Number of distinct next hops to assign (the paper's routers have up
    /// to 16 LCs; real tables resolve to a few dozen peers).
    pub next_hops: u16,
    /// Per-length sampling weights; defaults to the 2003-era backbone
    /// shape, [`SynthConfig::dfz2026`] swaps in the modern one.
    pub length_weights: &'static [f64; 33],
}

impl SynthConfig {
    /// A config with the given size and seed and paper-flavoured defaults.
    pub fn sized(target: usize, seed: u64) -> Self {
        SynthConfig {
            target,
            seed,
            nested_fraction: 0.5,
            next_hops: 32,
            length_weights: &LENGTH_WEIGHTS,
        }
    }

    /// A config with the DFZ-2026 length shape and a next-hop population
    /// sized like a modern transit router's peer set.
    pub fn dfz2026(target: usize, seed: u64) -> Self {
        SynthConfig {
            next_hops: 64,
            length_weights: &DFZ2026_LENGTH_WEIGHTS,
            ..SynthConfig::sized(target, seed)
        }
    }
}

/// Sample a prefix length from the backbone distribution
/// `LENGTH_WEIGHTS` — also used by the update-stream generator so
/// churn keeps the table's length profile.
pub fn sample_length(rng: &mut StdRng) -> u8 {
    sample_length_from(&LENGTH_WEIGHTS, rng)
}

/// Sample a prefix length from an arbitrary weight table.
pub fn sample_length_from(weights: &[f64; 33], rng: &mut StdRng) -> u8 {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (len, &w) in weights.iter().enumerate() {
        if x < w {
            return len as u8;
        }
        x -= w;
    }
    24 // numerically unreachable; the dominant length is a safe fallback
}

/// Generate a synthetic routing table.
///
/// The generator works in one pass: each new prefix is either *rooted*
/// (random address in the unicast range, avoiding 0/8, 10/8, 127/8 and
/// 224/3, as real tables do) or *nested* (drawn inside a randomly chosen
/// earlier prefix that is at least 2 bits shorter). Duplicate prefixes are
/// rejected and re-drawn, so the table has exactly `cfg.target` routes.
pub fn synthesize(cfg: &SynthConfig) -> RoutingTable {
    assert!(cfg.next_hops > 0, "need at least one next hop");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut seen: HashSet<Prefix> = HashSet::with_capacity(cfg.target * 2);
    let mut entries: Vec<RouteEntry> = Vec::with_capacity(cfg.target);
    // Aggregates usable as parents of nested prefixes (length <= 22).
    let mut parents: Vec<Prefix> = Vec::new();

    // CIDR allocation blocks: real tables concentrate announcements
    // inside registry allocations rather than scattering them across the
    // whole address space (this clustering is what keeps compressed-trie
    // chunk counts low). Longer rooted prefixes are placed inside one of
    // these blocks.
    let n_blocks = (cfg.target / 64).clamp(16, 4096);
    let alloc_blocks: Vec<Prefix> = (0..n_blocks)
        .map(|_| {
            let len = rng.gen_range(8..=14);
            Prefix::new(random_unicast(&mut rng), len).expect("len <= 32")
        })
        .collect();

    while entries.len() < cfg.target {
        let len = sample_length_from(cfg.length_weights, &mut rng);
        let nested = !parents.is_empty() && len >= 10 && rng.gen_bool(cfg.nested_fraction);
        let prefix = if nested {
            let parent = parents[rng.gen_range(0..parents.len())];
            if parent.len() + 2 > len {
                continue; // parent not short enough for this length; redraw
            }
            // Random sub-block of the parent with the sampled length.
            let extra =
                rng.gen::<u32>() & !<u32 as crate::bits::AddressBits>::prefix_mask(parent.len());
            Prefix::new(parent.bits() | extra, len).expect("len <= 32")
        } else if len >= 15 {
            // Rooted but inside a CIDR allocation block.
            let block = alloc_blocks[rng.gen_range(0..alloc_blocks.len())];
            let extra =
                rng.gen::<u32>() & !<u32 as crate::bits::AddressBits>::prefix_mask(block.len());
            Prefix::new(block.bits() | extra, len).expect("len <= 32")
        } else {
            let addr = random_unicast(&mut rng);
            Prefix::new(addr, len).expect("len <= 32")
        };
        if !seen.insert(prefix) {
            continue;
        }
        if prefix.len() <= 22 {
            parents.push(prefix);
        }
        entries.push(RouteEntry {
            prefix,
            next_hop: NextHop(rng.gen_range(0..cfg.next_hops)),
        });
    }
    RoutingTable::from_entries(entries)
}

/// A random address in the globally routable unicast space: first octet in
/// 1..=223, excluding 10 (private) and 127 (loopback).
fn random_unicast(rng: &mut StdRng) -> u32 {
    loop {
        let addr: u32 = rng.gen();
        let first = (addr >> 24) as u8;
        if (1..=223).contains(&first) && first != 10 && first != 127 {
            return addr;
        }
    }
}

/// Number of prefixes in the paper's RT_1 (FUNET table, its ref 12).
pub const RT1_SIZE: usize = 41_709;
/// Number of prefixes in the paper's RT_2 (AS1221 snapshot, its ref 2).
pub const RT2_SIZE: usize = 140_838;

/// Synthetic stand-in for RT_1 (41,709 prefixes).
pub fn rt1(seed: u64) -> RoutingTable {
    synthesize(&SynthConfig::sized(RT1_SIZE, seed))
}

/// Synthetic stand-in for RT_2 (140,838 prefixes).
pub fn rt2(seed: u64) -> RoutingTable {
    synthesize(&SynthConfig::sized(RT2_SIZE, seed))
}

/// A small table (1,000 prefixes) for quick tests and examples.
pub fn small(seed: u64) -> RoutingTable {
    synthesize(&SynthConfig::sized(1_000, seed))
}

/// Number of IPv4 prefixes in the DFZ-2026 preset — a shade over a
/// million, where the real default-free zone sits in 2026.
pub const DFZ2026_V4_SIZE: usize = 1_010_000;

/// The DFZ-2026 IPv4 table: ~1.01 M prefixes with the modern /24-heavy
/// length distribution. Generation takes a couple of seconds; callers
/// that only need the shape should scale down via
/// [`SynthConfig::dfz2026`] directly.
pub fn dfz2026_v4(seed: u64) -> RoutingTable {
    synthesize(&SynthConfig::dfz2026(DFZ2026_V4_SIZE, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{nesting_stats, LengthDistribution};

    #[test]
    fn exact_size_and_unique() {
        let t = synthesize(&SynthConfig::sized(5_000, 7));
        assert_eq!(t.len(), 5_000);
        let set: HashSet<Prefix> = t.prefixes().collect();
        assert_eq!(set.len(), 5_000);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = synthesize(&SynthConfig::sized(2_000, 42));
        let b = synthesize(&SynthConfig::sized(2_000, 42));
        assert_eq!(a.entries(), b.entries());
        let c = synthesize(&SynthConfig::sized(2_000, 43));
        assert_ne!(a.entries(), c.entries());
    }

    #[test]
    fn length_distribution_matches_backbone_shape() {
        let t = synthesize(&SynthConfig::sized(20_000, 1));
        let d = LengthDistribution::of(&t);
        // /24 dominates.
        assert_eq!(d.mode(), Some(24));
        assert!(d.fraction_exact(24) > 0.40, "got {}", d.fraction_exact(24));
        // §3.1: "more than 83% … have length no more than 24".
        assert!(d.fraction_at_most(24) > 0.83);
        // A real tail of host routes exists (range granularity 1, §2.2).
        assert!(d.counts[32] > 0);
        // Nothing shorter than /8.
        assert_eq!(d.counts[..8].iter().sum::<usize>(), 0);
    }

    #[test]
    fn nesting_present() {
        let t = synthesize(&SynthConfig::sized(10_000, 2));
        let s = nesting_stats(&t);
        // More-specifics are a substantial share, as in real tables.
        assert!(
            s.nested * 4 > t.len(),
            "nested = {} of {}",
            s.nested,
            t.len()
        );
        assert!(s.max_depth >= 2);
    }

    #[test]
    fn addresses_in_unicast_space() {
        let t = synthesize(&SynthConfig::sized(3_000, 3));
        for e in &t {
            if e.prefix.len() >= 8 {
                let first = (e.prefix.bits() >> 24) as u8;
                assert!((1..=223).contains(&first), "bad first octet {first}");
                assert!(first != 127);
            }
        }
    }

    #[test]
    fn next_hops_within_range() {
        let cfg = SynthConfig {
            next_hops: 4,
            ..SynthConfig::sized(1_000, 5)
        };
        let t = synthesize(&cfg);
        assert!(t.next_hop_count() <= 4);
        for e in &t {
            assert!(e.next_hop.0 < 4);
        }
    }

    #[test]
    fn dfz2026_shape_is_modern() {
        // Full-size generation is exercised by the ignored stress tier;
        // the shape is seed- and scale-independent, so test at 30k.
        let t = synthesize(&SynthConfig::dfz2026(30_000, 4));
        let d = LengthDistribution::of(&t);
        assert_eq!(d.mode(), Some(24));
        // /24 share grew relative to the 2003 shape (~52% → ~57%).
        assert!(d.fraction_exact(24) > 0.48, "got {}", d.fraction_exact(24));
        // Still well over 83% at or below /24 (partitioning bits ≤ 24).
        assert!(d.fraction_at_most(24) > 0.90);
        // /16 no longer dominates the short band: the /20-/23 growth band
        // outweighs it.
        let short_band: usize = d.counts[20..=23].iter().sum();
        assert!(short_band > d.counts[16] * 3);
        // Host-route residue survives modern filtering.
        assert!(d.counts[32] > 0);
        let s = nesting_stats(&t);
        assert!(s.nested * 4 > t.len());
    }

    #[test]
    fn dfz2026_deterministic_and_distinct_from_legacy() {
        let a = synthesize(&SynthConfig::dfz2026(2_000, 42));
        let b = synthesize(&SynthConfig::dfz2026(2_000, 42));
        assert_eq!(a.entries(), b.entries());
        let legacy = synthesize(&SynthConfig::sized(2_000, 42));
        assert_ne!(a.entries(), legacy.entries());
    }

    #[test]
    fn rt_sizes_match_paper() {
        // Generating the full tables is cheap enough for a unit test.
        assert_eq!(rt1(0).len(), RT1_SIZE);
        assert_eq!(rt2(0).len(), RT2_SIZE);
    }
}
