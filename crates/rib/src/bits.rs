//! Bit-level address abstractions shared by IPv4 and IPv6 code paths.

use std::fmt::Debug;
use std::hash::Hash;

/// One bit position of a prefix as seen by the partitioning algorithm:
/// a concrete `0`, a concrete `1`, or `*` (the position lies beyond the
/// prefix length, so the prefix matches addresses with either value there).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriBit {
    /// The bit is a concrete `0` inside the prefix.
    Zero,
    /// The bit is a concrete `1` inside the prefix.
    One,
    /// The position is past the prefix length (don't-care).
    Wild,
}

impl TriBit {
    /// Whether this tri-state bit is compatible with a concrete bit value.
    /// `Wild` matches both values.
    #[inline]
    pub fn matches(self, bit: bool) -> bool {
        match self {
            TriBit::Zero => !bit,
            TriBit::One => bit,
            TriBit::Wild => true,
        }
    }
}

/// An unsigned integer type usable as a big-endian IP address: bit 0 is the
/// most significant bit, as in dotted-quad notation and in the paper's
/// `b0 b1 …` convention.
pub trait AddressBits: Copy + Clone + Eq + Ord + Hash + Debug + Send + Sync + 'static {
    /// Address width in bits (32 for IPv4, 128 for IPv6).
    const BITS: u8;
    /// The all-zero address.
    const ZERO: Self;

    /// Value of bit `i`, where `i = 0` is the most significant bit.
    ///
    /// # Panics
    /// Panics if `i >= Self::BITS`.
    fn bit(self, i: u8) -> bool;

    /// A mask with the top `len` bits set. `len` may be `0..=Self::BITS`.
    fn prefix_mask(len: u8) -> Self;

    /// Bitwise AND, used to canonicalise prefixes.
    fn and(self, other: Self) -> Self;

    /// Number of leading bits on which `self` and `other` agree.
    fn common_prefix_len(self, other: Self) -> u8;

    /// Extract `count` bits starting at bit `start` (MSB-first) as a `u32`.
    /// `count` must be `<= 32`.
    fn extract(self, start: u8, count: u8) -> u32;
}

impl AddressBits for u32 {
    const BITS: u8 = 32;
    const ZERO: Self = 0;

    #[inline]
    fn bit(self, i: u8) -> bool {
        assert!(i < 32, "bit index {i} out of range for u32");
        (self >> (31 - i)) & 1 == 1
    }

    #[inline]
    fn prefix_mask(len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range for u32");
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    #[inline]
    fn and(self, other: Self) -> Self {
        self & other
    }

    #[inline]
    fn common_prefix_len(self, other: Self) -> u8 {
        (self ^ other).leading_zeros() as u8
    }

    #[inline]
    fn extract(self, start: u8, count: u8) -> u32 {
        assert!(count <= 32 && start <= 32 && start + count <= 32);
        if count == 0 {
            return 0;
        }
        (self >> (32 - start - count)) & (u32::MAX >> (32 - count))
    }
}

/// A CIDR prefix of any address width, as the SPAL partitioner sees it:
/// a length plus tri-state bits. Implemented by the IPv4 [`crate::Prefix`]
/// and the IPv6 [`crate::v6::Prefix6`], which lets `spal-core`'s bit
/// selection and ROT-partitioning run unchanged on both families (§6:
/// "SPAL is feasibly applicable to IPv6").
#[allow(clippy::len_without_is_empty)] // `len` is a bit count, not a container
pub trait IpPrefix: Copy + Eq + Hash + Debug + Send + Sync + 'static {
    /// The address type this prefix matches.
    type Addr: AddressBits;

    /// Prefix length in bits.
    fn len(self) -> u8;

    /// Tri-state value of bit `i` (0 = MSB): concrete inside the prefix,
    /// `*` beyond its length.
    fn tri_bit(self, i: u8) -> TriBit;

    /// Whether `addr` lies inside this prefix.
    fn matches(self, addr: Self::Addr) -> bool;
}

impl AddressBits for u128 {
    const BITS: u8 = 128;
    const ZERO: Self = 0;

    #[inline]
    fn bit(self, i: u8) -> bool {
        assert!(i < 128, "bit index {i} out of range for u128");
        (self >> (127 - i)) & 1 == 1
    }

    #[inline]
    fn prefix_mask(len: u8) -> Self {
        assert!(len <= 128, "prefix length {len} out of range for u128");
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - len)
        }
    }

    #[inline]
    fn and(self, other: Self) -> Self {
        self & other
    }

    #[inline]
    fn common_prefix_len(self, other: Self) -> u8 {
        (self ^ other).leading_zeros() as u8
    }

    #[inline]
    fn extract(self, start: u8, count: u8) -> u32 {
        assert!(count <= 32);
        assert!(start as u16 + count as u16 <= 128);
        if count == 0 {
            return 0;
        }
        ((self >> (128 - start as u32 - count as u32)) as u32) & (u32::MAX >> (32 - count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_bit_msb_first() {
        let a: u32 = 0x8000_0001;
        assert!(a.bit(0));
        assert!(!a.bit(1));
        assert!(!a.bit(30));
        assert!(a.bit(31));
    }

    #[test]
    fn u32_prefix_mask_extremes() {
        assert_eq!(u32::prefix_mask(0), 0);
        assert_eq!(u32::prefix_mask(32), u32::MAX);
        assert_eq!(u32::prefix_mask(8), 0xFF00_0000);
        assert_eq!(u32::prefix_mask(24), 0xFFFF_FF00);
    }

    #[test]
    fn u32_common_prefix_len() {
        assert_eq!(0u32.common_prefix_len(0), 32);
        assert_eq!(0x8000_0000u32.common_prefix_len(0), 0);
        assert_eq!(0xFF00_0000u32.common_prefix_len(0xFF80_0000), 8);
    }

    #[test]
    fn u32_extract() {
        let a: u32 = 0xABCD_1234;
        assert_eq!(a.extract(0, 16), 0xABCD);
        assert_eq!(a.extract(16, 8), 0x12);
        assert_eq!(a.extract(24, 8), 0x34);
        assert_eq!(a.extract(0, 32), a);
        assert_eq!(a.extract(4, 0), 0);
    }

    #[test]
    fn u128_bit_msb_first() {
        let a: u128 = 1 << 127 | 1;
        assert!(a.bit(0));
        assert!(!a.bit(64));
        assert!(a.bit(127));
    }

    #[test]
    fn u128_prefix_mask_extremes() {
        assert_eq!(u128::prefix_mask(0), 0);
        assert_eq!(u128::prefix_mask(128), u128::MAX);
        assert_eq!(u128::prefix_mask(1), 1 << 127);
    }

    #[test]
    fn u128_extract_matches_u32_semantics() {
        let a: u128 = (0xABCD_1234u128) << 96;
        assert_eq!(a.extract(0, 16), 0xABCD);
        assert_eq!(a.extract(16, 16), 0x1234);
    }

    #[test]
    fn tribit_matching() {
        assert!(TriBit::Wild.matches(true));
        assert!(TriBit::Wild.matches(false));
        assert!(TriBit::One.matches(true));
        assert!(!TriBit::One.matches(false));
        assert!(TriBit::Zero.matches(false));
        assert!(!TriBit::Zero.matches(true));
    }

    #[test]
    #[should_panic]
    fn u32_bit_out_of_range_panics() {
        let _ = 0u32.bit(32);
    }
}
