//! In-memory routing tables and the linear reference longest-prefix match.

use crate::prefix::Prefix;
use std::collections::HashMap;
use std::fmt;

/// Identifier of the line card a matched packet must be forwarded to — the
/// `Next_hop_LC#` field the paper stores in every LR-cache block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NextHop(pub u16);

impl fmt::Display for NextHop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nh{}", self.0)
    }
}

/// One route: a prefix and the next hop it resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteEntry {
    pub prefix: Prefix,
    pub next_hop: NextHop,
}

/// A BGP-style routing table: a set of routes with unique prefixes.
///
/// `RoutingTable` is the exchange format between the synthetic generators,
/// the partitioner and the trie builders. It also provides
/// [`RoutingTable::longest_match`], a deliberately simple O(n) matcher used
/// as the correctness oracle for every trie implementation in `spal-lpm`.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    entries: Vec<RouteEntry>,
}

impl RoutingTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a list of routes. Later duplicates of the same prefix
    /// replace earlier ones (mirroring a routing update). Entries are kept
    /// sorted by (prefix bits, length) for deterministic iteration.
    pub fn from_entries(entries: impl IntoIterator<Item = RouteEntry>) -> Self {
        let mut map: HashMap<Prefix, NextHop> = HashMap::new();
        for e in entries {
            map.insert(e.prefix, e.next_hop);
        }
        let mut entries: Vec<RouteEntry> = map
            .into_iter()
            .map(|(prefix, next_hop)| RouteEntry { prefix, next_hop })
            .collect();
        entries.sort_by_key(|e| (e.prefix.bits(), e.prefix.len()));
        RoutingTable { entries }
    }

    /// Insert or replace a route. O(n) — tables are built in bulk via
    /// [`RoutingTable::from_entries`]; this exists for incremental-update
    /// tests and the update-flush experiments.
    pub fn insert(&mut self, entry: RouteEntry) {
        match self
            .entries
            .binary_search_by_key(&(entry.prefix.bits(), entry.prefix.len()), |e| {
                (e.prefix.bits(), e.prefix.len())
            }) {
            Ok(i) => self.entries[i] = entry,
            Err(i) => self.entries.insert(i, entry),
        }
    }

    /// Remove the route for `prefix`, returning it if present.
    pub fn remove(&mut self, prefix: Prefix) -> Option<RouteEntry> {
        match self
            .entries
            .binary_search_by_key(&(prefix.bits(), prefix.len()), |e| {
                (e.prefix.bits(), e.prefix.len())
            }) {
            Ok(i) => Some(self.entries.remove(i)),
            Err(_) => None,
        }
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The routes, sorted by (bits, length).
    pub fn entries(&self) -> &[RouteEntry] {
        &self.entries
    }

    /// Just the prefixes, in entry order.
    pub fn prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.entries.iter().map(|e| e.prefix)
    }

    /// The next hop stored for exactly `prefix`, if present. O(log n).
    pub fn get(&self, prefix: Prefix) -> Option<NextHop> {
        self.entries
            .binary_search_by_key(&(prefix.bits(), prefix.len()), |e| {
                (e.prefix.bits(), e.prefix.len())
            })
            .ok()
            .map(|i| self.entries[i].next_hop)
    }

    /// All routes whose canonical bits fall inside `[lo, hi]`, as a
    /// contiguous sorted slice. O(log n) to locate. For a prefix-aligned
    /// query range this is every route *contained* in the range plus, when
    /// a shorter route starts exactly at `lo`, routes containing it —
    /// aligned ranges cannot partially overlap, so callers filter by
    /// length.
    pub fn range(&self, lo: u32, hi: u32) -> &[RouteEntry] {
        let start = self.entries.partition_point(|e| e.prefix.bits() < lo);
        let end = self.entries.partition_point(|e| e.prefix.bits() <= hi);
        &self.entries[start..end]
    }

    /// Longest match for `addr` among routes no longer than `max_len`
    /// bits. O(max_len · log n) — walks candidate prefix lengths from
    /// most to least specific. Used by the incremental patch paths to
    /// recompute the "default" value a region inherits from above.
    pub fn best_cover(&self, addr: u32, max_len: u8) -> Option<RouteEntry> {
        for len in (0..=max_len).rev() {
            let p = Prefix::new(addr, len).expect("masked prefix is valid");
            if let Some(nh) = self.get(p) {
                return Some(RouteEntry {
                    prefix: p,
                    next_hop: nh,
                });
            }
        }
        None
    }

    /// Whether any route strictly contained in `prefix` (longer, inside
    /// its range) exists, other than routes in `except`. Used by the
    /// LC-trie patch path to detect leaf↔internal classification flips.
    pub fn has_strict_descendant_except(&self, prefix: Prefix, except: &[Prefix]) -> bool {
        self.range(prefix.first_addr(), prefix.last_addr())
            .iter()
            .any(|e| {
                e.prefix.len() > prefix.len()
                    && prefix.contains(e.prefix)
                    && !except.contains(&e.prefix)
            })
    }

    /// Reference longest-prefix match: scans every route. O(n) per lookup,
    /// used as the oracle the trie implementations are tested against.
    pub fn longest_match(&self, addr: u32) -> Option<RouteEntry> {
        self.entries
            .iter()
            .filter(|e| e.prefix.matches(addr))
            .max_by_key(|e| e.prefix.len())
            .copied()
    }

    /// Whether any route matches `addr`.
    pub fn covers(&self, addr: u32) -> bool {
        self.entries.iter().any(|e| e.prefix.matches(addr))
    }

    /// The largest next-hop index present, plus one (i.e. the size a
    /// next-hop table must have). Zero for an empty table.
    pub fn next_hop_count(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.next_hop.0 as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

impl FromIterator<RouteEntry> for RoutingTable {
    fn from_iter<T: IntoIterator<Item = RouteEntry>>(iter: T) -> Self {
        RoutingTable::from_entries(iter)
    }
}

impl<'a> IntoIterator for &'a RoutingTable {
    type Item = &'a RouteEntry;
    type IntoIter = std::slice::Iter<'a, RouteEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(s: &str, nh: u16) -> RouteEntry {
        RouteEntry {
            prefix: s.parse().unwrap(),
            next_hop: NextHop(nh),
        }
    }

    #[test]
    fn from_entries_dedups_keeping_last() {
        let t = RoutingTable::from_entries([route("10.0.0.0/8", 1), route("10.0.0.0/8", 2)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].next_hop, NextHop(2));
    }

    #[test]
    fn longest_match_picks_most_specific() {
        let t = RoutingTable::from_entries([
            route("0.0.0.0/0", 0),
            route("10.0.0.0/8", 1),
            route("10.1.0.0/16", 2),
            route("10.1.2.0/24", 3),
        ]);
        assert_eq!(t.longest_match(0x0A01_0203).unwrap().next_hop, NextHop(3)); // 10.1.2.3
        assert_eq!(t.longest_match(0x0A01_0303).unwrap().next_hop, NextHop(2)); // 10.1.3.3
        assert_eq!(t.longest_match(0x0A02_0000).unwrap().next_hop, NextHop(1)); // 10.2.0.0
        assert_eq!(t.longest_match(0x0B00_0000).unwrap().next_hop, NextHop(0)); // 11.0.0.0
    }

    #[test]
    fn longest_match_none_without_default() {
        let t = RoutingTable::from_entries([route("10.0.0.0/8", 1)]);
        assert!(t.longest_match(0x0B00_0000).is_none());
        assert!(!t.covers(0x0B00_0000));
        assert!(t.covers(0x0A00_0000));
    }

    #[test]
    fn insert_and_remove_keep_sorted_unique() {
        let mut t = RoutingTable::new();
        t.insert(route("10.0.0.0/8", 1));
        t.insert(route("9.0.0.0/8", 2));
        t.insert(route("10.0.0.0/8", 3)); // replace
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries()[0].prefix.to_string(), "9.0.0.0/8");
        assert_eq!(t.longest_match(0x0A000000).unwrap().next_hop, NextHop(3));
        let removed = t.remove("9.0.0.0/8".parse().unwrap()).unwrap();
        assert_eq!(removed.next_hop, NextHop(2));
        assert_eq!(t.len(), 1);
        assert!(t.remove("9.0.0.0/8".parse().unwrap()).is_none());
    }

    #[test]
    fn next_hop_count() {
        assert_eq!(RoutingTable::new().next_hop_count(), 0);
        let t = RoutingTable::from_entries([route("10.0.0.0/8", 7), route("11.0.0.0/8", 3)]);
        assert_eq!(t.next_hop_count(), 8);
    }

    #[test]
    fn same_bits_different_len_are_distinct_routes() {
        let t = RoutingTable::from_entries([route("10.0.0.0/8", 1), route("10.0.0.0/16", 2)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.longest_match(0x0A00_0001).unwrap().next_hop, NextHop(2));
        assert_eq!(t.longest_match(0x0A01_0001).unwrap().next_hop, NextHop(1));
    }
}
