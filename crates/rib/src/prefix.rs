//! IPv4 CIDR prefixes with the tri-state bit view the SPAL partitioner uses.

use crate::bits::{AddressBits, TriBit};
use std::fmt;
use std::str::FromStr;

/// Errors produced when constructing or parsing a [`Prefix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// The prefix length exceeds 32.
    LengthOutOfRange(u8),
    /// Bits below the prefix length are set (`bits & !mask != 0`).
    NonCanonicalBits { bits: u32, len: u8 },
    /// A textual prefix could not be parsed.
    Parse(String),
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::LengthOutOfRange(len) => {
                write!(f, "prefix length {len} out of range (0..=32)")
            }
            PrefixError::NonCanonicalBits { bits, len } => write!(
                f,
                "prefix bits {bits:#010x} have set bits beyond length {len}"
            ),
            PrefixError::Parse(s) => write!(f, "cannot parse prefix from {s:?}"),
        }
    }
}

impl std::error::Error for PrefixError {}

/// An IPv4 prefix: the top `len` bits of `bits` are significant, the rest
/// are zero (canonical form). Bit 0 is the most significant bit, matching
/// the paper's `b0 b1 …` numbering.
///
/// ```
/// use spal_rib::Prefix;
/// let p: Prefix = "192.168.0.0/16".parse().unwrap();
/// assert_eq!(p.len(), 16);
/// assert!(p.matches(0xC0A8_1234)); // 192.168.18.52
/// assert!(!p.matches(0xC0A9_0000)); // 192.169.0.0
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    bits: u32,
    len: u8,
}

// `len` is a bit count, not a container length; `is_empty` is meaningless.
#[allow(clippy::len_without_is_empty)]
impl Prefix {
    /// The zero-length default prefix `0.0.0.0/0`, matching every address.
    pub const DEFAULT: Prefix = Prefix { bits: 0, len: 0 };

    /// Construct a prefix, canonicalising `bits` by masking off everything
    /// beyond `len`. Returns an error only if `len > 32`.
    pub fn new(bits: u32, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::LengthOutOfRange(len));
        }
        Ok(Prefix {
            bits: bits & u32::prefix_mask(len),
            len,
        })
    }

    /// Construct a prefix, requiring `bits` to already be canonical
    /// (no set bits beyond `len`).
    pub fn new_strict(bits: u32, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::LengthOutOfRange(len));
        }
        if bits & !u32::prefix_mask(len) != 0 {
            return Err(PrefixError::NonCanonicalBits { bits, len });
        }
        Ok(Prefix { bits, len })
    }

    /// The canonical prefix bits (MSB-aligned, zero beyond `len`).
    #[inline]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The prefix length in bits.
    #[inline]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default route.
    #[inline]
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// Whether `addr` lies inside this prefix.
    #[inline]
    pub fn matches(self, addr: u32) -> bool {
        addr & u32::prefix_mask(self.len) == self.bits
    }

    /// Tri-state value of bit `i` (the paper's `bν`): a concrete bit when
    /// `i < len`, `*` otherwise.
    ///
    /// # Panics
    /// Panics if `i >= 32`.
    #[inline]
    pub fn tri_bit(self, i: u8) -> TriBit {
        assert!(i < 32, "bit index {i} out of range");
        if i >= self.len {
            TriBit::Wild
        } else if self.bits.bit(i) {
            TriBit::One
        } else {
            TriBit::Zero
        }
    }

    /// Whether this prefix contains `other` (i.e. `other` is equally or
    /// more specific and lies inside `self`). Every prefix contains itself.
    #[inline]
    pub fn contains(self, other: Prefix) -> bool {
        self.len <= other.len && other.bits & u32::prefix_mask(self.len) == self.bits
    }

    /// First address covered by the prefix.
    #[inline]
    pub fn first_addr(self) -> u32 {
        self.bits
    }

    /// Last address covered by the prefix.
    #[inline]
    pub fn last_addr(self) -> u32 {
        self.bits | !u32::prefix_mask(self.len)
    }

    /// Number of addresses covered, saturating at `u64` range (the /0
    /// prefix covers 2^32 addresses, which still fits in a `u64`).
    #[inline]
    pub fn size(self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// The two children one bit longer than `self`, or `None` for /32s.
    pub fn children(self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let left = Prefix {
            bits: self.bits,
            len: self.len + 1,
        };
        let right = Prefix {
            bits: self.bits | (1u32 << (31 - self.len)),
            len: self.len + 1,
        };
        Some((left, right))
    }

    /// The parent prefix one bit shorter, or `None` for the default route.
    pub fn parent(self) -> Option<Prefix> {
        if self.len == 0 {
            return None;
        }
        let len = self.len - 1;
        Some(Prefix {
            bits: self.bits & u32::prefix_mask(len),
            len,
        })
    }
}

impl crate::bits::IpPrefix for Prefix {
    type Addr = u32;

    #[inline]
    fn len(self) -> u8 {
        Prefix::len(self)
    }

    #[inline]
    fn tri_bit(self, i: u8) -> TriBit {
        Prefix::tri_bit(self, i)
    }

    #[inline]
    fn matches(self, addr: u32) -> bool {
        Prefix::matches(self, addr)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.bits.to_be_bytes();
        write!(f, "{}.{}.{}.{}/{}", b[0], b[1], b[2], b[3], self.len)
    }
}

impl FromStr for Prefix {
    type Err = PrefixError;

    /// Parse `a.b.c.d/len` notation. The address part is canonicalised.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || PrefixError::Parse(s.to_string());
        let (addr_part, len_part) = s.split_once('/').ok_or_else(err)?;
        let len: u8 = len_part.trim().parse().map_err(|_| err())?;
        let mut octets = [0u8; 4];
        let mut n = 0;
        for part in addr_part.trim().split('.') {
            if n >= 4 {
                return Err(err());
            }
            octets[n] = part.parse().map_err(|_| err())?;
            n += 1;
        }
        if n != 4 {
            return Err(err());
        }
        Prefix::new(u32::from_be_bytes(octets), len)
    }
}

/// Format a raw IPv4 address as dotted-quad text (no prefix length).
pub fn format_addr(addr: u32) -> String {
    let b = addr.to_be_bytes();
    format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_canonicalises() {
        let p = Prefix::new(0xC0A8_FFFF, 16).unwrap();
        assert_eq!(p.bits(), 0xC0A8_0000);
        assert_eq!(p.len(), 16);
    }

    #[test]
    fn strict_rejects_noncanonical() {
        assert!(Prefix::new_strict(0xC0A8_0001, 16).is_err());
        assert!(Prefix::new_strict(0xC0A8_0000, 16).is_ok());
    }

    #[test]
    fn length_out_of_range() {
        assert_eq!(
            Prefix::new(0, 33).unwrap_err(),
            PrefixError::LengthOutOfRange(33)
        );
    }

    #[test]
    fn matches_boundaries() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(p.matches(0x0A00_0000));
        assert!(p.matches(0x0AFF_FFFF));
        assert!(!p.matches(0x0B00_0000));
        assert!(!p.matches(0x09FF_FFFF));
    }

    #[test]
    fn default_matches_everything() {
        assert!(Prefix::DEFAULT.matches(0));
        assert!(Prefix::DEFAULT.matches(u32::MAX));
        assert_eq!(Prefix::DEFAULT.size(), 1u64 << 32);
    }

    #[test]
    fn tri_bit_view() {
        // 101* in the paper's 8-bit example corresponds to a /3 here.
        let p = Prefix::new(0b1010_0000 << 24, 3).unwrap();
        assert_eq!(p.tri_bit(0), TriBit::One);
        assert_eq!(p.tri_bit(1), TriBit::Zero);
        assert_eq!(p.tri_bit(2), TriBit::One);
        assert_eq!(p.tri_bit(3), TriBit::Wild);
        assert_eq!(p.tri_bit(31), TriBit::Wild);
    }

    #[test]
    fn containment() {
        let a: Prefix = "10.0.0.0/8".parse().unwrap();
        let b: Prefix = "10.1.0.0/16".parse().unwrap();
        let c: Prefix = "11.0.0.0/8".parse().unwrap();
        assert!(a.contains(b));
        assert!(!b.contains(a));
        assert!(a.contains(a));
        assert!(!a.contains(c));
        assert!(Prefix::DEFAULT.contains(a));
    }

    #[test]
    fn children_and_parent_roundtrip() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let (l, r) = p.children().unwrap();
        assert_eq!(l.to_string(), "10.0.0.0/9");
        assert_eq!(r.to_string(), "10.128.0.0/9");
        assert_eq!(l.parent().unwrap(), p);
        assert_eq!(r.parent().unwrap(), p);
        let host: Prefix = "1.2.3.4/32".parse().unwrap();
        assert!(host.children().is_none());
        assert!(Prefix::DEFAULT.parent().is_none());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32"] {
            let p: Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "1.2.3.4",
            "1.2.3/8",
            "1.2.3.4.5/8",
            "a.b.c.d/8",
            "1.2.3.4/33",
            "1.2.3.4/x",
        ] {
            assert!(s.parse::<Prefix>().is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn first_last_addr() {
        let p: Prefix = "192.168.1.0/24".parse().unwrap();
        assert_eq!(p.first_addr(), 0xC0A8_0100);
        assert_eq!(p.last_addr(), 0xC0A8_01FF);
        assert_eq!(p.size(), 256);
    }
}
