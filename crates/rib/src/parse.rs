//! Plain-text routing-table serialisation.
//!
//! The format is one route per line: `PREFIX NEXT_HOP`, e.g.
//! `10.0.0.0/8 3`. Blank lines and lines starting with `#` are ignored.
//! This mirrors the simple dump formats BGP snapshot archives used, so real
//! table files can be dropped in for the synthetic ones.

use crate::prefix::{Prefix, PrefixError};
use crate::table::{NextHop, RouteEntry, RoutingTable};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

/// An error while reading a table dump.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line; carries the 1-based line number and the problem.
    Line { number: usize, message: String },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Line { number, message } => {
                write!(f, "line {number}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

impl From<PrefixError> for String {
    fn from(e: PrefixError) -> Self {
        e.to_string()
    }
}

/// Parse one `PREFIX NEXT_HOP` line (already trimmed, non-empty,
/// non-comment).
fn parse_line(line: &str) -> Result<RouteEntry, String> {
    let mut parts = line.split_whitespace();
    let prefix_str = parts.next().ok_or("missing prefix")?;
    let nh_str = parts.next().ok_or("missing next hop")?;
    if parts.next().is_some() {
        return Err("trailing tokens".to_string());
    }
    let prefix: Prefix = prefix_str.parse().map_err(|e: PrefixError| e.to_string())?;
    let nh: u16 = nh_str
        .parse()
        .map_err(|_| format!("bad next hop {nh_str:?}"))?;
    Ok(RouteEntry {
        prefix,
        next_hop: NextHop(nh),
    })
}

/// Read a routing table from any reader in the text format above.
pub fn read_table<R: Read>(reader: R) -> Result<RoutingTable, ParseError> {
    let reader = BufReader::new(reader);
    let mut entries = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let entry = parse_line(line).map_err(|message| ParseError::Line {
            number: idx + 1,
            message,
        })?;
        entries.push(entry);
    }
    Ok(RoutingTable::from_entries(entries))
}

/// Parse a routing table from an in-memory string.
pub fn parse_table(text: &str) -> Result<RoutingTable, ParseError> {
    read_table(text.as_bytes())
}

/// Write a routing table in the text format above.
pub fn write_table<W: Write>(table: &RoutingTable, mut writer: W) -> std::io::Result<()> {
    let mut buf = String::new();
    for entry in table {
        buf.clear();
        let _ = writeln!(buf, "{} {}", entry.prefix, entry.next_hop.0);
        writer.write_all(buf.as_bytes())?;
    }
    Ok(())
}

/// Serialise a routing table to a string.
pub fn table_to_string(table: &RoutingTable) -> String {
    let mut out = Vec::new();
    write_table(table, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let text = "10.0.0.0/8 1\n192.168.0.0/16 2\n0.0.0.0/0 0\n";
        let table = parse_table(text).unwrap();
        assert_eq!(table.len(), 3);
        let again = parse_table(&table_to_string(&table)).unwrap();
        assert_eq!(table.entries(), again.entries());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n  \n10.0.0.0/8 1\n# tail\n";
        let table = parse_table(text).unwrap();
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn bad_lines_reported_with_number() {
        let text = "10.0.0.0/8 1\nnot-a-route\n";
        match parse_table(text).unwrap_err() {
            ParseError::Line { number, .. } => assert_eq!(number, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_trailing_tokens_and_bad_next_hop() {
        assert!(parse_table("10.0.0.0/8 1 extra").is_err());
        assert!(parse_table("10.0.0.0/8 hop").is_err());
        assert!(parse_table("10.0.0.0/99 1").is_err());
    }
}
