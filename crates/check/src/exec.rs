//! The execution engine behind the checker: one *execution* = one run of
//! the harness closure under one schedule.
//!
//! Model threads are real OS threads, but a Mutex/Condvar token ensures
//! exactly one executes at any instant. Every instrumented operation
//! (shim atomics, `checkpoint`, spawn, spin) first calls
//! [`Exec::yield_point`], where the active [`Strategy`] picks which
//! thread runs next. Re-executing the closure once per schedule with a
//! different strategy state enumerates interleavings (the CHESS
//! stateless-model-checking approach).
//!
//! The engine also maintains the happens-before relation: each thread
//! owns a [`VClock`]; release stores publish the storing thread's clock
//! into the atomic, acquire loads join it back, and [`CheckCell`]
//! accesses are checked against those clocks — an access racing with a
//! prior one that is not ordered before it is reported as a data race.
//! Because the race check is clock-based, a missing `Release`/`Acquire`
//! edge is caught even though each explored schedule is sequentially
//! consistent.
//!
//! [`CheckCell`]: crate::sync::CheckCell

use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

use crate::clock::VClock;
use crate::strategy::{Strategy, Tid};

/// Panic payload used to unwind model threads when an execution aborts
/// (failure found, or exploration cut short). Never reported as a panic.
pub(crate) struct ExecAbort;

/// How a thread yields at a schedule point.
pub(crate) enum Park {
    /// Plain yield: the thread stays runnable.
    None,
    /// Spin parking: the thread is not runnable again until at least one
    /// other scheduling decision has happened — this is what bounds
    /// busy-wait loops (epoch grace-period spins) so exhaustive search
    /// terminates: a spinning thread cannot be rescheduled until the
    /// thread it waits on had a chance to make progress.
    #[cfg_attr(not(spal_check), allow(dead_code))] // built by the instrumented shim only
    Spin,
    /// Blocked until the target thread finishes.
    Join(Tid),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    SpinParked { since: u64 },
    JoinParked { target: Tid },
    Finished,
}

#[derive(Debug)]
pub(crate) struct Failure {
    pub message: String,
    pub token: String,
}

#[derive(Default)]
struct CellMeta {
    writes: VClock,
    reads: VClock,
}

struct ExecState {
    strategy: Option<Box<dyn Strategy>>,
    threads: Vec<Status>,
    clocks: Vec<VClock>,
    active: Tid,
    /// Number of scheduling decisions taken so far.
    sched_count: u64,
    /// Yield points visited (run-length guard against livelock).
    steps: u64,
    max_steps: u64,
    failure: Option<Failure>,
    aborting: bool,
    /// Per-atomic release clock, keyed by the atomic's address.
    atomics: HashMap<usize, VClock>,
    /// Per-cell access clocks for race detection, keyed by address.
    cells: HashMap<usize, CellMeta>,
    bugs: Arc<HashSet<String>>,
}

pub(crate) struct Exec {
    state: Mutex<ExecState>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Exec>, Tid)>> = const { RefCell::new(None) };
}

/// The execution this OS thread belongs to, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Exec>, Tid)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(v: Option<(Arc<Exec>, Tid)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

#[cfg_attr(not(spal_check), allow(dead_code))]
fn acquires(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

#[cfg_attr(not(spal_check), allow(dead_code))]
fn releases(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn enabled(st: &ExecState) -> Vec<Tid> {
    let mut out = Vec::new();
    for t in 0..st.threads.len() {
        let ok = match st.threads[t] {
            Status::Runnable => true,
            Status::SpinParked { since } => since < st.sched_count,
            Status::JoinParked { target } => matches!(st.threads[target], Status::Finished),
            Status::Finished => false,
        };
        if ok {
            out.push(t);
        }
    }
    out
}

impl Exec {
    pub(crate) fn new(
        strategy: Box<dyn Strategy>,
        max_steps: u64,
        bugs: Arc<HashSet<String>>,
    ) -> Arc<Exec> {
        Arc::new(Exec {
            state: Mutex::new(ExecState {
                strategy: Some(strategy),
                threads: Vec::new(),
                clocks: Vec::new(),
                active: 0,
                sched_count: 0,
                steps: 0,
                max_steps,
                failure: None,
                aborting: false,
                atomics: HashMap::new(),
                cells: HashMap::new(),
                bugs,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        })
    }

    /// Register a model thread; `parent` is `None` only for the root.
    /// The child inherits the parent's clock (the spawn edge).
    pub(crate) fn register_thread(&self, parent: Option<Tid>) -> Tid {
        let mut st = self.state.lock().unwrap();
        let tid = st.threads.len();
        st.threads.push(Status::Runnable);
        let mut clock = match parent {
            Some(p) => st.clocks[p].clone(),
            None => VClock::new(),
        };
        clock.bump(tid);
        st.clocks.push(clock);
        if parent.is_none() {
            st.active = tid;
        }
        tid
    }

    pub(crate) fn add_handle(&self, h: std::thread::JoinHandle<()>) {
        self.handles.lock().unwrap().push(h);
    }

    /// Block a freshly spawned OS thread until the scheduler first picks
    /// it. Returns `false` if the execution aborted before that.
    pub(crate) fn wait_first(&self, me: Tid) -> bool {
        let mut st = self.state.lock().unwrap();
        while st.active != me && !st.aborting {
            st = self.cv.wait(st).unwrap();
        }
        !st.aborting
    }

    /// Record a failure (first one wins), wake everyone, start aborting.
    fn fail(&self, st: &mut ExecState, message: String) {
        if st.failure.is_none() {
            let token = st.strategy.as_ref().map(|s| s.token()).unwrap_or_default();
            st.failure = Some(Failure { message, token });
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// The heart of the engine: a schedule point. Parks the caller per
    /// `park`, lets the strategy choose the next thread, and blocks the
    /// caller until it is scheduled again.
    pub(crate) fn yield_point(&self, me: Tid, park: Park) {
        let mut st = self.state.lock().unwrap();
        if st.aborting {
            drop(st);
            std::panic::panic_any(ExecAbort);
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let msg = format!(
                "run exceeded {} scheduler steps — livelock or runaway loop",
                st.max_steps
            );
            self.fail(&mut st, msg);
            drop(st);
            std::panic::panic_any(ExecAbort);
        }
        match park {
            Park::None => st.threads[me] = Status::Runnable,
            Park::Spin => {
                st.threads[me] = Status::SpinParked {
                    since: st.sched_count,
                }
            }
            Park::Join(t) => {
                if !matches!(st.threads[t], Status::Finished) {
                    st.threads[me] = Status::JoinParked { target: t };
                }
            }
        }
        let en = enabled(&st);
        if en.is_empty() {
            self.fail(&mut st, "deadlock: no runnable model thread".to_string());
            drop(st);
            std::panic::panic_any(ExecAbort);
        }
        let cur_enabled = en.contains(&me);
        let next = st
            .strategy
            .as_mut()
            .expect("strategy present during run")
            .choose(&en, me, cur_enabled);
        st.sched_count += 1;
        st.threads[next] = Status::Runnable;
        st.active = next;
        if next != me {
            self.cv.notify_all();
            while st.active != me && !st.aborting {
                st = self.cv.wait(st).unwrap();
            }
            if st.aborting {
                drop(st);
                std::panic::panic_any(ExecAbort);
            }
        }
    }

    /// Called by the model-thread wrapper when the closure returns or
    /// unwinds. Hands the token to the next enabled thread, if any.
    pub(crate) fn thread_exit(&self, me: Tid, payload: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().unwrap();
        st.threads[me] = Status::Finished;
        if let Some(p) = payload {
            if p.downcast_ref::<ExecAbort>().is_none() {
                // `&*p` reaches the payload inside the box; a plain `&p`
                // would unsize the Box itself into the trait object and
                // every downcast would miss.
                let msg = panic_message(&*p);
                self.fail(&mut st, format!("thread {me} panicked: {msg}"));
            }
        }
        if st.aborting {
            self.cv.notify_all();
            return;
        }
        let en = enabled(&st);
        if en.is_empty() {
            if st.threads.iter().any(|t| !matches!(t, Status::Finished)) {
                self.fail(
                    &mut st,
                    "deadlock: all remaining threads are blocked".to_string(),
                );
            }
            self.cv.notify_all();
            return;
        }
        let next = st
            .strategy
            .as_mut()
            .expect("strategy present during run")
            .choose(&en, me, false);
        st.sched_count += 1;
        st.threads[next] = Status::Runnable;
        st.active = next;
        self.cv.notify_all();
    }

    /// Join edge: the joiner inherits everything the joined thread did.
    pub(crate) fn join_clock(&self, me: Tid, target: Tid) {
        let mut st = self.state.lock().unwrap();
        let t = st.clocks[target].clone();
        st.clocks[me].join(&t);
    }

    #[cfg_attr(not(spal_check), allow(dead_code))]
    pub(crate) fn bug_enabled(&self, name: &str) -> bool {
        self.state.lock().unwrap().bugs.contains(name)
    }

    // -- happens-before bookkeeping (called after the real operation,
    //    while the caller still holds the scheduling token) -------------

    #[cfg_attr(not(spal_check), allow(dead_code))]
    pub(crate) fn atomic_load(&self, me: Tid, addr: usize, ord: Ordering) {
        let mut st = self.state.lock().unwrap();
        st.clocks[me].bump(me);
        if acquires(ord) {
            if let Some(sync) = st.atomics.get(&addr) {
                let sync = sync.clone();
                st.clocks[me].join(&sync);
            }
        }
    }

    #[cfg_attr(not(spal_check), allow(dead_code))]
    pub(crate) fn atomic_store(&self, me: Tid, addr: usize, ord: Ordering) {
        let mut st = self.state.lock().unwrap();
        st.clocks[me].bump(me);
        let clock = st.clocks[me].clone();
        let entry = st.atomics.entry(addr).or_default();
        if releases(ord) {
            *entry = clock;
        } else {
            // A relaxed store does not release: later acquire loads of
            // this value learn nothing. Erasing the clock is what lets
            // the cell-race detector catch a dropped Release fence.
            *entry = VClock::new();
        }
    }

    #[cfg_attr(not(spal_check), allow(dead_code))]
    pub(crate) fn atomic_rmw(&self, me: Tid, addr: usize, ord: Ordering) {
        let mut st = self.state.lock().unwrap();
        st.clocks[me].bump(me);
        if acquires(ord) {
            if let Some(sync) = st.atomics.get(&addr) {
                let sync = sync.clone();
                st.clocks[me].join(&sync);
            }
        }
        if releases(ord) {
            let clock = st.clocks[me].clone();
            st.atomics.entry(addr).or_default().join(&clock);
        }
        // A relaxed RMW neither acquires nor releases but does preserve
        // the release sequence, so the stored clock is left untouched.
    }

    /// Race-check a plain-memory (CheckCell) access.
    #[cfg_attr(not(spal_check), allow(dead_code))]
    pub(crate) fn cell_access(&self, me: Tid, addr: usize, is_write: bool) {
        let mut st = self.state.lock().unwrap();
        let ExecState { clocks, cells, .. } = &mut *st;
        let clock = &clocks[me];
        let meta = cells.entry(addr).or_default();
        let racy = if is_write {
            !meta.writes.dominated_by(clock) || !meta.reads.dominated_by(clock)
        } else {
            !meta.writes.dominated_by(clock)
        };
        if racy {
            let kind = if is_write { "write" } else { "read" };
            let msg = format!(
                "data race: {kind} of unsynchronized memory not ordered after a \
                 prior conflicting access (missing release/acquire edge?)"
            );
            self.fail(&mut st, msg);
            drop(st);
            std::panic::panic_any(ExecAbort);
        }
        let own = clock.get(me);
        if is_write {
            meta.writes.set(me, own);
        } else {
            meta.reads.set(me, own);
        }
    }

    // -- run orchestration (called from the checker thread) -------------

    /// Spawn the root model thread running `f`.
    pub(crate) fn start_root(self: &Arc<Self>, f: Arc<dyn Fn() + Send + Sync>) {
        let tid = self.register_thread(None);
        let exec = Arc::clone(self);
        let h = std::thread::Builder::new()
            .name(format!("model-{tid}"))
            .spawn(move || {
                set_current(Some((Arc::clone(&exec), tid)));
                let payload = if exec.wait_first(tid) {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f())).err()
                } else {
                    None
                };
                exec.thread_exit(tid, payload);
            })
            .expect("spawn root model thread");
        self.add_handle(h);
    }

    /// Wait for every OS thread of this execution to exit. Joined in
    /// waves because model threads may spawn further threads (their
    /// handles are always registered before the spawning thread exits).
    pub(crate) fn join_all(&self) {
        loop {
            let wave: Vec<_> = std::mem::take(&mut *self.handles.lock().unwrap());
            if wave.is_empty() {
                break;
            }
            for h in wave {
                // Wrapper threads catch everything; nothing to propagate.
                let _ = h.join();
            }
        }
    }

    /// Tear down after `join_all`: hand the strategy back along with the
    /// run's failure, if any.
    pub(crate) fn finish(&self) -> (Box<dyn Strategy>, Option<Failure>) {
        let mut st = self.state.lock().unwrap();
        let strategy = st.strategy.take().expect("finish called once");
        let failure = st.failure.take();
        (strategy, failure)
    }
}
