//! The sync shim: drop-in atomics and yield hooks for code that wants to
//! be model-checkable.
//!
//! In a normal build (`--cfg spal_check` absent) every type here is the
//! `std::sync::atomic` original or a `#[repr(transparent)]` zero-cost
//! wrapper, so production code pays nothing. Under
//! `RUSTFLAGS="--cfg spal_check"` the same names resolve to instrumented
//! versions: each operation is a scheduler yield point, release stores
//! publish the thread's vector clock, acquire loads join it, and
//! [`CheckCell`] accesses are race-checked against those clocks.
//!
//! Outside a [`Checker`](crate::Checker) run (no execution bound to the
//! current OS thread) the instrumented versions fall back to the plain
//! behavior, so an `spal_check` build still runs ordinary tests.

pub use std::sync::atomic::Ordering;

// ---------------------------------------------------------------------
// Plain build: straight re-exports / transparent wrappers.
// ---------------------------------------------------------------------

#[cfg(not(spal_check))]
pub use std::sync::atomic::{AtomicU64, AtomicUsize};

#[cfg(not(spal_check))]
pub use std::sync::atomic::AtomicPtr;

/// Busy-wait hint. Under the checker this parks the spinning thread
/// until another thread has been scheduled, which is what keeps
/// spin loops finite during exhaustive exploration.
#[cfg(not(spal_check))]
#[inline(always)]
pub fn spin_loop() {
    std::hint::spin_loop();
}

/// Cooperative yield; same model semantics as [`spin_loop`].
#[cfg(not(spal_check))]
#[inline(always)]
pub fn yield_now() {
    std::thread::yield_now();
}

// ---------------------------------------------------------------------
// Instrumented build.
// ---------------------------------------------------------------------

#[cfg(spal_check)]
mod instrumented {
    use super::Ordering;
    use crate::exec::{self, Park};

    macro_rules! int_atomic {
        ($name:ident, $std:path, $prim:ty) => {
            /// Instrumented integer atomic. Storage is a real atomic
            /// accessed with `SeqCst` while under the checker (the
            /// scheduler serializes model threads, so values are exact);
            /// the *declared* ordering feeds the happens-before
            /// bookkeeping instead.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                pub const fn new(v: $prim) -> Self {
                    Self {
                        inner: <$std>::new(v),
                    }
                }

                #[inline]
                fn addr(&self) -> usize {
                    self as *const _ as usize
                }

                pub fn load(&self, ord: Ordering) -> $prim {
                    match exec::current() {
                        Some((e, me)) => {
                            e.yield_point(me, Park::None);
                            let v = self.inner.load(Ordering::SeqCst);
                            e.atomic_load(me, self.addr(), ord);
                            v
                        }
                        None => self.inner.load(ord),
                    }
                }

                pub fn store(&self, v: $prim, ord: Ordering) {
                    match exec::current() {
                        Some((e, me)) => {
                            e.yield_point(me, Park::None);
                            self.inner.store(v, Ordering::SeqCst);
                            e.atomic_store(me, self.addr(), ord);
                        }
                        None => self.inner.store(v, ord),
                    }
                }

                pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                    match exec::current() {
                        Some((e, me)) => {
                            e.yield_point(me, Park::None);
                            let old = self.inner.swap(v, Ordering::SeqCst);
                            e.atomic_rmw(me, self.addr(), ord);
                            old
                        }
                        None => self.inner.swap(v, ord),
                    }
                }

                pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                    match exec::current() {
                        Some((e, me)) => {
                            e.yield_point(me, Park::None);
                            let old = self.inner.fetch_add(v, Ordering::SeqCst);
                            e.atomic_rmw(me, self.addr(), ord);
                            old
                        }
                        None => self.inner.fetch_add(v, ord),
                    }
                }

                pub fn get_mut(&mut self) -> &mut $prim {
                    self.inner.get_mut()
                }

                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }
            }
        };
    }

    int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);

    /// Instrumented pointer atomic (see the integer variants above).
    #[derive(Debug)]
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> AtomicPtr<T> {
        pub const fn new(p: *mut T) -> Self {
            Self {
                inner: std::sync::atomic::AtomicPtr::new(p),
            }
        }

        #[inline]
        fn addr(&self) -> usize {
            self as *const _ as usize
        }

        pub fn load(&self, ord: Ordering) -> *mut T {
            match exec::current() {
                Some((e, me)) => {
                    e.yield_point(me, Park::None);
                    let v = self.inner.load(Ordering::SeqCst);
                    e.atomic_load(me, self.addr(), ord);
                    v
                }
                None => self.inner.load(ord),
            }
        }

        pub fn store(&self, p: *mut T, ord: Ordering) {
            match exec::current() {
                Some((e, me)) => {
                    e.yield_point(me, Park::None);
                    self.inner.store(p, Ordering::SeqCst);
                    e.atomic_store(me, self.addr(), ord);
                }
                None => self.inner.store(p, ord),
            }
        }

        pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
            match exec::current() {
                Some((e, me)) => {
                    e.yield_point(me, Park::None);
                    let old = self.inner.swap(p, Ordering::SeqCst);
                    e.atomic_rmw(me, self.addr(), ord);
                    old
                }
                None => self.inner.swap(p, ord),
            }
        }

        pub fn get_mut(&mut self) -> &mut *mut T {
            self.inner.get_mut()
        }
    }

    pub fn spin_loop() {
        match exec::current() {
            Some((e, me)) => e.yield_point(me, Park::Spin),
            None => std::hint::spin_loop(),
        }
    }

    pub fn yield_now() {
        match exec::current() {
            Some((e, me)) => e.yield_point(me, Park::Spin),
            None => std::thread::yield_now(),
        }
    }
}

#[cfg(spal_check)]
pub use instrumented::{spin_loop, yield_now, AtomicPtr, AtomicU64, AtomicUsize};

// ---------------------------------------------------------------------
// CheckCell: UnsafeCell with (optional) race detection.
// ---------------------------------------------------------------------

/// An `UnsafeCell` whose accesses the checker race-checks against the
/// happens-before relation built from the shim atomics.
///
/// Access goes through [`with`](CheckCell::with) (shared read) and
/// [`with_mut`](CheckCell::with_mut) (exclusive write), which hand out
/// the raw pointer exactly like `UnsafeCell::get`.
///
/// # Safety contract
/// The caller upholds the same aliasing discipline as with a bare
/// `UnsafeCell`: the pointer must not outlive the closure, and actual
/// exclusivity (e.g. the SPSC single-producer/single-consumer rule) is
/// the caller's responsibility. The checker *verifies* that discipline
/// across explored schedules; it does not enforce it at runtime in
/// plain builds.
#[repr(transparent)]
#[derive(Debug, Default)]
pub struct CheckCell<T> {
    inner: std::cell::UnsafeCell<T>,
}

// Same bound UnsafeCell-based containers use: sharing is sound as long
// as the contained value can move between threads.
unsafe impl<T: Send> Sync for CheckCell<T> {}

impl<T> CheckCell<T> {
    pub const fn new(v: T) -> Self {
        CheckCell {
            inner: std::cell::UnsafeCell::new(v),
        }
    }

    /// Shared (read) access. Recorded as a read in instrumented builds.
    #[inline(always)]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        #[cfg(spal_check)]
        if let Some((e, me)) = crate::exec::current() {
            e.cell_access(me, self as *const _ as usize, false);
        }
        f(self.inner.get())
    }

    /// Exclusive (write) access. Recorded as a write in instrumented
    /// builds.
    #[inline(always)]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        #[cfg(spal_check)]
        if let Some((e, me)) = crate::exec::current() {
            e.cell_access(me, self as *const _ as usize, true);
        }
        f(self.inner.get())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}
