//! Model-aware `thread::spawn`/`join`.
//!
//! Inside a [`Checker`](crate::Checker) run, `spawn` registers a model
//! thread with the execution engine: the OS thread blocks until the
//! scheduler first picks it, and `join` is a scheduler blocking point
//! with a proper happens-before join edge. Outside a run, both delegate
//! to `std::thread`.
//!
//! Because the scheduler runs exactly one model thread at a time, shared
//! state guarded by an ordinary `std::sync::Mutex` is always uncontended
//! inside a harness — collecting results through `Arc<Mutex<Vec<_>>>`
//! is safe and adds no schedule points.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::exec::{self, Exec, Park};
use crate::strategy::Tid;

enum Inner<T> {
    Native(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<Exec>,
        tid: Tid,
        result: Arc<Mutex<Option<T>>>,
    },
}

/// Handle returned by [`spawn`]; joinable exactly once.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

/// Spawn a thread. Model-scheduled inside a checker run, a plain
/// `std::thread::spawn` otherwise.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match exec::current() {
        None => JoinHandle {
            inner: Inner::Native(std::thread::spawn(f)),
        },
        Some((exec, me)) => {
            let tid = exec.register_thread(Some(me));
            let result = Arc::new(Mutex::new(None));
            let slot = Arc::clone(&result);
            let child_exec = Arc::clone(&exec);
            let os = std::thread::Builder::new()
                .name(format!("model-{tid}"))
                .spawn(move || {
                    exec::set_current(Some((Arc::clone(&child_exec), tid)));
                    let payload = if child_exec.wait_first(tid) {
                        match catch_unwind(AssertUnwindSafe(f)) {
                            Ok(v) => {
                                *slot.lock().unwrap() = Some(v);
                                None
                            }
                            Err(p) => Some(p),
                        }
                    } else {
                        None
                    };
                    child_exec.thread_exit(tid, payload);
                })
                .expect("spawn model thread");
            exec.add_handle(os);
            // Spawning is itself a schedule point: the child may run first.
            exec.yield_point(me, Park::None);
            JoinHandle {
                inner: Inner::Model { exec, tid, result },
            }
        }
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and take its return value.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Native(h) => h.join(),
            Inner::Model { exec, tid, result } => {
                let (cur, me) =
                    exec::current().expect("model JoinHandle joined outside its checker run");
                debug_assert!(Arc::ptr_eq(&cur, &exec), "join across executions");
                // Blocks until `tid` has finished (or the run aborts, in
                // which case this unwinds with ExecAbort).
                exec.yield_point(me, Park::Join(tid));
                exec.join_clock(me, tid);
                let v = result
                    .lock()
                    .unwrap()
                    .take()
                    .expect("joined model thread produced no value");
                Ok(v)
            }
        }
    }
}
