//! Vector clocks — the happens-before bookkeeping behind the checker's
//! data-race detector.
//!
//! Every model thread owns a [`VClock`]; component `t` is the number of
//! scheduling steps thread `t` had completed the last time its knowledge
//! reached this clock. An access `a` happens-before an access `b` iff
//! the clock recorded at `a` is dominated by the acting thread's clock
//! at `b`. Release stores publish the storing thread's clock into the
//! location; acquire loads join it back — exactly the C11 edges the real
//! primitives rely on, evaluated over the sequentially-consistent
//! interleavings the scheduler enumerates.

/// A vector clock over the model threads of one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> Self {
        VClock(Vec::new())
    }

    /// Component for thread `t` (0 if never touched).
    #[inline]
    pub fn get(&self, t: usize) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Set component `t` to `v` (grows the vector as needed).
    #[inline]
    pub fn set(&mut self, t: usize, v: u32) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    /// Advance this thread's own component by one step.
    #[inline]
    pub fn bump(&mut self, t: usize) {
        self.set(t, self.get(t) + 1);
    }

    /// Pointwise maximum: afterwards `self` knows everything `other` did.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, &o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(o);
        }
    }

    /// Whether every component of `self` is ≤ the matching component of
    /// `other` — i.e. all events recorded here happen-before `other`.
    pub fn dominated_by(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(t, &v)| v <= other.get(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_domination() {
        let mut a = VClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VClock::new();
        b.set(0, 2);
        b.set(1, 5);
        assert!(!a.dominated_by(&b));
        b.join(&a);
        assert!(a.dominated_by(&b));
        assert_eq!(b.get(0), 3);
        assert_eq!(b.get(1), 5);
        assert_eq!(b.get(2), 1);
    }

    #[test]
    fn bump_advances_own_component() {
        let mut c = VClock::new();
        c.bump(1);
        c.bump(1);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(0), 0);
        assert!(VClock::new().dominated_by(&c));
        assert!(!c.dominated_by(&VClock::new()));
    }
}
