//! Schedule-choice strategies: how the scheduler decides which model
//! thread runs at each step.
//!
//! * [`DfsStrategy`] — bounded exhaustive enumeration. The first run
//!   always continues the current thread; between runs the deepest
//!   not-yet-exhausted choice point advances to its next alternative
//!   (iterative depth-first search over the schedule tree, re-executing
//!   the program for every schedule — the CHESS approach). A preemption
//!   bound caps how many times a run may switch away from a thread that
//!   could have continued, which is what keeps the tree tractable; most
//!   concurrency bugs need only 1–2 preemptions.
//! * [`RandomStrategy`] — seeded random walk: every choice is uniform
//!   over the enabled threads, each run re-seeded from `base_seed` and
//!   the run index, so any failing schedule replays from its seed.
//! * [`ReplayStrategy`] — replays one schedule from a failure token.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub(crate) type Tid = usize;

/// FNV-1a step, used to fingerprint schedules for distinct counting.
#[inline]
fn fnv_step(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01B3)
}

pub(crate) trait Strategy: Send {
    /// Called at schedule start.
    fn begin_run(&mut self);
    /// Choose among `enabled` (non-empty, ascending). `current` is the
    /// yielding thread; `current_enabled` says whether staying put is an
    /// option.
    fn choose(&mut self, enabled: &[Tid], current: Tid, current_enabled: bool) -> Tid;
    /// Move to the next schedule; `false` once the space is exhausted.
    fn advance(&mut self) -> bool;
    /// Replay token identifying the schedule chosen this run.
    fn token(&self) -> String;
    /// Fingerprint of this run's choices (distinct-schedule counting).
    fn fingerprint(&self) -> u64;
}

// ---------------------------------------------------------------------
// Bounded exhaustive DFS
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Node {
    /// Candidate threads at this choice point, preferred first.
    options: Vec<Tid>,
    /// Index of the option taken on the current run.
    idx: usize,
}

pub(crate) struct DfsStrategy {
    trail: Vec<Node>,
    cursor: usize,
    preemption_bound: Option<u32>,
    preemptions_used: u32,
    choices: Vec<Tid>,
    fp: u64,
}

impl DfsStrategy {
    pub(crate) fn new(preemption_bound: Option<u32>) -> Self {
        DfsStrategy {
            trail: Vec::new(),
            cursor: 0,
            preemption_bound,
            preemptions_used: 0,
            choices: Vec::new(),
            fp: 0xCBF2_9CE4_8422_2325,
        }
    }
}

impl Strategy for DfsStrategy {
    fn begin_run(&mut self) {
        self.cursor = 0;
        self.preemptions_used = 0;
        self.choices.clear();
        self.fp = 0xCBF2_9CE4_8422_2325;
    }

    fn choose(&mut self, enabled: &[Tid], current: Tid, current_enabled: bool) -> Tid {
        if self.cursor == self.trail.len() {
            // Fresh choice point: prefer continuing the current thread;
            // alternatives are preemptions and only recorded while the
            // budget allows exploring them.
            let out_of_budget = current_enabled
                && self
                    .preemption_bound
                    .is_some_and(|b| self.preemptions_used >= b);
            let options: Vec<Tid> = if out_of_budget {
                vec![current]
            } else if current_enabled {
                std::iter::once(current)
                    .chain(enabled.iter().copied().filter(|&t| t != current))
                    .collect()
            } else {
                enabled.to_vec()
            };
            self.trail.push(Node { options, idx: 0 });
        }
        let node = &self.trail[self.cursor];
        debug_assert!(
            node.options.iter().all(|t| enabled.contains(t)),
            "nondeterministic harness: replayed options {:?} not enabled in {:?}",
            node.options,
            enabled
        );
        let chosen = node.options[node.idx];
        if current_enabled && chosen != current {
            self.preemptions_used += 1;
        }
        self.cursor += 1;
        self.choices.push(chosen);
        self.fp = fnv_step(self.fp, chosen as u64);
        chosen
    }

    fn advance(&mut self) -> bool {
        // Anything beyond the run's last choice point is stale state from
        // a deeper previous run.
        self.trail.truncate(self.cursor);
        while let Some(last) = self.trail.last_mut() {
            if last.idx + 1 < last.options.len() {
                last.idx += 1;
                return true;
            }
            self.trail.pop();
        }
        false
    }

    fn token(&self) -> String {
        let reprs: Vec<String> = self.choices.iter().map(|t| t.to_string()).collect();
        format!("dfs:{}", reprs.join(","))
    }

    fn fingerprint(&self) -> u64 {
        self.fp
    }
}

// ---------------------------------------------------------------------
// Seeded random walk
// ---------------------------------------------------------------------

pub(crate) struct RandomStrategy {
    base_seed: u64,
    run: u64,
    max_runs: u64,
    rng: SmallRng,
    fp: u64,
}

impl RandomStrategy {
    pub(crate) fn new(base_seed: u64, max_runs: u64) -> Self {
        RandomStrategy {
            base_seed,
            run: 0,
            max_runs,
            rng: SmallRng::seed_from_u64(Self::run_seed(base_seed, 0)),
            fp: 0,
        }
    }

    fn run_seed(base: u64, run: u64) -> u64 {
        base ^ run.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// The seed that reproduces the current run on its own.
    pub(crate) fn current_seed(&self) -> u64 {
        Self::run_seed(self.base_seed, self.run)
    }
}

impl Strategy for RandomStrategy {
    fn begin_run(&mut self) {
        self.rng = SmallRng::seed_from_u64(self.current_seed());
        self.fp = 0xCBF2_9CE4_8422_2325;
    }

    fn choose(&mut self, enabled: &[Tid], _current: Tid, _current_enabled: bool) -> Tid {
        let chosen = enabled[self.rng.gen_range(0..enabled.len())];
        self.fp = fnv_step(self.fp, chosen as u64);
        chosen
    }

    fn advance(&mut self) -> bool {
        self.run += 1;
        self.run < self.max_runs
    }

    fn token(&self) -> String {
        format!("seed:{}", self.current_seed())
    }

    fn fingerprint(&self) -> u64 {
        self.fp
    }
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

pub(crate) struct ReplayStrategy {
    choices: Vec<Tid>,
    cursor: usize,
    fp: u64,
}

impl ReplayStrategy {
    /// Parse a `dfs:…` token (a `seed:…` token replays through
    /// [`RandomStrategy`] instead).
    pub(crate) fn from_choices(choices: Vec<Tid>) -> Self {
        ReplayStrategy {
            choices,
            cursor: 0,
            fp: 0,
        }
    }
}

impl Strategy for ReplayStrategy {
    fn begin_run(&mut self) {
        self.cursor = 0;
        self.fp = 0xCBF2_9CE4_8422_2325;
    }

    fn choose(&mut self, enabled: &[Tid], current: Tid, current_enabled: bool) -> Tid {
        let chosen = match self.choices.get(self.cursor) {
            Some(&t) if enabled.contains(&t) => t,
            // Past the recorded schedule (or drifted): keep the current
            // thread where possible so the tail stays deterministic.
            _ => {
                if current_enabled {
                    current
                } else {
                    enabled[0]
                }
            }
        };
        self.cursor += 1;
        self.fp = fnv_step(self.fp, chosen as u64);
        chosen
    }

    fn advance(&mut self) -> bool {
        false
    }

    fn token(&self) -> String {
        let reprs: Vec<String> = self.choices.iter().map(|t| t.to_string()).collect();
        format!("dfs:{}", reprs.join(","))
    }

    fn fingerprint(&self) -> u64 {
        self.fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulate a program with `steps` choice points, 2 threads always
    /// enabled, and collect every schedule the DFS visits.
    fn enumerate(bound: Option<u32>, steps: usize) -> Vec<Vec<Tid>> {
        let mut s = DfsStrategy::new(bound);
        let mut all = Vec::new();
        loop {
            s.begin_run();
            let mut run = Vec::new();
            let mut current = 0;
            for _ in 0..steps {
                let t = s.choose(&[0, 1], current, true);
                run.push(t);
                current = t;
            }
            all.push(run);
            if !s.advance() {
                return all;
            }
        }
    }

    #[test]
    fn unbounded_dfs_enumerates_all_interleavings() {
        let all = enumerate(None, 3);
        assert_eq!(all.len(), 8); // 2^3 schedules
        let distinct: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn zero_preemption_bound_runs_one_schedule() {
        // Never allowed to leave thread 0 while it stays enabled.
        let all = enumerate(Some(0), 4);
        assert_eq!(all, vec![vec![0, 0, 0, 0]]);
    }

    #[test]
    fn preemption_bound_counts_switches() {
        let all = enumerate(Some(1), 3);
        // Schedules with at most one switch away from the running thread.
        for run in &all {
            let mut cur = 0;
            let switches = run
                .iter()
                .filter(|&&t| {
                    let s = t != cur;
                    cur = t;
                    s
                })
                .count();
            assert!(switches <= 2, "run {run:?}"); // 1 preemption + returns
        }
        let distinct: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(distinct.len(), all.len(), "DFS repeated a schedule");
    }

    #[test]
    fn random_strategy_replays_from_seed() {
        let mut a = RandomStrategy::new(7, 10);
        a.begin_run();
        let run_a: Vec<Tid> = (0..20).map(|_| a.choose(&[0, 1, 2], 0, true)).collect();
        let seed = a.current_seed();
        let mut b = RandomStrategy::new(seed, 1);
        b.begin_run();
        let run_b: Vec<Tid> = (0..20).map(|_| b.choose(&[0, 1, 2], 0, true)).collect();
        assert_eq!(run_a, run_b);
    }

    #[test]
    fn distinct_fingerprints_for_distinct_schedules() {
        let mut s = DfsStrategy::new(None);
        let mut fps = std::collections::HashSet::new();
        loop {
            s.begin_run();
            let mut current = 0;
            for _ in 0..4 {
                current = s.choose(&[0, 1], current, true);
            }
            fps.insert(s.fingerprint());
            if !s.advance() {
                break;
            }
        }
        assert_eq!(fps.len(), 16);
    }
}
