//! Exhaustive two-sequence interleaving enumeration for components that
//! are *logically* concurrent but not built on the sync shim — e.g. the
//! dataplane's version-gated cache, where "worker processes a reply"
//! and "control plane publishes an update" are steps whose orders
//! matter but whose state is plain data.
//!
//! [`for_each_interleaving`] visits every merge order of two sequences
//! of lengths `n` and `m` — C(n+m, n) schedules — and calls the
//! harness with the lane sequence (0 = first lane, 1 = second). The
//! harness replays its state machine from scratch per schedule and
//! asserts its invariant at the end.

/// Number of interleavings of two sequences of the given lengths:
/// the binomial coefficient C(n+m, n).
pub fn interleaving_count(n: usize, m: usize) -> u64 {
    let mut c: u64 = 1;
    for i in 0..n.min(m) {
        c = c * (n + m - i) as u64 / (i as u64 + 1);
    }
    c
}

/// Call `f` once per interleaving of `n` steps of lane 0 with `m` steps
/// of lane 1. The slice passed to `f` holds lane ids in execution
/// order. Returns the number of schedules visited.
pub fn for_each_interleaving(n: usize, m: usize, mut f: impl FnMut(&[u8])) -> u64 {
    let mut schedule = Vec::with_capacity(n + m);
    let mut count = 0;
    recurse(n, m, &mut schedule, &mut f, &mut count);
    count
}

fn recurse(n: usize, m: usize, schedule: &mut Vec<u8>, f: &mut impl FnMut(&[u8]), count: &mut u64) {
    if n == 0 && m == 0 {
        f(schedule);
        *count += 1;
        return;
    }
    if n > 0 {
        schedule.push(0);
        recurse(n - 1, m, schedule, f, count);
        schedule.pop();
    }
    if m > 0 {
        schedule.push(1);
        recurse(n, m - 1, schedule, f, count);
        schedule.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_binomial() {
        assert_eq!(interleaving_count(0, 0), 1);
        assert_eq!(interleaving_count(1, 1), 2);
        assert_eq!(interleaving_count(2, 2), 6);
        assert_eq!(interleaving_count(3, 5), 56);
        assert_eq!(interleaving_count(5, 5), 252);
    }

    #[test]
    fn enumerates_all_distinct_orders() {
        let mut seen = std::collections::HashSet::new();
        let visited = for_each_interleaving(3, 4, |s| {
            assert_eq!(s.iter().filter(|&&l| l == 0).count(), 3);
            assert_eq!(s.iter().filter(|&&l| l == 1).count(), 4);
            seen.insert(s.to_vec());
        });
        assert_eq!(visited, interleaving_count(3, 4));
        assert_eq!(seen.len() as u64, visited);
    }
}
