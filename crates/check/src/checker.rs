//! The user-facing checker: configure a strategy, hand it a harness
//! closure, and explore schedules until the space (or the budget) is
//! exhausted or an invariant breaks.
//!
//! ```ignore
//! let report = Checker::exhaustive()
//!     .preemption_bound(Some(2))
//!     .max_schedules(20_000)
//!     .check(|| {
//!         // spawn spal_check::thread threads, use spal_check::sync types,
//!         // assert invariants — re-run once per schedule.
//!     });
//! report.assert_ok();
//! assert!(report.distinct_interleavings > 1_000);
//! ```
//!
//! On failure the report carries a replay token (`dfs:<choices>` or
//! `seed:<n>`); `Checker::replay(token)` re-runs exactly that schedule,
//! which is how a CI failure is debugged locally.

use std::collections::HashSet;
use std::sync::{Arc, Once};

use crate::exec::{self, Exec, ExecAbort};
use crate::strategy::{DfsStrategy, RandomStrategy, ReplayStrategy, Strategy};

#[derive(Clone, Debug)]
enum Mode {
    Exhaustive {
        preemption_bound: Option<u32>,
        max_schedules: u64,
    },
    Random {
        seed: u64,
        runs: u64,
    },
    Replay {
        token: String,
    },
}

/// Builder for a model-checking run. See the module docs for usage.
#[derive(Clone, Debug)]
pub struct Checker {
    mode: Mode,
    bugs: HashSet<String>,
    max_steps: u64,
}

/// First invariant violation found, with the schedule that produced it.
#[derive(Clone, Debug)]
pub struct CheckFailure {
    /// Panic/assertion/race message from the failing schedule.
    pub message: String,
    /// Replay token: pass to [`Checker::replay`] to re-run the schedule.
    pub token: String,
}

/// Outcome of [`Checker::check`].
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Schedules executed (including the failing one, if any).
    pub schedules: u64,
    /// Distinct schedules among them, by choice-sequence fingerprint.
    /// Equals `schedules` for exhaustive search; random walks may repeat.
    pub distinct_interleavings: u64,
    /// First failure, or `None` if every explored schedule was clean.
    pub failure: Option<CheckFailure>,
}

impl CheckReport {
    /// Panic with the failure message and replay instructions if any
    /// explored schedule violated an invariant.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "model checking failed after {} schedules: {}\n  replay with \
                 Checker::replay(\"{}\")",
                self.schedules, f.message, f.token
            );
        }
    }
}

/// Budget ceiling from the `SPAL_CHECK_SCHEDULES` environment variable
/// (unset, `0` or junk → no ceiling). CI sets it so exploration time is
/// bounded regardless of what individual tests ask for; the suites
/// assert a coverage floor against the *distinct* count, so a ceiling
/// that cuts too deep fails loudly instead of silently passing.
fn env_schedule_ceiling() -> Option<u64> {
    std::env::var("SPAL_CHECK_SCHEDULES")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&n| n > 0)
}

impl Checker {
    /// Bounded exhaustive search (DFS over schedules, preemption bound 2,
    /// schedule budget 50k by default). `SPAL_CHECK_SCHEDULES` caps the
    /// budget from the environment.
    pub fn exhaustive() -> Checker {
        Checker {
            mode: Mode::Exhaustive {
                preemption_bound: Some(2),
                max_schedules: 50_000,
            },
            bugs: HashSet::new(),
            max_steps: 100_000,
        }
    }

    /// Seeded random walk: `runs` schedules, every choice uniform over
    /// the enabled threads. Failures replay from the per-run seed.
    pub fn random(seed: u64, runs: u64) -> Checker {
        Checker {
            mode: Mode::Random { seed, runs },
            bugs: HashSet::new(),
            max_steps: 100_000,
        }
    }

    /// Replay a single schedule from a failure token (`dfs:…` or
    /// `seed:…`).
    pub fn replay(token: &str) -> Checker {
        Checker {
            mode: Mode::Replay {
                token: token.to_string(),
            },
            bugs: HashSet::new(),
            max_steps: 100_000,
        }
    }

    /// Preemption bound for exhaustive search (`None` = unbounded).
    /// No effect on random/replay modes.
    pub fn preemption_bound(mut self, bound: Option<u32>) -> Checker {
        if let Mode::Exhaustive {
            preemption_bound, ..
        } = &mut self.mode
        {
            *preemption_bound = bound;
        }
        self
    }

    /// Schedule budget for exhaustive search; exploration stops cleanly
    /// when it is reached. No effect on random/replay modes.
    pub fn max_schedules(mut self, n: u64) -> Checker {
        if let Mode::Exhaustive { max_schedules, .. } = &mut self.mode {
            *max_schedules = n;
        }
        self
    }

    /// Yield-point budget per schedule (livelock guard).
    pub fn max_steps(mut self, n: u64) -> Checker {
        self.max_steps = n;
        self
    }

    /// Enable a seeded bug by name (see [`crate::bug_enabled`]): the
    /// shimmed code under test weakens itself, and the harness asserts
    /// the checker notices.
    pub fn bug(mut self, name: &str) -> Checker {
        self.bugs.insert(name.to_string());
        self
    }

    fn build_strategy(&self) -> Box<dyn Strategy> {
        match &self.mode {
            Mode::Exhaustive {
                preemption_bound, ..
            } => Box::new(DfsStrategy::new(*preemption_bound)),
            Mode::Random { seed, runs } => Box::new(RandomStrategy::new(*seed, *runs)),
            Mode::Replay { token } => {
                if let Some(seed) = token.strip_prefix("seed:") {
                    let seed = seed
                        .parse::<u64>()
                        .unwrap_or_else(|_| panic!("bad replay token {token:?}"));
                    Box::new(RandomStrategy::new(seed, 1))
                } else if let Some(list) = token.strip_prefix("dfs:") {
                    let choices = list
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| {
                            s.parse::<usize>()
                                .unwrap_or_else(|_| panic!("bad replay token {token:?}"))
                        })
                        .collect();
                    Box::new(ReplayStrategy::from_choices(choices))
                } else {
                    panic!("bad replay token {token:?}: expected dfs:… or seed:…")
                }
            }
        }
    }

    /// Run `f` once per schedule until the space or budget is exhausted
    /// or an invariant breaks. `f` must be re-runnable: allocate all
    /// shared state inside it.
    pub fn check(self, f: impl Fn() + Send + Sync + 'static) -> CheckReport {
        install_panic_filter();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let bugs = Arc::new(self.bugs.clone());
        let mut strategy = self.build_strategy();
        let ceiling = env_schedule_ceiling();
        let mut fingerprints = HashSet::new();
        let mut schedules = 0u64;
        let mut failure = None;
        loop {
            strategy.begin_run();
            let exec = Exec::new(strategy, self.max_steps, Arc::clone(&bugs));
            exec.start_root(Arc::clone(&f));
            exec.join_all();
            let (s, fail) = exec.finish();
            strategy = s;
            schedules += 1;
            fingerprints.insert(strategy.fingerprint());
            if let Some(fl) = fail {
                failure = Some(CheckFailure {
                    message: fl.message,
                    token: fl.token,
                });
                break;
            }
            if let Mode::Exhaustive { max_schedules, .. } = &self.mode {
                if schedules >= *max_schedules {
                    break;
                }
            }
            if ceiling.is_some_and(|cap| schedules >= cap) {
                break;
            }
            if !strategy.advance() {
                break;
            }
        }
        CheckReport {
            schedules,
            distinct_interleavings: fingerprints.len() as u64,
            failure,
        }
    }
}

/// Install (once, process-wide) a panic hook that silences the two
/// expected panic flavors inside checker runs — [`ExecAbort`] unwinds
/// and harness assertion failures on losing schedules, both of which
/// the checker records and reports itself — while delegating everything
/// else to the pre-existing hook.
fn install_panic_filter() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ExecAbort>().is_some() {
                return;
            }
            if exec::current().is_some() {
                return;
            }
            prev(info);
        }));
    });
}
