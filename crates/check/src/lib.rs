//! spal-check: a loom-lite deterministic concurrency model checker for
//! the SPAL dataplane.
//!
//! The crate has two faces:
//!
//! * **Shim** ([`sync`], [`thread`]) — drop-in `Atomic*`, `CheckCell`,
//!   spin/yield hooks, and spawn/join that production crates
//!   (`spal-fabric`, `spal-dataplane`) build on. In normal builds they
//!   compile to the `std` primitives with zero overhead.
//! * **Checker** ([`Checker`]) — under `RUSTFLAGS="--cfg spal_check"`
//!   the shim becomes instrumented: every operation is a schedule point
//!   driven by a deterministic scheduler that re-executes a harness
//!   closure under bounded-exhaustive or seeded-random schedules,
//!   tracks happens-before with vector clocks, race-checks plain-memory
//!   accesses, and replays any failing schedule from a printed token.
//!
//! [`checkpoint`] (always active inside a checker run, even without the
//! cfg) lets harnesses add explicit schedule points, and
//! [`interleave::for_each_interleaving`] exhaustively interleaves two
//! plain-state step sequences for components not built on the shim.

pub mod checker;
pub mod clock;
mod exec;
pub mod interleave;
mod strategy;
pub mod sync;
pub mod thread;

pub use checker::{CheckFailure, CheckReport, Checker};

/// Explicit schedule point. Inside a checker run the scheduler may
/// switch threads here; outside one (or in an uninstrumented build with
/// no active run) it is a no-op. Unlike the shim atomics this works
/// even without `--cfg spal_check`, so logic-level harnesses can be
/// model-checked from the ordinary test suite.
pub fn checkpoint() {
    if let Some((e, me)) = exec::current() {
        e.yield_point(me, exec::Park::None);
    }
}

/// Whether a named seeded bug is enabled for the current checker run.
///
/// Production code guards deliberate weakenings with this so tests can
/// prove the checker would catch the corresponding real mistake, e.g.:
///
/// ```ignore
/// let ord = if spal_check::bug_enabled("spsc-head-store-relaxed") {
///     Ordering::Relaxed // drop the release fence — the checker must object
/// } else {
///     Ordering::Release
/// };
/// ```
///
/// Without `--cfg spal_check` this is a const `false` and the guarded
/// branch compiles out entirely.
#[cfg(spal_check)]
pub fn bug_enabled(name: &str) -> bool {
    match exec::current() {
        Some((e, _)) => e.bug_enabled(name),
        None => false,
    }
}

/// See the `spal_check`-gated variant; always `false` in plain builds.
#[cfg(not(spal_check))]
#[inline(always)]
pub fn bug_enabled(_name: &str) -> bool {
    false
}
