//! Self-tests for the schedule explorer that run in the ordinary test
//! suite (no `--cfg spal_check` needed): harnesses mark their schedule
//! points explicitly with `spal_check::checkpoint()`, shared state goes
//! through `std::sync::Mutex` (always uncontended — the scheduler runs
//! one model thread at a time).

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use spal_check::{checkpoint, thread, Checker};

/// One `(thread id, step)` log per schedule, collected across runs.
type OrderSet = Arc<Mutex<HashSet<Vec<(u8, u8)>>>>;

/// Two threads each log two steps with checkpoints in between; the
/// exhaustive explorer must witness every one of the C(4,2) = 6 merge
/// orders of their step sequences.
#[test]
fn exhaustive_explorer_visits_every_interleaving() {
    let orders: OrderSet = Arc::new(Mutex::new(HashSet::new()));
    let orders_in = Arc::clone(&orders);
    let report = Checker::exhaustive().preemption_bound(None).check(move || {
        let log: Arc<Mutex<Vec<(u8, u8)>>> = Arc::new(Mutex::new(Vec::new()));
        let spawn_logger = |id: u8, log: Arc<Mutex<Vec<(u8, u8)>>>| {
            thread::spawn(move || {
                for step in 0..2u8 {
                    checkpoint();
                    log.lock().unwrap().push((id, step));
                }
            })
        };
        let a = spawn_logger(0, Arc::clone(&log));
        let b = spawn_logger(1, Arc::clone(&log));
        a.join().unwrap();
        b.join().unwrap();
        orders_in
            .lock()
            .unwrap()
            .insert(log.lock().unwrap().clone());
    });
    report.assert_ok();
    let orders = orders.lock().unwrap();
    assert_eq!(
        orders.len(),
        6,
        "expected all 6 merge orders, saw {orders:?}"
    );
    assert!(report.schedules >= 6);
    assert_eq!(report.distinct_interleavings, report.schedules);
}

/// A classic lost update: read, schedule point, write-back. The checker
/// must find the interleaving where both threads read the same value,
/// and the failure must replay deterministically from its token.
fn lost_update_harness() -> impl Fn() + Send + Sync + 'static {
    || {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    checkpoint();
                    let v = *counter.lock().unwrap();
                    checkpoint(); // the other thread may read the same v here
                    *counter.lock().unwrap() = v + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 2, "lost update");
    }
}

#[test]
fn dfs_finds_lost_update_and_token_replays_it() {
    let report = Checker::exhaustive().check(lost_update_harness());
    let failure = report.failure.expect("DFS must find the lost update");
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure: {}",
        failure.message
    );
    assert!(
        failure.token.starts_with("dfs:"),
        "token: {}",
        failure.token
    );

    // The token pins the exact schedule: replaying it fails identically.
    let replay = Checker::replay(&failure.token).check(lost_update_harness());
    assert_eq!(replay.schedules, 1);
    let refailure = replay.failure.expect("replay must reproduce the failure");
    assert_eq!(refailure.message, failure.message);
}

#[test]
fn random_walk_finds_lost_update_and_seed_replays_it() {
    let report = Checker::random(42, 500).check(lost_update_harness());
    let failure = report
        .failure
        .expect("random walk must find the lost update");
    assert!(
        failure.token.starts_with("seed:"),
        "token: {}",
        failure.token
    );
    let replay = Checker::replay(&failure.token).check(lost_update_harness());
    let refailure = replay.failure.expect("seed replay must reproduce");
    assert_eq!(refailure.message, failure.message);
}

/// The same read-modify-write made atomic (hold the lock across the
/// update, no schedule point inside the critical section) is clean.
#[test]
fn atomic_update_passes_exhaustively() {
    let report = Checker::exhaustive().preemption_bound(None).check(|| {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    checkpoint();
                    *counter.lock().unwrap() += 1;
                    checkpoint();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 2);
    });
    report.assert_ok();
    assert!(
        report.distinct_interleavings > 1,
        "explorer only saw one schedule"
    );
}

/// Preemption bounding prunes the space but keeps schedules distinct.
#[test]
fn preemption_bound_prunes_schedule_space() {
    let count_with = |bound: Option<u32>| {
        let report = Checker::exhaustive().preemption_bound(bound).check(|| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    thread::spawn(move || {
                        for _ in 0..3 {
                            checkpoint();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        report.assert_ok();
        assert_eq!(report.distinct_interleavings, report.schedules);
        report.schedules
    };
    let bounded = count_with(Some(1));
    let unbounded = count_with(None);
    assert!(
        bounded < unbounded,
        "bound 1 ({bounded}) should explore fewer schedules than unbounded ({unbounded})"
    );
}

/// Schedule budgets stop exploration cleanly rather than erroring.
#[test]
fn schedule_budget_truncates_exploration() {
    let report = Checker::exhaustive()
        .preemption_bound(None)
        .max_schedules(10)
        .check(|| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    thread::spawn(move || {
                        for _ in 0..3 {
                            checkpoint();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    report.assert_ok();
    assert_eq!(report.schedules, 10);
}
