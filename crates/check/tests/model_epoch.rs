//! Model-checked harnesses for the dataplane's QSBR epoch layer.
//!
//! Compiled only under `RUSTFLAGS="--cfg spal_check"` (the CI `check`
//! job). The invariant under test is the grace-period contract: no
//! publication may reclaim a snapshot while any reader still holds it
//! pinned. The harness makes reclamation observable by scribbling a
//! POISON value into every snapshot the writer gets back — exactly what
//! the dataplane's ping-pong shadow recycling does with real updates —
//! so a premature grace-period end shows up either as the reader
//! observing POISON through its pin or as a data race between the
//! writer's scribble and the reader's read.
#![cfg(spal_check)]

use spal_check::sync::CheckCell;
use spal_check::{thread, Checker};
use spal_dataplane::epoch_table;

const POISON: u64 = u64::MAX;

/// One writer publishing `generations` snapshots (recycling each
/// returned one as scratch), `readers` readers pinning `pins` times
/// each. Snapshot payloads go through `CheckCell` so the race detector
/// sees the reclamation write.
fn epoch_harness(
    generations: u64,
    readers: usize,
    pins: usize,
) -> impl Fn() + Send + Sync + 'static {
    move || {
        let (mut w, reader_handles) = epoch_table(Box::new(CheckCell::new(0u64)), readers);
        let mut joins = Vec::new();
        for mut r in reader_handles {
            joins.push(thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..pins {
                    let pin = r.pin();
                    let v = pin.with(|p| unsafe { *p });
                    assert_ne!(v, POISON, "pinned snapshot was reclaimed under us");
                    assert!(
                        v >= last,
                        "snapshot generations went backwards: {v} after {last}"
                    );
                    last = v;
                }
            }));
        }
        let writer = thread::spawn(move || {
            for gen in 1..=generations {
                let old = w.publish(Box::new(CheckCell::new(gen)));
                // Recycle the reclaimed snapshot the way the control
                // plane reuses its shadow copy: overwrite it. If the
                // grace period was honored, no reader can still see this.
                old.with_mut(|p| unsafe { *p = POISON });
            }
        });
        writer.join().unwrap();
        for j in joins {
            j.join().unwrap();
        }
    }
}

/// Bounded-exhaustive sweep of one writer against one reader.
#[test]
fn exhaustive_grace_period_holds() {
    let report = Checker::exhaustive()
        .preemption_bound(Some(3))
        .max_schedules(20_000)
        .check(epoch_harness(2, 1, 3));
    report.assert_ok();
    assert!(
        report.distinct_interleavings >= 1_000,
        "expected >= 1000 distinct interleavings, got {}",
        report.distinct_interleavings
    );
}

/// Random walk with two readers — more contention on the slot scan
/// than DFS can exhaustively afford.
#[test]
fn random_walk_grace_period_holds() {
    let report = Checker::random(0xE90C, 5_000).check(epoch_harness(2, 2, 2));
    report.assert_ok();
    assert!(
        report.distinct_interleavings >= 4_000,
        "random walk collapsed to {} distinct schedules",
        report.distinct_interleavings
    );
}

/// Deliberately seeded bug: the writer skips the grace period entirely
/// and reclaims the old snapshot immediately after the pointer swap.
/// The checker must catch the use-after-reclaim (as a poison sighting
/// or a data race on the snapshot payload), and the failing schedule
/// must replay from its token.
#[test]
fn skipped_grace_period_is_caught() {
    let report = Checker::exhaustive()
        .bug("epoch-skip-grace")
        .check(epoch_harness(2, 1, 2));
    let failure = report
        .failure
        .expect("checker missed the skipped grace period");
    assert!(
        failure.message.contains("reclaimed under us") || failure.message.contains("data race"),
        "unexpected failure kind: {}",
        failure.message
    );
    let replay = Checker::replay(&failure.token)
        .bug("epoch-skip-grace")
        .check(epoch_harness(2, 1, 2));
    let refailure = replay.failure.expect("failure did not replay from token");
    assert_eq!(refailure.message, failure.message);
}

/// Sanity under instrumentation: the epoch layer still works outside a
/// checker run (instrumented atomics fall back to plain behavior).
#[test]
fn instrumented_epoch_works_without_checker() {
    let (mut w, mut readers) = epoch_table(Box::new(CheckCell::new(7u64)), 1);
    assert_eq!(w.peek().with(|p| unsafe { *p }), 7);
    let old = w.publish(Box::new(CheckCell::new(8)));
    assert_eq!(old.into_inner(), 7);
    let pin = readers[0].pin();
    assert_eq!(pin.with(|p| unsafe { *p }), 8);
}
