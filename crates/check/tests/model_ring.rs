//! Model-checked harnesses for the fabric's SPSC ring.
//!
//! Compiled only under `RUSTFLAGS="--cfg spal_check"` (the CI `check`
//! job); in a plain build this file is empty and `cargo test -q` stays
//! fast. The harnesses assert the ring's core contract — no item is
//! lost, duplicated, or reordered, under every explored schedule — and
//! that the checker *demonstrably* catches a dropped release fence on
//! either index store.
#![cfg(spal_check)]

use spal_check::{sync, thread, Checker};
use spal_fabric::spsc_ring;

/// Push `0..n_items` through a `capacity`-slot ring from a producer
/// thread while a consumer pops; both spin (scheduler-parked) when the
/// ring is full/empty. The consumer must see exactly `0..n_items` in
/// order.
fn ring_harness(n_items: u64, capacity: usize) -> impl Fn() + Send + Sync + 'static {
    move || {
        let (mut tx, mut rx) = spsc_ring::<u64>(capacity);
        let producer = thread::spawn(move || {
            for i in 0..n_items {
                let mut item = i;
                loop {
                    match tx.try_push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            sync::spin_loop();
                        }
                    }
                }
            }
        });
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while (got.len() as u64) < n_items {
                match rx.try_pop() {
                    Some(v) => got.push(v),
                    None => sync::spin_loop(),
                }
            }
            assert_eq!(rx.try_pop(), None, "ring held an extra (duplicated) item");
            got
        });
        producer.join().unwrap();
        let got = consumer.join().unwrap();
        let expected: Vec<u64> = (0..n_items).collect();
        assert_eq!(got, expected, "items lost, duplicated, or reordered");
    }
}

/// Bounded-exhaustive sweep. Items > capacity forces wraparound, so
/// slot reuse (the subtle half of the protocol) is inside the explored
/// space.
#[test]
fn exhaustive_ring_preserves_fifo() {
    let report = Checker::exhaustive()
        .preemption_bound(Some(3))
        .max_schedules(20_000)
        .check(ring_harness(4, 2));
    report.assert_ok();
    assert!(
        report.distinct_interleavings >= 4_000,
        "expected >= 4000 distinct interleavings, got {}",
        report.distinct_interleavings
    );
}

/// Seeded random walk over a deeper run than DFS can afford; failures
/// would replay from the printed seed.
#[test]
fn random_walk_ring_preserves_fifo() {
    let report = Checker::random(0x5A11, 7_000).check(ring_harness(6, 2));
    report.assert_ok();
    assert!(
        report.distinct_interleavings >= 6_000,
        "random walk collapsed to {} distinct schedules",
        report.distinct_interleavings
    );
}

/// Deliberately seeded bug: the producer publishes `head` with a
/// Relaxed store. The consumer's slot read is then unordered after the
/// producer's slot write, and the vector-clock race detector must say
/// so — and the failure must replay from its token.
#[test]
fn dropped_head_release_fence_is_caught() {
    let report = Checker::exhaustive()
        .bug("spsc-head-store-relaxed")
        .check(ring_harness(2, 2));
    let failure = report
        .failure
        .expect("checker missed the dropped release fence on the head store");
    assert!(
        failure.message.contains("data race"),
        "unexpected failure kind: {}",
        failure.message
    );
    let replay = Checker::replay(&failure.token)
        .bug("spsc-head-store-relaxed")
        .check(ring_harness(2, 2));
    let refailure = replay.failure.expect("failure did not replay from token");
    assert_eq!(refailure.message, failure.message);
}

/// Deliberately seeded bug: the consumer retires a slot with a Relaxed
/// `tail` store. The producer's eventual *reuse* of that slot is then
/// unordered after the consumer's read — only observable once the ring
/// wraps, which is why the harness pushes more items than capacity.
#[test]
fn dropped_tail_release_fence_is_caught() {
    let report = Checker::exhaustive()
        .bug("spsc-tail-store-relaxed")
        .check(ring_harness(4, 2));
    let failure = report
        .failure
        .expect("checker missed the dropped release fence on the tail store");
    assert!(
        failure.message.contains("data race"),
        "unexpected failure kind: {}",
        failure.message
    );
}

/// The same weakened orderings must NOT fail when the racy slot is
/// never reused: with capacity >= items the tail store's ordering is
/// never load-bearing, so the checker staying quiet here shows the bug
/// reports above are precise, not noise.
#[test]
fn relaxed_tail_without_wraparound_is_benign() {
    let report = Checker::exhaustive()
        .bug("spsc-tail-store-relaxed")
        .check(ring_harness(2, 4));
    report.assert_ok();
}

/// Burst-mode harness: the producer moves `0..n_items` through the ring
/// with `push_slice` (varying burst widths, partial pushes retried) and
/// the consumer drains with `pop_slice`. One head/tail store per burst
/// means one *release point* per burst — the checker explores whether
/// every slot write in the burst is really ordered before that single
/// publication, and whether the consumer's batched reads all happen
/// before its single tail retirement.
fn burst_harness(n_items: u64, capacity: usize, burst: usize) -> impl Fn() + Send + Sync + 'static {
    move || {
        let (mut tx, mut rx) = spsc_ring::<u64>(capacity);
        let producer = thread::spawn(move || {
            let items: Vec<u64> = (0..n_items).collect();
            let mut sent = 0;
            while sent < items.len() {
                let end = (sent + burst).min(items.len());
                let pushed = tx.push_slice(&items[sent..end]);
                if pushed == 0 {
                    sync::spin_loop();
                }
                sent += pushed;
            }
        });
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while (got.len() as u64) < n_items {
                if rx.pop_slice(&mut got, burst) == 0 {
                    sync::spin_loop();
                }
            }
            let mut extra = Vec::new();
            assert_eq!(
                rx.pop_slice(&mut extra, 1),
                0,
                "ring held an extra (duplicated) item"
            );
            got
        });
        producer.join().unwrap();
        let got = consumer.join().unwrap();
        let expected: Vec<u64> = (0..n_items).collect();
        assert_eq!(got, expected, "items lost, duplicated, or reordered");
    }
}

/// Bounded-exhaustive sweep of the burst path. Burst width 2 over a
/// 2-slot ring with 4 items forces wraparound *and* partial pushes
/// (a burst arriving at a ring with one free slot must split).
#[test]
fn exhaustive_burst_ring_preserves_fifo() {
    let report = Checker::exhaustive()
        .preemption_bound(Some(3))
        .max_schedules(20_000)
        .check(burst_harness(4, 2, 2));
    report.assert_ok();
    assert!(
        report.distinct_interleavings >= 100,
        "expected >= 100 distinct interleavings, got {}",
        report.distinct_interleavings
    );
}

/// Mixed scalar/burst traffic: producer bursts, consumer pops one at a
/// time. The two paths share the same indices, so interleaving them is
/// exactly what the dataplane does when a vector-mode worker talks to a
/// scalar-mode drain.
#[test]
fn burst_producer_scalar_consumer_preserves_fifo() {
    let harness = move || {
        let (mut tx, mut rx) = spsc_ring::<u64>(2);
        let producer = thread::spawn(move || {
            let items: Vec<u64> = (0..4).collect();
            let mut sent = 0;
            while sent < items.len() {
                let pushed = tx.push_slice(&items[sent..(sent + 2).min(items.len())]);
                if pushed == 0 {
                    sync::spin_loop();
                }
                sent += pushed;
            }
        });
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while got.len() < 4 {
                match rx.try_pop() {
                    Some(v) => got.push(v),
                    None => sync::spin_loop(),
                }
            }
            got
        });
        producer.join().unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3]);
    };
    let report = Checker::exhaustive()
        .preemption_bound(Some(3))
        .max_schedules(20_000)
        .check(harness);
    report.assert_ok();
}

/// The seeded Relaxed-head bug must be caught *through the burst path*
/// too: `push_slice` publishes a whole burst with one head store, so a
/// dropped release fence there un-orders every slot write in the burst
/// at once. The vector-clock detector must flag it and the failure must
/// replay from its token.
#[test]
fn burst_dropped_head_release_fence_is_caught() {
    let report = Checker::exhaustive()
        .bug("spsc-head-store-relaxed")
        .check(burst_harness(2, 2, 2));
    let failure = report
        .failure
        .expect("checker missed the dropped release fence on the burst head store");
    assert!(
        failure.message.contains("data race"),
        "unexpected failure kind: {}",
        failure.message
    );
    let replay = Checker::replay(&failure.token)
        .bug("spsc-head-store-relaxed")
        .check(burst_harness(2, 2, 2));
    let refailure = replay.failure.expect("failure did not replay from token");
    assert_eq!(refailure.message, failure.message);
}

/// And the Relaxed-tail bug through `pop_slice`: the single tail store
/// retires the whole burst, so slot reuse after wraparound races the
/// consumer's batched reads.
#[test]
fn burst_dropped_tail_release_fence_is_caught() {
    let report = Checker::exhaustive()
        .bug("spsc-tail-store-relaxed")
        .check(burst_harness(4, 2, 2));
    let failure = report
        .failure
        .expect("checker missed the dropped release fence on the burst tail store");
    assert!(
        failure.message.contains("data race"),
        "unexpected failure kind: {}",
        failure.message
    );
}

/// Sanity under instrumentation: shim-built ring still behaves outside
/// a checker run (instrumented ops fall back to plain atomics).
#[test]
fn instrumented_ring_works_without_checker() {
    let (mut tx, mut rx) = spsc_ring::<u64>(4);
    for i in 0..4 {
        assert!(tx.try_push(i).is_ok());
    }
    assert_eq!(tx.try_push(99), Err(99));
    for i in 0..4 {
        assert_eq!(rx.try_pop(), Some(i));
    }
    assert_eq!(rx.try_pop(), None);
    // Cross-schedule state leakage guard: distinct schedule counts from
    // two identical checkers must agree (determinism smoke test).
    let a = Checker::exhaustive()
        .max_schedules(500)
        .check(ring_harness(2, 2));
    let b = Checker::exhaustive()
        .max_schedules(500)
        .check(ring_harness(2, 2));
    a.assert_ok();
    b.assert_ok();
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.distinct_interleavings, b.distinct_interleavings);
}
