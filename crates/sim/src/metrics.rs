//! Latency accounting for completed lookups.

/// Streaming latency statistics (cycles), with a coarse histogram for
/// percentiles. One lookup = the time from a packet's arrival at its LC
/// until its next hop is known at that LC; an immediate cache hit costs
/// one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyStats {
    count: u64,
    sum: u64,
    max: u64,
    /// `buckets[c]` counts lookups of exactly `c` cycles for `c < 1024`;
    /// the overflow bucket collects the rest.
    buckets: Vec<u64>,
    overflow: u64,
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        LatencyStats {
            count: 0,
            sum: 0,
            max: 0,
            buckets: vec![0; 1024],
            overflow: 0,
        }
    }

    /// Record one lookup latency in cycles.
    pub fn record(&mut self, cycles: u64) {
        self.count += 1;
        self.sum += cycles;
        self.max = self.max.max(cycles);
        if (cycles as usize) < self.buckets.len() {
            self.buckets[cycles as usize] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of recorded lookups.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in cycles.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded latency.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (0 < q ≤ 1) from the histogram; latencies in the
    /// overflow bucket report as `max`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (c, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return c as u64;
            }
        }
        self.max
    }

    /// Lookups per second per LC implied by the mean latency on 5 ns
    /// cycles — the quantity behind the paper's "21 million packets per
    /// second for each LC".
    pub fn lookups_per_second(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            1.0 / (m * 5e-9)
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_max_count() {
        let mut s = LatencyStats::new();
        for c in [1u64, 1, 1, 41] {
            s.record(c);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 11.0).abs() < 1e-12);
        assert_eq!(s.max(), 41);
    }

    #[test]
    fn quantiles() {
        let mut s = LatencyStats::new();
        for c in 1..=100u64 {
            s.record(c);
        }
        assert_eq!(s.quantile(0.5), 50);
        assert_eq!(s.quantile(0.99), 99);
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn overflow_bucket() {
        let mut s = LatencyStats::new();
        s.record(5000);
        s.record(1);
        assert_eq!(s.max(), 5000);
        assert_eq!(s.quantile(1.0), 5000);
        assert!((s.mean() - 2500.5).abs() < 1e-9);
    }

    #[test]
    fn lookups_per_second_inversion() {
        let mut s = LatencyStats::new();
        // Mean 9.2 cycles → > 21 Mpps (the paper's headline arithmetic).
        for _ in 0..4 {
            s.record(9);
        }
        s.record(10);
        let lps = s.lookups_per_second();
        assert!(lps > 21e6, "{lps}");
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyStats::new();
        a.record(1);
        let mut b = LatencyStats::new();
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats() {
        let s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.lookups_per_second(), 0.0);
    }
}
