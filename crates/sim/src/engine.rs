//! The cycle-driven router simulator.
//!
//! One [`RouterSim`] owns ψ line cards, the switching fabric and the
//! packet accounting, and advances them cycle by cycle through the §3.3
//! flows. The per-cycle, per-LC order is:
//!
//! 1. deliver at most one fabric message (replies are cache *writes* and
//!    are processed immediately; requests join the input queue and wait
//!    for the single cache probe port);
//! 2. admit this cycle's packet arrival, if any, to the input queue;
//! 3. complete the FE lookup finishing this cycle (fill the LR-cache as
//!    LOC, release local waiters, queue replies to remote requesters);
//! 4. start the next FE lookup if the engine is idle;
//! 5. probe the LR-cache with the head of the input queue (at most one
//!    probe per cycle, §5.1) and act on the outcome;
//! 6. inject the head of the outgoing queue into the fabric.
//!
//! # Clock advance
//!
//! Running those six phases for every LC on every cycle is wasteful
//! whenever the router is *globally quiescent* — every queue empty, no
//! FE mid-lookup, nothing in the fabric, no arrival due. At 10 Gbps the
//! mean inter-arrival gap is 40 cycles, so most cycles are exactly that.
//! The default [`EngineMode::FastForward`] engine scans once per
//! executed cycle, computing each LC's *next-event cycle*: the minimum
//! over its next arrival ([`ArrivalProcess::peek`]), its FE completion
//! time, and the fabric's next transit completion for its port
//! ([`SwitchingFabric::next_delivery_for`]). The clock jumps straight to
//! the global minimum of those (plus the next cache-flush boundary), and
//! the same per-LC values then gate the phase loop so only LCs whose
//! event fired run their phases. Skipped cycles and skipped LCs are
//! provably no-ops (each phase's guard fails), so the fast path is
//! cycle-identical to the naive loop — which is kept behind
//! [`EngineMode::Naive`] and pinned against it by the `engine_equiv`
//! test suite.

use crate::config::{EngineMode, FeServiceModel, RouterKind, SimConfig};
use crate::metrics::LatencyStats;
use crate::report::{LcReport, SimReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spal_cache::{LrCache, LrCacheConfig, Origin, ProbeResult, ReserveOutcome};
use spal_core::{ForwardingTable, Partitioning};
use spal_fabric::{FabricMsg, FabricStats, MsgKind, Queue, SwitchingFabric};
use spal_lpm::{CountedLookup, Lpm, BATCH_LANES};
use spal_rib::RoutingTable;
use spal_traffic::{ArrivalProcess, Trace};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifies a packet across the run.
type PacketId = u64;

/// An item waiting for the LR-cache probe port.
#[derive(Debug, Clone, Copy)]
enum WorkItem {
    /// A packet that arrived on this LC's external links.
    Local { id: PacketId, addr: u32 },
    /// A lookup request that arrived over the fabric.
    Remote { addr: u32, src: u16, id: PacketId },
}

/// Parties waiting on an in-flight lookup for one address at one LC.
#[derive(Debug, Default)]
struct Waiters {
    /// Local packets parked on the W-bit entry.
    locals: Vec<PacketId>,
    /// Remote requesters (home LC only): reply targets.
    remotes: Vec<(u16, PacketId)>,
}

/// A unit of work for the forwarding engine.
#[derive(Debug, Clone, Copy)]
struct FeJob {
    addr: u32,
    /// The local packet that triggered this job *without* managing to
    /// reserve a cache block (otherwise completion flows through the
    /// waiting list).
    local_initiator: Option<PacketId>,
    /// Likewise for a remote requester whose reservation failed.
    remote_initiator: Option<(u16, PacketId)>,
}

/// The FE job currently in service, with its result resolved at start
/// time. The forwarding table is immutable for the duration of a run,
/// so resolving when the lookup starts is equivalent to resolving when
/// it completes — and the single trie walk also yields the access count
/// the [`FeServiceModel::PerLookup`] cost model charges, where the old
/// engine walked the trie a second time.
#[derive(Debug, Clone, Copy)]
struct ActiveFeJob {
    job: FeJob,
    next_hop: Option<u16>,
}

struct Lc {
    id: u16,
    fwd: Arc<ForwardingTable>,
    cache: LrCache<Option<u16>>,
    input: Queue<WorkItem>,
    outgoing: Queue<FabricMsg>,
    fe_queue: Queue<FeJob>,
    /// Results resolved ahead of time by a batched FE start: `(addr,
    /// result)` for jobs still sitting in `fe_queue`. Bounded at
    /// `BATCH_LANES - 1` entries — a batch is only issued when the stash
    /// is empty, and the stashed jobs are by FIFO order the next pops.
    fe_prefetched: Vec<(u32, CountedLookup)>,
    fe_busy_until: u64,
    fe_job: Option<ActiveFeJob>,
    fe_lookups: u64,
    fe_busy_cycles: u64,
    waiting: HashMap<u32, Waiters>,
    dests: Arc<[u32]>,
    next_packet: usize,
    arrivals: ArrivalProcess,
    rng: StdRng,
    completed: u64,
}

/// The simulator.
///
/// ```
/// use spal_cache::LrCacheConfig;
/// use spal_rib::synth;
/// use spal_sim::{RouterKind, RouterSim, SimConfig};
/// use spal_traffic::{preset, PresetName, TracePreset};
///
/// let table = synth::small(3);
/// let preset = TracePreset { distinct: 500, ..preset(PresetName::D75) };
/// let traces = preset.generate(&table, 2 * 2_000, 1).split(2);
/// let report = RouterSim::new(&table, &traces, SimConfig {
///     kind: RouterKind::Spal,
///     psi: 2,
///     cache: LrCacheConfig { blocks: 256, ..Default::default() },
///     packets_per_lc: 2_000,
///     ..SimConfig::default()
/// }).run();
/// assert_eq!(report.latency.count(), 4_000); // every packet completed
/// assert!(report.mean_lookup_cycles() < 40.0); // beats the bare FE
/// ```
pub struct RouterSim {
    config: SimConfig,
    partitioning: Option<Partitioning>,
    lcs: Vec<Lc>,
    fabric: SwitchingFabric,
    /// Arrival cycle per packet id.
    arrival_cycle: Vec<u64>,
    latency: LatencyStats,
    completed: u64,
    total_packets: u64,
    now: u64,
    /// Cycles whose phases actually ran (fast-forward skips the rest).
    executed_cycles: u64,
    /// The fast engine's event horizon: LC `i`'s next-event cycle
    /// (`u64::MAX` = nothing ever pending). Doubles as the per-LC
    /// activity gate — one scan serves both jump and gate — and is
    /// maintained *incrementally*: an idle LC's entry cannot drift,
    /// because its state only changes through its own phases (entry
    /// `< now` after it ran) or an inbound fabric message (entry zeroed
    /// at send time), so each scan recomputes only those entries.
    lc_next: Vec<u64>,
}

impl RouterSim {
    /// Build a simulator over `table`, feeding each LC its slice of
    /// `traces` (trace `i % traces.len()` drives LC `i`; destinations
    /// wrap if the trace is shorter than `packets_per_lc`).
    pub fn new(table: &RoutingTable, traces: &[Trace], config: SimConfig) -> Self {
        assert!(config.psi >= 1, "need at least one LC");
        assert!(!traces.is_empty(), "need at least one trace");
        assert!(
            traces.iter().all(|t| !t.is_empty()),
            "traces must be non-empty"
        );
        let partitioning = match config.kind {
            RouterKind::Spal => {
                let eta = spal_core::bits::eta_for(config.psi);
                let bits = spal_core::bits::select_bits(table, eta);
                Some(Partitioning::new(table, bits, config.psi))
            }
            _ => None,
        };
        let fwds: Vec<Arc<ForwardingTable>> = match &partitioning {
            Some(p) => p
                .forwarding_tables(table)
                .iter()
                .map(|part| Arc::new(ForwardingTable::build(config.algorithm, part)))
                .collect(),
            // Non-SPAL kinds run the identical whole table at every LC:
            // build one engine and share it instead of cloning the
            // routing table (and the built trie) ψ times.
            None => {
                let shared = Arc::new(ForwardingTable::build(config.algorithm, table));
                vec![shared; config.psi]
            }
        };
        let lcs: Vec<Lc> = fwds
            .into_iter()
            .enumerate()
            .map(|(i, fwd)| Lc {
                id: i as u16,
                fwd,
                cache: LrCache::new(LrCacheConfig {
                    seed: config.cache.seed.wrapping_add(i as u64),
                    ..config.cache.clone()
                }),
                input: Queue::unbounded(),
                outgoing: Queue::unbounded(),
                fe_queue: Queue::unbounded(),
                fe_prefetched: Vec::with_capacity(BATCH_LANES - 1),
                fe_busy_until: 0,
                fe_job: None,
                fe_lookups: 0,
                fe_busy_cycles: 0,
                waiting: HashMap::new(),
                dests: traces[i % traces.len()].destinations_shared(),
                next_packet: 0,
                arrivals: ArrivalProcess::new(config.speed),
                rng: StdRng::seed_from_u64(config.seed.wrapping_add(0x9E37_79B9 * i as u64)),
                completed: 0,
            })
            .collect();
        let fabric = SwitchingFabric::new(config.fabric, config.psi);
        let total_packets = (config.psi * config.packets_per_lc) as u64;
        RouterSim {
            arrival_cycle: vec![0; total_packets as usize],
            partitioning,
            lcs,
            fabric,
            latency: LatencyStats::new(),
            completed: 0,
            total_packets,
            now: 0,
            executed_cycles: 0,
            // Zero = "active at any cycle": conservative until first scan.
            lc_next: vec![0; config.psi],
            config,
        }
    }

    /// The partitioning in use (SPAL runs only).
    pub fn partitioning(&self) -> Option<&Partitioning> {
        self.partitioning.as_ref()
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Completed / total packets.
    pub fn progress(&self) -> (u64, u64) {
        (self.completed, self.total_packets)
    }

    /// Cycles whose phases actually executed. Under
    /// [`EngineMode::Naive`] this equals [`RouterSim::now`]; under
    /// [`EngineMode::FastForward`] the difference is the number of
    /// skipped (provably idle) cycles — a diagnostic for how much the
    /// event horizon is paying off on a given configuration.
    pub fn executed_cycles(&self) -> u64 {
        self.executed_cycles
    }

    /// Run to completion and report. Panics if the simulation fails to
    /// drain within a generous safety bound (an unstable configuration,
    /// e.g. the conventional router at 40 Gbps, where the FE cannot keep
    /// up — use [`RouterSim::run_for`] to study those).
    pub fn run(mut self) -> SimReport {
        // Worst-case drain bound: every packet serialised through an FE.
        let bound = self.total_packets * (self.config.fe.cycles(32) as u64 + 100) + 10_000;
        while self.completed < self.total_packets {
            self.step();
            assert!(
                self.now < bound,
                "simulation failed to drain by cycle {} ({}/{} packets done) — unstable config?",
                self.now,
                self.completed,
                self.total_packets
            );
        }
        self.report()
    }

    /// Run for a fixed number of cycles (for open-loop/unstable studies)
    /// and report on whatever completed.
    pub fn run_for(mut self, cycles: u64) -> SimReport {
        while self.now < cycles && self.completed < self.total_packets {
            self.step_bounded(cycles);
        }
        self.report()
    }

    /// Advance the simulation: exactly one cycle in
    /// [`EngineMode::Naive`], or — when the router is globally quiescent
    /// in [`EngineMode::FastForward`] — a jump to the next event followed
    /// by that event's cycle.
    pub fn step(&mut self) {
        self.step_bounded(u64::MAX);
    }

    /// [`RouterSim::step`] with fast-forward jumps capped at `limit`:
    /// a jump that reaches the cap stops the clock there *without*
    /// executing that cycle, so [`RouterSim::run_for`] ends at exactly
    /// the cycle count the naive engine would report.
    fn step_bounded(&mut self, limit: u64) {
        debug_assert!(self.now < limit, "stepping past the cycle bound");
        if self.config.engine == EngineMode::FastForward {
            // One scan yields both the jump target (the global minimum)
            // and the per-LC activity gate `step_cycle` consults. An
            // entry `< now` belongs to an LC whose phases ran (or that
            // was flagged by an inbound fabric send) since it was
            // computed — only those can have changed state, so only
            // those are recomputed.
            let mut next = u64::MAX;
            for i in 0..self.lcs.len() {
                if self.lc_next[i] < self.now {
                    self.lc_next[i] = self.lc_next_event(i);
                }
                next = next.min(self.lc_next[i]);
            }
            if let Some(interval) = self.config.flush_interval_cycles {
                if self.config.kind != RouterKind::Conventional {
                    // Flushes mutate cache state and statistics, so every
                    // boundary is a stop even when the caches are empty.
                    // The current cycle counts if its own flush has not
                    // run yet (entering `step_cycle` at `now` always
                    // means cycle `now` is still unexecuted).
                    let at = if self.now > 0 && self.now.is_multiple_of(interval) {
                        self.now
                    } else {
                        (self.now / interval + 1) * interval
                    };
                    next = next.min(at);
                }
            }
            if next != u64::MAX {
                let target = next.min(limit);
                if target > self.now {
                    self.now = target;
                    if target == limit {
                        return; // window exhausted before the event
                    }
                }
            }
            // No pending event anywhere (a drained or wedged run): fall
            // through and burn single cycles, exactly like the naive
            // engine, so `run`'s drain bound still fires on deadlock.
        }
        self.step_cycle();
    }

    /// The earliest cycle in which any of LC `i`'s phases can do work,
    /// or `u64::MAX` if nothing is ever pending for it. The global
    /// cache-flush boundary is the caller's concern.
    ///
    /// Immediately serviceable work — a probe waiting in the input
    /// queue, an injection waiting in the outgoing queue, or an FE job
    /// queued behind an *idle* engine — reports `self.now`. An FE job
    /// queued behind a busy engine is *not* immediate: nothing can
    /// happen to it before `fe_busy_until`, which is already the
    /// completion event. That distinction is what lets the overloaded
    /// conventional router (a permanent FE backlog) still fast-forward
    /// across each 40-cycle lookup.
    ///
    /// The six phases only create same-cycle work for *this* LC (a
    /// delivered request enters the input queue, a completion emits
    /// replies, a probe enqueues an FE job...), and every such trigger
    /// is one of the conditions below — cross-LC effects travel through
    /// the fabric with latency ≥ 1 — so the value cannot move *earlier*
    /// while the LC sits idle, and skipping it until then leaves the
    /// simulation state bit-identical.
    fn lc_next_event(&self, i: usize) -> u64 {
        let lc = &self.lcs[i];
        if !lc.input.is_empty() || !lc.outgoing.is_empty() {
            return self.now; // a probe or an injection is due
        }
        let mut next = u64::MAX;
        if lc.fe_job.is_some() {
            next = lc.fe_busy_until; // the completion event
        } else if !lc.fe_queue.is_empty() {
            return self.now; // an idle FE can start this job now
        }
        if lc.next_packet < self.config.packets_per_lc {
            next = next.min(lc.arrivals.peek());
        }
        // Only the SPAL router ever injects into the fabric.
        if self.config.kind == RouterKind::Spal {
            if let Some(at) = self.fabric.next_delivery_for(lc.id) {
                next = next.min(at);
            }
        }
        next
    }

    /// Execute one cycle's six phases on every LC.
    fn step_cycle(&mut self) {
        self.executed_cycles += 1;
        let now = self.now;
        // Routing-table update: flush every LR-cache (§3.2). Waiting
        // lists live beside the cache, so in-flight lookups still
        // complete; their results simply re-enter cold caches.
        if let Some(interval) = self.config.flush_interval_cycles {
            if now > 0
                && now.is_multiple_of(interval)
                && self.config.kind != RouterKind::Conventional
            {
                for lc in &mut self.lcs {
                    lc.cache.flush();
                }
            }
        }
        // The fast engine additionally skips LCs whose six phases are
        // all provably no-ops this cycle — their scanned next-event
        // cycle lies beyond `now` (after a jump, typically only the LC
        // whose event fired has anything to do). The naive engine runs
        // every phase on every LC, guards and all — it is the executable
        // specification the fast path is pinned against.
        let gate = self.config.engine == EngineMode::FastForward;
        for i in 0..self.lcs.len() {
            if gate && self.lc_next[i] > now {
                continue;
            }
            self.receive_fabric(i, now);
            self.admit_arrival(i, now);
            self.fe_complete(i, now);
            self.fe_start(i, now);
            self.probe_cache(i, now);
            self.send_outgoing(i, now);
        }
        self.now += 1;
    }

    fn home_of(&self, addr: u32) -> u16 {
        match &self.partitioning {
            Some(p) => p.home_of(addr),
            None => u16::MAX, // unused: non-SPAL kinds never ask
        }
    }

    fn complete_packet(&mut self, id: PacketId, now: u64) {
        let arrived = self.arrival_cycle[id as usize];
        if arrived >= self.config.measure_after_cycle {
            self.latency.record(now - arrived + 1);
        }
        self.completed += 1;
    }

    /// Step 1: deliver one fabric message.
    fn receive_fabric(&mut self, i: usize, now: u64) {
        if self.config.kind != RouterKind::Spal {
            return;
        }
        let Some(msg) = self.fabric.receive(self.lcs[i].id, now) else {
            return;
        };
        match msg.kind {
            MsgKind::Request => {
                self.lcs[i].input.push(WorkItem::Remote {
                    addr: msg.addr,
                    src: msg.src,
                    id: msg.packet_id,
                });
            }
            MsgKind::Reply { next_hop } => {
                // Fill as REM and release everyone parked on this address.
                let lc = &mut self.lcs[i];
                let _ = lc.cache.fill(msg.addr, next_hop, Origin::Rem);
                let waiters = lc.waiting.remove(&msg.addr).unwrap_or_default();
                debug_assert!(
                    waiters.remotes.is_empty(),
                    "remote requesters only ever wait at the home LC"
                );
                self.lcs[i].completed += 1 + waiters.locals.len() as u64;
                self.complete_packet(msg.packet_id, now);
                for id in waiters.locals {
                    self.complete_packet(id, now);
                }
            }
            // The cycle-level simulator models one FIL lookup per port
            // per cycle; coalesced batch messages exist only in the
            // threaded dataplane runtime and never enter this fabric.
            MsgKind::BatchRequest(_) | MsgKind::BatchReply(_) => {
                unreachable!("batch messages are a dataplane-runtime construct")
            }
        }
    }

    /// Step 2: admit this cycle's arrival.
    fn admit_arrival(&mut self, i: usize, now: u64) {
        let lc = &mut self.lcs[i];
        if lc.next_packet >= self.config.packets_per_lc {
            return;
        }
        if lc.arrivals.peek() != now {
            return;
        }
        lc.arrivals.advance(&mut lc.rng);
        let id = (i * self.config.packets_per_lc + lc.next_packet) as PacketId;
        let addr = lc.dests[lc.next_packet % lc.dests.len()];
        lc.next_packet += 1;
        self.arrival_cycle[id as usize] = now;
        lc.input.push(WorkItem::Local { id, addr });
    }

    /// Step 3: finish the FE lookup completing this cycle.
    fn fe_complete(&mut self, i: usize, now: u64) {
        if self.lcs[i].fe_job.is_none() || self.lcs[i].fe_busy_until > now {
            return;
        }
        let ActiveFeJob { job, next_hop: nh } = self.lcs[i].fe_job.take().expect("checked above");
        let uses_cache = self.config.kind != RouterKind::Conventional;
        if uses_cache {
            let _ = self.lcs[i].cache.fill(job.addr, nh, Origin::Loc);
        }
        // Release waiters and reply to remote requesters. The emptiness
        // check dodges a per-completion hash on the conventional router,
        // whose waiting lists are permanently empty.
        let waiters = if self.lcs[i].waiting.is_empty() {
            Waiters::default()
        } else {
            self.lcs[i].waiting.remove(&job.addr).unwrap_or_default()
        };
        let mut local_done: Vec<PacketId> = waiters.locals;
        if let Some(id) = job.local_initiator {
            local_done.push(id);
        }
        self.lcs[i].completed += local_done.len() as u64;
        for id in local_done {
            self.complete_packet(id, now);
        }
        let mut replies = waiters.remotes;
        if let Some(r) = job.remote_initiator {
            replies.push(r);
        }
        let src_lc = self.lcs[i].id;
        for (dst, packet_id) in replies {
            self.lcs[i].outgoing.push(FabricMsg {
                kind: MsgKind::Reply { next_hop: nh },
                src: src_lc,
                dst,
                addr: job.addr,
                packet_id,
                sent_at: now,
            });
        }
    }

    /// Step 4: start the next FE lookup. One trie walk yields both the
    /// result (carried on the active job until completion) and, for
    /// [`FeServiceModel::PerLookup`], the charged access count.
    fn fe_start(&mut self, i: usize, now: u64) {
        let lc = &mut self.lcs[i];
        if lc.fe_job.is_some() || lc.fe_queue.is_empty() {
            return;
        }
        let job = lc.fe_queue.pop().expect("non-empty");
        // Lookups are pure and the table is immutable during a run (the
        // same property ActiveFeJob relies on), so a result resolved at
        // batch time equals one resolved now — access count included.
        let counted = if let Some(k) = lc.fe_prefetched.iter().position(|e| e.0 == job.addr) {
            lc.fe_prefetched.swap_remove(k).1
        } else if self.config.fe_batch && !lc.fe_queue.is_empty() {
            // A burst is queued behind this job: resolve up to a quad of
            // addresses through the engine's interleaved batch path and
            // stash the extras for their own start cycles.
            let mut addrs = [job.addr; BATCH_LANES];
            let mut n = 1;
            for queued in lc.fe_queue.iter().take(BATCH_LANES - 1) {
                addrs[n] = queued.addr;
                n += 1;
            }
            let mut out = [CountedLookup::MISS; BATCH_LANES];
            lc.fwd.lookup_batch(&addrs[..n], &mut out[..n]);
            for k in 1..n {
                lc.fe_prefetched.push((addrs[k], out[k]));
            }
            out[0]
        } else {
            lc.fwd.lookup_counted(job.addr)
        };
        let fe_cost = match self.config.fe {
            FeServiceModel::Fixed(c) => c,
            FeServiceModel::PerLookup => self.config.fe.cycles(counted.mem_accesses),
        };
        lc.fe_job = Some(ActiveFeJob {
            job,
            next_hop: counted.next_hop.map(|h| h.0),
        });
        lc.fe_busy_until = now + fe_cost as u64;
        lc.fe_lookups += 1;
        lc.fe_busy_cycles += fe_cost as u64;
    }

    /// Step 5: one LR-cache probe.
    fn probe_cache(&mut self, i: usize, now: u64) {
        let Some(item) = self.lcs[i].input.pop() else {
            return;
        };
        match item {
            WorkItem::Local { id, addr } => self.handle_local(i, id, addr, now),
            WorkItem::Remote { addr, src, id } => self.handle_remote(i, addr, src, id, now),
        }
    }

    fn handle_local(&mut self, i: usize, id: PacketId, addr: u32, now: u64) {
        if self.config.kind == RouterKind::Conventional {
            // No cache at all: every packet is an FE job.
            self.lcs[i].fe_queue.push(FeJob {
                addr,
                local_initiator: Some(id),
                remote_initiator: None,
            });
            return;
        }
        match self.lcs[i].cache.probe(addr) {
            ProbeResult::Hit { .. } => {
                self.lcs[i].completed += 1;
                self.complete_packet(id, now);
            }
            ProbeResult::HitWaiting => {
                self.lcs[i].waiting.entry(addr).or_default().locals.push(id);
            }
            ProbeResult::Miss => {
                let reserved = self.config.early_recording
                    && self.lcs[i].cache.reserve(addr) == ReserveOutcome::Reserved;
                let local_home = self.config.kind == RouterKind::CacheOnly
                    || self.home_of(addr) == self.lcs[i].id;
                if local_home {
                    let initiator = if reserved {
                        self.lcs[i].waiting.entry(addr).or_default().locals.push(id);
                        None
                    } else {
                        Some(id)
                    };
                    self.lcs[i].fe_queue.push(FeJob {
                        addr,
                        local_initiator: initiator,
                        remote_initiator: None,
                    });
                } else {
                    // Remote home: request crosses the fabric. The packet
                    // rides its own request/reply pair; same-address
                    // followers park on the reserved entry.
                    if reserved {
                        // The W entry exists; this packet completes when
                        // the reply fills it (it is the reply's carrier).
                    }
                    let src = self.lcs[i].id;
                    let dst = self.home_of(addr);
                    self.lcs[i].outgoing.push(FabricMsg {
                        kind: MsgKind::Request,
                        src,
                        dst,
                        addr,
                        packet_id: id,
                        sent_at: now,
                    });
                }
            }
        }
    }

    fn handle_remote(&mut self, i: usize, addr: u32, src: u16, id: PacketId, now: u64) {
        debug_assert_eq!(self.config.kind, RouterKind::Spal);
        let src_lc = self.lcs[i].id;
        match self.lcs[i].cache.probe(addr) {
            ProbeResult::Hit { value, .. } => {
                // The home cache answers without touching the FE — the
                // core sharing win of §3.3.
                self.lcs[i].outgoing.push(FabricMsg {
                    kind: MsgKind::Reply { next_hop: value },
                    src: src_lc,
                    dst: src,
                    addr,
                    packet_id: id,
                    sent_at: now,
                });
            }
            ProbeResult::HitWaiting => {
                self.lcs[i]
                    .waiting
                    .entry(addr)
                    .or_default()
                    .remotes
                    .push((src, id));
            }
            ProbeResult::Miss => {
                let reserved = self.config.early_recording
                    && self.lcs[i].cache.reserve(addr) == ReserveOutcome::Reserved;
                let remote_initiator = if reserved {
                    self.lcs[i]
                        .waiting
                        .entry(addr)
                        .or_default()
                        .remotes
                        .push((src, id));
                    None
                } else {
                    Some((src, id))
                };
                self.lcs[i].fe_queue.push(FeJob {
                    addr,
                    local_initiator: None,
                    remote_initiator,
                });
            }
        }
    }

    /// Step 6: inject one outgoing message.
    fn send_outgoing(&mut self, i: usize, now: u64) {
        if self.config.kind != RouterKind::Spal {
            return;
        }
        if self.lcs[i].outgoing.is_empty() {
            return;
        }
        let msg = *self.lcs[i].outgoing.peek().expect("non-empty");
        if self.fabric.send(msg, now).is_ok() {
            let _ = self.lcs[i].outgoing.pop();
            // The one cross-LC state change in the simulator: flag the
            // destination so the next scan recomputes its event horizon
            // (its cached entry cannot know about this message).
            self.lc_next[msg.dst as usize] = 0;
        }
    }

    fn report(self) -> SimReport {
        let fabric_stats: FabricStats = *self.fabric.stats();
        let per_lc = self
            .lcs
            .iter()
            .map(|lc| LcReport {
                lc: lc.id as usize,
                packets: lc.completed,
                cache: *lc.cache.stats(),
                fe_lookups: lc.fe_lookups,
                fe_busy_cycles: lc.fe_busy_cycles,
                fe_queue_high_water: lc.fe_queue.high_water(),
            })
            .collect();
        SimReport {
            latency: self.latency,
            per_lc,
            fabric: fabric_stats,
            cycles: self.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::synth;
    use spal_traffic::{preset, LcSpeed, PresetName, TracePreset};

    fn tiny_config(kind: RouterKind, psi: usize) -> SimConfig {
        SimConfig {
            kind,
            psi,
            speed: LcSpeed::Gbps40,
            fe: FeServiceModel::Fixed(40),
            cache: LrCacheConfig {
                blocks: 512,
                ..LrCacheConfig::default()
            },
            packets_per_lc: 3_000,
            seed: 7,
            ..SimConfig::default()
        }
    }

    fn tiny_traces(table: &RoutingTable, n: usize) -> Vec<Trace> {
        let p = TracePreset {
            distinct: 1_500,
            ..preset(PresetName::D75)
        };
        p.generate(table, 3_000 * n, 3).split(n)
    }

    #[test]
    fn spal_sim_completes_all_packets() {
        let rt = synth::small(71);
        let cfg = tiny_config(RouterKind::Spal, 4);
        let traces = tiny_traces(&rt, 4);
        let report = RouterSim::new(&rt, &traces, cfg).run();
        assert_eq!(report.latency.count(), 4 * 3_000);
        assert!(report.mean_lookup_cycles() >= 1.0);
        // With good locality the mean sits well below the 40-cycle FE.
        assert!(
            report.mean_lookup_cycles() < 40.0,
            "mean {}",
            report.mean_lookup_cycles()
        );
        assert!(report.hit_rate() > 0.5, "hit rate {}", report.hit_rate());
    }

    #[test]
    fn spal_sim_is_deterministic() {
        let rt = synth::small(73);
        let traces = tiny_traces(&rt, 2);
        let a = RouterSim::new(&rt, &traces, tiny_config(RouterKind::Spal, 2)).run();
        let b = RouterSim::new(&rt, &traces, tiny_config(RouterKind::Spal, 2)).run();
        assert_eq!(a.mean_lookup_cycles(), b.mean_lookup_cycles());
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn cache_only_sim_completes() {
        let rt = synth::small(79);
        let cfg = tiny_config(RouterKind::CacheOnly, 2);
        let traces = tiny_traces(&rt, 2);
        let report = RouterSim::new(&rt, &traces, cfg).run();
        assert_eq!(report.latency.count(), 2 * 3_000);
        // No fabric traffic ever.
        assert_eq!(report.fabric.sent, 0);
    }

    #[test]
    fn conventional_sim_at_low_load() {
        // 10 Gbps (mean gap 40) with a 40-cycle FE is borderline; use a
        // faster FE to stay stable and verify every packet pays FE time.
        let rt = synth::small(83);
        let cfg = SimConfig {
            kind: RouterKind::Conventional,
            psi: 2,
            speed: LcSpeed::Gbps10,
            fe: FeServiceModel::Fixed(20),
            packets_per_lc: 2_000,
            seed: 9,
            ..SimConfig::default()
        };
        let traces = tiny_traces(&rt, 2);
        let report = RouterSim::new(&rt, &traces, cfg).run();
        assert_eq!(report.latency.count(), 2 * 2_000);
        // Every lookup costs at least the FE service time.
        assert!(report.mean_lookup_cycles() >= 20.0);
        let fe_total: u64 = report.per_lc.iter().map(|l| l.fe_lookups).sum();
        assert_eq!(fe_total, 2 * 2_000);
    }

    #[test]
    fn fe_batch_drain_is_report_identical() {
        // The batched FE drain must not change simulation results at
        // all — PerLookup makes every access count load-bearing for
        // timing, and Conventional at 40G keeps the FE queue deep so
        // real quads are issued.
        let rt = synth::small(97);
        for kind in [
            RouterKind::Conventional,
            RouterKind::Spal,
            RouterKind::CacheOnly,
        ] {
            let cfg = SimConfig {
                fe: FeServiceModel::PerLookup,
                ..tiny_config(kind, 2)
            };
            let traces = tiny_traces(&rt, 2);
            let batched = RouterSim::new(&rt, &traces, cfg.clone()).run();
            let scalar = RouterSim::new(
                &rt,
                &traces,
                SimConfig {
                    fe_batch: false,
                    ..cfg
                },
            )
            .run();
            assert_eq!(batched, scalar, "{kind:?}");
        }
    }

    #[test]
    fn spal_beats_conventional_and_cache_only_on_fe_load() {
        let rt = synth::small(89);
        let traces = tiny_traces(&rt, 4);
        let spal = RouterSim::new(&rt, &traces, tiny_config(RouterKind::Spal, 4)).run();
        let cache_only = RouterSim::new(&rt, &traces, tiny_config(RouterKind::CacheOnly, 4)).run();
        let fe = |r: &SimReport| r.per_lc.iter().map(|l| l.fe_lookups).sum::<u64>();
        // Sharing means strictly fewer FE lookups than cache-only.
        assert!(
            fe(&spal) < fe(&cache_only),
            "spal {} vs cache-only {}",
            fe(&spal),
            fe(&cache_only)
        );
    }

    #[test]
    fn remote_lookups_cross_the_fabric() {
        let rt = synth::small(97);
        let cfg = tiny_config(RouterKind::Spal, 4);
        let traces = tiny_traces(&rt, 4);
        let report = RouterSim::new(&rt, &traces, cfg).run();
        assert!(report.fabric.sent > 0);
        assert_eq!(report.fabric.sent, report.fabric.delivered);
    }

    #[test]
    fn per_lookup_fe_model_runs() {
        let rt = synth::small(101);
        let cfg = SimConfig {
            fe: FeServiceModel::PerLookup,
            ..tiny_config(RouterKind::Spal, 2)
        };
        let traces = tiny_traces(&rt, 2);
        let report = RouterSim::new(&rt, &traces, cfg).run();
        assert_eq!(report.latency.count(), 2 * 3_000);
    }

    #[test]
    fn psi_one_spal_has_no_fabric_traffic() {
        let rt = synth::small(103);
        let cfg = tiny_config(RouterKind::Spal, 1);
        let traces = tiny_traces(&rt, 1);
        let report = RouterSim::new(&rt, &traces, cfg).run();
        assert_eq!(report.fabric.sent, 0);
        assert_eq!(report.latency.count(), 3_000);
    }

    #[test]
    fn disabling_early_recording_duplicates_work() {
        let rt = synth::small(109);
        let traces = tiny_traces(&rt, 4);
        let with = RouterSim::new(&rt, &traces, tiny_config(RouterKind::Spal, 4)).run();
        let without = RouterSim::new(
            &rt,
            &traces,
            SimConfig {
                early_recording: false,
                ..tiny_config(RouterKind::Spal, 4)
            },
        )
        .run();
        // Without reservations there are no waiting hits and at least as
        // much fabric traffic.
        let waiting: u64 = without.per_lc.iter().map(|l| l.cache.hits_waiting).sum();
        assert_eq!(waiting, 0);
        assert!(
            without.fabric.sent >= with.fabric.sent,
            "without {} vs with {}",
            without.fabric.sent,
            with.fabric.sent
        );
        assert_eq!(without.latency.count(), with.latency.count());
    }

    #[test]
    fn update_flushes_slow_lookups_but_preserve_liveness() {
        let rt = synth::small(113);
        let traces = tiny_traces(&rt, 2);
        let base = tiny_config(RouterKind::Spal, 2);
        let no_flush = RouterSim::new(&rt, &traces, base.clone()).run();
        let flushy = RouterSim::new(
            &rt,
            &traces,
            SimConfig {
                flush_interval_cycles: Some(2_000),
                ..base
            },
        )
        .run();
        // Everything still completes, and frequent flushes cost latency.
        assert_eq!(flushy.latency.count(), no_flush.latency.count());
        assert!(
            flushy.mean_lookup_cycles() > no_flush.mean_lookup_cycles(),
            "flushy {} vs {}",
            flushy.mean_lookup_cycles(),
            no_flush.mean_lookup_cycles()
        );
        let flushes: u64 = flushy.per_lc.iter().map(|l| l.cache.flushes).sum();
        assert!(flushes > 0);
    }

    #[test]
    fn short_traces_wrap_around_and_index_scheme_matters() {
        // A trace shorter than packets_per_lc is replayed cyclically.
        // Destinations are /24 *base* addresses — low bits all zero — the
        // pathological stride for low-bit set indexing.
        use spal_cache::IndexScheme;
        let rt = synth::small(131);
        // Sample prefixes spread across the table (adjacent sorted
        // entries share allocation blocks and would cluster under any
        // index scheme).
        let short = Trace::new(
            "short",
            rt.entries()
                .iter()
                .step_by(19)
                .take(50)
                .map(|e| e.prefix.first_addr())
                .collect(),
        );
        let run = |scheme: IndexScheme| {
            let base = tiny_config(RouterKind::Spal, 2);
            let cfg = SimConfig {
                packets_per_lc: 2_000,
                cache: LrCacheConfig {
                    index_scheme: scheme,
                    ..base.cache
                },
                ..base
            };
            RouterSim::new(&rt, &[short.clone(), short.clone()], cfg).run()
        };
        // Everything completes under either scheme.
        let low = run(IndexScheme::LowBits);
        let fold = run(IndexScheme::XorFold);
        assert_eq!(low.latency.count(), 2 * 2_000);
        assert_eq!(fold.latency.count(), 2 * 2_000);
        // Aligned destinations pile into one set under LowBits; XOR
        // folding spreads them and 50 addresses become ~all hits.
        assert!(low.hit_rate() < 0.5, "LowBits hit rate {}", low.hit_rate());
        assert!(
            fold.hit_rate() > 0.9,
            "XorFold hit rate {}",
            fold.hit_rate()
        );
    }

    #[test]
    fn shared_bus_fabric_serialises_but_completes() {
        use spal_fabric::FabricModel;
        let rt = synth::small(137);
        let traces = tiny_traces(&rt, 4);
        let base = tiny_config(RouterKind::Spal, 4);
        let crossbar = RouterSim::new(&rt, &traces, base.clone()).run();
        let bus = RouterSim::new(
            &rt,
            &traces,
            SimConfig {
                fabric: FabricModel::SharedBus,
                ..base
            },
        )
        .run();
        // Everything completes on either fabric; the single bus slot per
        // cycle adds queueing relative to the crossbar.
        assert_eq!(bus.latency.count(), crossbar.latency.count());
        assert!(bus.fabric.sent > 0);
        assert!(
            bus.mean_lookup_cycles() >= crossbar.mean_lookup_cycles() * 0.95,
            "bus {} vs crossbar {}",
            bus.mean_lookup_cycles(),
            crossbar.mean_lookup_cycles()
        );
    }

    #[test]
    fn warmup_excludes_cold_start_from_stats() {
        let rt = synth::small(127);
        let traces = tiny_traces(&rt, 2);
        let base = tiny_config(RouterKind::Spal, 2);
        let cold = RouterSim::new(&rt, &traces, base.clone()).run();
        let warm = RouterSim::new(
            &rt,
            &traces,
            SimConfig {
                measure_after_cycle: 10_000,
                ..base
            },
        )
        .run();
        // Fewer measured packets, but all still processed; the warm mean
        // is lower because compulsory misses fall in the excluded window.
        assert!(warm.latency.count() < cold.latency.count());
        assert!(warm.latency.count() > 0);
        assert!(
            warm.mean_lookup_cycles() <= cold.mean_lookup_cycles(),
            "warm {} vs cold {}",
            warm.mean_lookup_cycles(),
            cold.mean_lookup_cycles()
        );
    }

    #[test]
    fn fast_forward_actually_skips_cycles() {
        // At 10 Gbps (mean gap 40) the router idles most cycles; the
        // fast engine must execute only a small fraction of them, for
        // every router kind — including the backlogged conventional one,
        // whose quiet stretches sit between FE completions rather than
        // between arrivals.
        let rt = synth::small(139);
        for kind in [
            RouterKind::Spal,
            RouterKind::CacheOnly,
            RouterKind::Conventional,
        ] {
            let cfg = SimConfig {
                speed: LcSpeed::Gbps10,
                packets_per_lc: 1_000,
                ..tiny_config(kind, 2)
            };
            let traces = tiny_traces(&rt, 2);
            let mut sim = RouterSim::new(&rt, &traces, cfg);
            let limit = 1_000 * 40 * 4; // generous drain window
            while sim.now() < limit && sim.progress().0 < sim.progress().1 {
                sim.step();
            }
            let (executed, total) = (sim.executed_cycles(), sim.now());
            assert!(
                executed * 3 < total,
                "{kind:?}: executed {executed} of {total} cycles — fast-forward not engaging"
            );
        }
    }

    #[test]
    fn run_for_partial() {
        let rt = synth::small(107);
        let cfg = tiny_config(RouterKind::Spal, 2);
        let traces = tiny_traces(&rt, 2);
        let report = RouterSim::new(&rt, &traces, cfg).run_for(500);
        assert!(report.cycles <= 500);
        assert!(report.latency.count() < 2 * 3_000);
    }
}
