//! The cycle-driven router simulator.
//!
//! One [`RouterSim`] owns ψ line cards, the switching fabric and the
//! packet accounting, and advances them cycle by cycle through the §3.3
//! flows. The per-cycle, per-LC order is:
//!
//! 1. deliver at most one fabric message (replies are cache *writes* and
//!    are processed immediately; requests join the input queue and wait
//!    for the single cache probe port);
//! 2. admit this cycle's packet arrival, if any, to the input queue;
//! 3. complete the FE lookup finishing this cycle (fill the LR-cache as
//!    LOC, release local waiters, queue replies to remote requesters);
//! 4. start the next FE lookup if the engine is idle;
//! 5. probe the LR-cache with the head of the input queue (at most one
//!    probe per cycle, §5.1) and act on the outcome;
//! 6. inject the head of the outgoing queue into the fabric.

use crate::config::{FeServiceModel, RouterKind, SimConfig};
use crate::metrics::LatencyStats;
use crate::report::{LcReport, SimReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spal_cache::{LrCache, LrCacheConfig, Origin, ProbeResult, ReserveOutcome};
use spal_core::{ForwardingTable, Partitioning};
use spal_fabric::{FabricMsg, FabricStats, MsgKind, Queue, SwitchingFabric};
use spal_lpm::Lpm;
use spal_rib::RoutingTable;
use spal_traffic::{ArrivalProcess, Trace};
use std::collections::HashMap;

/// Identifies a packet across the run.
type PacketId = u64;

/// An item waiting for the LR-cache probe port.
#[derive(Debug, Clone, Copy)]
enum WorkItem {
    /// A packet that arrived on this LC's external links.
    Local { id: PacketId, addr: u32 },
    /// A lookup request that arrived over the fabric.
    Remote { addr: u32, src: u16, id: PacketId },
}

/// Parties waiting on an in-flight lookup for one address at one LC.
#[derive(Debug, Default)]
struct Waiters {
    /// Local packets parked on the W-bit entry.
    locals: Vec<PacketId>,
    /// Remote requesters (home LC only): reply targets.
    remotes: Vec<(u16, PacketId)>,
}

/// A unit of work for the forwarding engine.
#[derive(Debug, Clone, Copy)]
struct FeJob {
    addr: u32,
    /// The local packet that triggered this job *without* managing to
    /// reserve a cache block (otherwise completion flows through the
    /// waiting list).
    local_initiator: Option<PacketId>,
    /// Likewise for a remote requester whose reservation failed.
    remote_initiator: Option<(u16, PacketId)>,
}

struct Lc {
    id: u16,
    fwd: ForwardingTable,
    cache: LrCache<Option<u16>>,
    input: Queue<WorkItem>,
    outgoing: Queue<FabricMsg>,
    fe_queue: Queue<FeJob>,
    fe_busy_until: u64,
    fe_job: Option<FeJob>,
    fe_lookups: u64,
    fe_busy_cycles: u64,
    waiting: HashMap<u32, Waiters>,
    dests: Vec<u32>,
    next_packet: usize,
    arrivals: ArrivalProcess,
    rng: StdRng,
    completed: u64,
}

/// The simulator.
///
/// ```
/// use spal_cache::LrCacheConfig;
/// use spal_rib::synth;
/// use spal_sim::{RouterKind, RouterSim, SimConfig};
/// use spal_traffic::{preset, PresetName, TracePreset};
///
/// let table = synth::small(3);
/// let preset = TracePreset { distinct: 500, ..preset(PresetName::D75) };
/// let traces = preset.generate(&table, 2 * 2_000, 1).split(2);
/// let report = RouterSim::new(&table, &traces, SimConfig {
///     kind: RouterKind::Spal,
///     psi: 2,
///     cache: LrCacheConfig { blocks: 256, ..Default::default() },
///     packets_per_lc: 2_000,
///     ..SimConfig::default()
/// }).run();
/// assert_eq!(report.latency.count(), 4_000); // every packet completed
/// assert!(report.mean_lookup_cycles() < 40.0); // beats the bare FE
/// ```
pub struct RouterSim {
    config: SimConfig,
    partitioning: Option<Partitioning>,
    lcs: Vec<Lc>,
    fabric: SwitchingFabric,
    /// Arrival cycle per packet id.
    arrival_cycle: Vec<u64>,
    latency: LatencyStats,
    completed: u64,
    total_packets: u64,
    now: u64,
}

impl RouterSim {
    /// Build a simulator over `table`, feeding each LC its slice of
    /// `traces` (trace `i % traces.len()` drives LC `i`; destinations
    /// wrap if the trace is shorter than `packets_per_lc`).
    pub fn new(table: &RoutingTable, traces: &[Trace], config: SimConfig) -> Self {
        assert!(config.psi >= 1, "need at least one LC");
        assert!(!traces.is_empty(), "need at least one trace");
        assert!(
            traces.iter().all(|t| !t.is_empty()),
            "traces must be non-empty"
        );
        let partitioning = match config.kind {
            RouterKind::Spal => {
                let eta = spal_core::bits::eta_for(config.psi);
                let bits = spal_core::bits::select_bits(table, eta);
                Some(Partitioning::new(table, bits, config.psi))
            }
            _ => None,
        };
        let per_lc_tables: Vec<RoutingTable> = match &partitioning {
            Some(p) => p.forwarding_tables(table),
            None => vec![table.clone(); config.psi],
        };
        let lcs: Vec<Lc> = per_lc_tables
            .iter()
            .enumerate()
            .map(|(i, part)| Lc {
                id: i as u16,
                fwd: ForwardingTable::build(config.algorithm, part),
                cache: LrCache::new(LrCacheConfig {
                    seed: config.cache.seed.wrapping_add(i as u64),
                    ..config.cache.clone()
                }),
                input: Queue::unbounded(),
                outgoing: Queue::unbounded(),
                fe_queue: Queue::unbounded(),
                fe_busy_until: 0,
                fe_job: None,
                fe_lookups: 0,
                fe_busy_cycles: 0,
                waiting: HashMap::new(),
                dests: traces[i % traces.len()].destinations().to_vec(),
                next_packet: 0,
                arrivals: ArrivalProcess::new(config.speed),
                rng: StdRng::seed_from_u64(config.seed.wrapping_add(0x9E37_79B9 * i as u64)),
                completed: 0,
            })
            .collect();
        let fabric = SwitchingFabric::new(config.fabric, config.psi);
        let total_packets = (config.psi * config.packets_per_lc) as u64;
        RouterSim {
            arrival_cycle: vec![0; total_packets as usize],
            partitioning,
            lcs,
            fabric,
            latency: LatencyStats::new(),
            completed: 0,
            total_packets,
            now: 0,
            config,
        }
    }

    /// The partitioning in use (SPAL runs only).
    pub fn partitioning(&self) -> Option<&Partitioning> {
        self.partitioning.as_ref()
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Completed / total packets.
    pub fn progress(&self) -> (u64, u64) {
        (self.completed, self.total_packets)
    }

    /// Run to completion and report. Panics if the simulation fails to
    /// drain within a generous safety bound (an unstable configuration,
    /// e.g. the conventional router at 40 Gbps, where the FE cannot keep
    /// up — use [`RouterSim::run_for`] to study those).
    pub fn run(mut self) -> SimReport {
        // Worst-case drain bound: every packet serialised through an FE.
        let bound = self.total_packets * (self.config.fe.cycles(32) as u64 + 100) + 10_000;
        while self.completed < self.total_packets {
            self.step();
            assert!(
                self.now < bound,
                "simulation failed to drain by cycle {} ({}/{} packets done) — unstable config?",
                self.now,
                self.completed,
                self.total_packets
            );
        }
        self.report()
    }

    /// Run for a fixed number of cycles (for open-loop/unstable studies)
    /// and report on whatever completed.
    pub fn run_for(mut self, cycles: u64) -> SimReport {
        while self.now < cycles && self.completed < self.total_packets {
            self.step();
        }
        self.report()
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        // Routing-table update: flush every LR-cache (§3.2). Waiting
        // lists live beside the cache, so in-flight lookups still
        // complete; their results simply re-enter cold caches.
        if let Some(interval) = self.config.flush_interval_cycles {
            if now > 0
                && now.is_multiple_of(interval)
                && self.config.kind != RouterKind::Conventional
            {
                for lc in &mut self.lcs {
                    lc.cache.flush();
                }
            }
        }
        for i in 0..self.lcs.len() {
            self.receive_fabric(i, now);
            self.admit_arrival(i, now);
            self.fe_complete(i, now);
            self.fe_start(i, now);
            self.probe_cache(i, now);
            self.send_outgoing(i, now);
        }
        self.now += 1;
    }

    fn home_of(&self, addr: u32) -> u16 {
        match &self.partitioning {
            Some(p) => p.home_of(addr),
            None => u16::MAX, // unused: non-SPAL kinds never ask
        }
    }

    fn complete_packet(&mut self, id: PacketId, now: u64) {
        let arrived = self.arrival_cycle[id as usize];
        if arrived >= self.config.measure_after_cycle {
            self.latency.record(now - arrived + 1);
        }
        self.completed += 1;
    }

    /// Step 1: deliver one fabric message.
    fn receive_fabric(&mut self, i: usize, now: u64) {
        if self.config.kind != RouterKind::Spal {
            return;
        }
        let Some(msg) = self.fabric.receive(self.lcs[i].id, now) else {
            return;
        };
        match msg.kind {
            MsgKind::Request => {
                self.lcs[i].input.push(WorkItem::Remote {
                    addr: msg.addr,
                    src: msg.src,
                    id: msg.packet_id,
                });
            }
            MsgKind::Reply { next_hop } => {
                // Fill as REM and release everyone parked on this address.
                let lc = &mut self.lcs[i];
                let _ = lc.cache.fill(msg.addr, next_hop, Origin::Rem);
                let waiters = lc.waiting.remove(&msg.addr).unwrap_or_default();
                debug_assert!(
                    waiters.remotes.is_empty(),
                    "remote requesters only ever wait at the home LC"
                );
                self.lcs[i].completed += 1 + waiters.locals.len() as u64;
                self.complete_packet(msg.packet_id, now);
                for id in waiters.locals {
                    self.complete_packet(id, now);
                }
            }
        }
    }

    /// Step 2: admit this cycle's arrival.
    fn admit_arrival(&mut self, i: usize, now: u64) {
        let lc = &mut self.lcs[i];
        if lc.next_packet >= self.config.packets_per_lc {
            return;
        }
        if lc.arrivals.peek() != now {
            return;
        }
        lc.arrivals.advance(&mut lc.rng);
        let id = (i * self.config.packets_per_lc + lc.next_packet) as PacketId;
        let addr = lc.dests[lc.next_packet % lc.dests.len()];
        lc.next_packet += 1;
        self.arrival_cycle[id as usize] = now;
        lc.input.push(WorkItem::Local { id, addr });
    }

    /// Step 3: finish the FE lookup completing this cycle.
    fn fe_complete(&mut self, i: usize, now: u64) {
        if self.lcs[i].fe_job.is_none() || self.lcs[i].fe_busy_until > now {
            return;
        }
        let job = self.lcs[i].fe_job.take().expect("checked above");
        let counted = self.lcs[i].fwd.lookup_counted(job.addr);
        let nh = counted.next_hop.map(|h| h.0);
        let uses_cache = self.config.kind != RouterKind::Conventional;
        if uses_cache {
            let _ = self.lcs[i].cache.fill(job.addr, nh, Origin::Loc);
        }
        // Release waiters and reply to remote requesters.
        let waiters = self.lcs[i].waiting.remove(&job.addr).unwrap_or_default();
        let mut local_done: Vec<PacketId> = waiters.locals;
        if let Some(id) = job.local_initiator {
            local_done.push(id);
        }
        self.lcs[i].completed += local_done.len() as u64;
        for id in local_done {
            self.complete_packet(id, now);
        }
        let mut replies = waiters.remotes;
        if let Some(r) = job.remote_initiator {
            replies.push(r);
        }
        let src_lc = self.lcs[i].id;
        for (dst, packet_id) in replies {
            self.lcs[i].outgoing.push(FabricMsg {
                kind: MsgKind::Reply { next_hop: nh },
                src: src_lc,
                dst,
                addr: job.addr,
                packet_id,
                sent_at: now,
            });
        }
    }

    /// Step 4: start the next FE lookup.
    fn fe_start(&mut self, i: usize, now: u64) {
        let fe_cost = {
            let lc = &self.lcs[i];
            if lc.fe_job.is_some() || lc.fe_queue.is_empty() {
                return;
            }
            match self.config.fe {
                FeServiceModel::Fixed(c) => c,
                FeServiceModel::PerLookup => {
                    // Charge the actual access count of this lookup.
                    let addr = lc.fe_queue.peek().expect("non-empty").addr;
                    let accesses = lc.fwd.lookup_counted(addr).mem_accesses;
                    self.config.fe.cycles(accesses)
                }
            }
        };
        let lc = &mut self.lcs[i];
        let job = lc.fe_queue.pop().expect("non-empty");
        lc.fe_job = Some(job);
        lc.fe_busy_until = now + fe_cost as u64;
        lc.fe_lookups += 1;
        lc.fe_busy_cycles += fe_cost as u64;
    }

    /// Step 5: one LR-cache probe.
    fn probe_cache(&mut self, i: usize, now: u64) {
        let Some(item) = self.lcs[i].input.pop() else {
            return;
        };
        match item {
            WorkItem::Local { id, addr } => self.handle_local(i, id, addr, now),
            WorkItem::Remote { addr, src, id } => self.handle_remote(i, addr, src, id, now),
        }
    }

    fn handle_local(&mut self, i: usize, id: PacketId, addr: u32, now: u64) {
        if self.config.kind == RouterKind::Conventional {
            // No cache at all: every packet is an FE job.
            self.lcs[i].fe_queue.push(FeJob {
                addr,
                local_initiator: Some(id),
                remote_initiator: None,
            });
            return;
        }
        match self.lcs[i].cache.probe(addr) {
            ProbeResult::Hit { .. } => {
                self.lcs[i].completed += 1;
                self.complete_packet(id, now);
            }
            ProbeResult::HitWaiting => {
                self.lcs[i].waiting.entry(addr).or_default().locals.push(id);
            }
            ProbeResult::Miss => {
                let reserved = self.config.early_recording
                    && self.lcs[i].cache.reserve(addr) == ReserveOutcome::Reserved;
                let local_home = self.config.kind == RouterKind::CacheOnly
                    || self.home_of(addr) == self.lcs[i].id;
                if local_home {
                    let initiator = if reserved {
                        self.lcs[i].waiting.entry(addr).or_default().locals.push(id);
                        None
                    } else {
                        Some(id)
                    };
                    self.lcs[i].fe_queue.push(FeJob {
                        addr,
                        local_initiator: initiator,
                        remote_initiator: None,
                    });
                } else {
                    // Remote home: request crosses the fabric. The packet
                    // rides its own request/reply pair; same-address
                    // followers park on the reserved entry.
                    if reserved {
                        // The W entry exists; this packet completes when
                        // the reply fills it (it is the reply's carrier).
                    }
                    let src = self.lcs[i].id;
                    let dst = self.home_of(addr);
                    self.lcs[i].outgoing.push(FabricMsg {
                        kind: MsgKind::Request,
                        src,
                        dst,
                        addr,
                        packet_id: id,
                        sent_at: now,
                    });
                }
            }
        }
    }

    fn handle_remote(&mut self, i: usize, addr: u32, src: u16, id: PacketId, now: u64) {
        debug_assert_eq!(self.config.kind, RouterKind::Spal);
        let src_lc = self.lcs[i].id;
        match self.lcs[i].cache.probe(addr) {
            ProbeResult::Hit { value, .. } => {
                // The home cache answers without touching the FE — the
                // core sharing win of §3.3.
                self.lcs[i].outgoing.push(FabricMsg {
                    kind: MsgKind::Reply { next_hop: value },
                    src: src_lc,
                    dst: src,
                    addr,
                    packet_id: id,
                    sent_at: now,
                });
            }
            ProbeResult::HitWaiting => {
                self.lcs[i]
                    .waiting
                    .entry(addr)
                    .or_default()
                    .remotes
                    .push((src, id));
            }
            ProbeResult::Miss => {
                let reserved = self.config.early_recording
                    && self.lcs[i].cache.reserve(addr) == ReserveOutcome::Reserved;
                let remote_initiator = if reserved {
                    self.lcs[i]
                        .waiting
                        .entry(addr)
                        .or_default()
                        .remotes
                        .push((src, id));
                    None
                } else {
                    Some((src, id))
                };
                self.lcs[i].fe_queue.push(FeJob {
                    addr,
                    local_initiator: None,
                    remote_initiator,
                });
            }
        }
    }

    /// Step 6: inject one outgoing message.
    fn send_outgoing(&mut self, i: usize, now: u64) {
        if self.config.kind != RouterKind::Spal {
            return;
        }
        if self.lcs[i].outgoing.is_empty() {
            return;
        }
        let msg = *self.lcs[i].outgoing.peek().expect("non-empty");
        if self.fabric.send(msg, now).is_ok() {
            let _ = self.lcs[i].outgoing.pop();
        }
    }

    fn report(self) -> SimReport {
        let fabric_stats: FabricStats = *self.fabric.stats();
        let per_lc = self
            .lcs
            .iter()
            .map(|lc| LcReport {
                lc: lc.id as usize,
                packets: lc.completed,
                cache: *lc.cache.stats(),
                fe_lookups: lc.fe_lookups,
                fe_busy_cycles: lc.fe_busy_cycles,
                fe_queue_high_water: lc.fe_queue.high_water(),
            })
            .collect();
        SimReport {
            latency: self.latency,
            per_lc,
            fabric: fabric_stats,
            cycles: self.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::synth;
    use spal_traffic::{preset, LcSpeed, PresetName, TracePreset};

    fn tiny_config(kind: RouterKind, psi: usize) -> SimConfig {
        SimConfig {
            kind,
            psi,
            speed: LcSpeed::Gbps40,
            fe: FeServiceModel::Fixed(40),
            cache: LrCacheConfig {
                blocks: 512,
                ..LrCacheConfig::default()
            },
            packets_per_lc: 3_000,
            seed: 7,
            ..SimConfig::default()
        }
    }

    fn tiny_traces(table: &RoutingTable, n: usize) -> Vec<Trace> {
        let p = TracePreset {
            distinct: 1_500,
            ..preset(PresetName::D75)
        };
        p.generate(table, 3_000 * n, 3).split(n)
    }

    #[test]
    fn spal_sim_completes_all_packets() {
        let rt = synth::small(71);
        let cfg = tiny_config(RouterKind::Spal, 4);
        let traces = tiny_traces(&rt, 4);
        let report = RouterSim::new(&rt, &traces, cfg).run();
        assert_eq!(report.latency.count(), 4 * 3_000);
        assert!(report.mean_lookup_cycles() >= 1.0);
        // With good locality the mean sits well below the 40-cycle FE.
        assert!(
            report.mean_lookup_cycles() < 40.0,
            "mean {}",
            report.mean_lookup_cycles()
        );
        assert!(report.hit_rate() > 0.5, "hit rate {}", report.hit_rate());
    }

    #[test]
    fn spal_sim_is_deterministic() {
        let rt = synth::small(73);
        let traces = tiny_traces(&rt, 2);
        let a = RouterSim::new(&rt, &traces, tiny_config(RouterKind::Spal, 2)).run();
        let b = RouterSim::new(&rt, &traces, tiny_config(RouterKind::Spal, 2)).run();
        assert_eq!(a.mean_lookup_cycles(), b.mean_lookup_cycles());
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn cache_only_sim_completes() {
        let rt = synth::small(79);
        let cfg = tiny_config(RouterKind::CacheOnly, 2);
        let traces = tiny_traces(&rt, 2);
        let report = RouterSim::new(&rt, &traces, cfg).run();
        assert_eq!(report.latency.count(), 2 * 3_000);
        // No fabric traffic ever.
        assert_eq!(report.fabric.sent, 0);
    }

    #[test]
    fn conventional_sim_at_low_load() {
        // 10 Gbps (mean gap 40) with a 40-cycle FE is borderline; use a
        // faster FE to stay stable and verify every packet pays FE time.
        let rt = synth::small(83);
        let cfg = SimConfig {
            kind: RouterKind::Conventional,
            psi: 2,
            speed: LcSpeed::Gbps10,
            fe: FeServiceModel::Fixed(20),
            packets_per_lc: 2_000,
            seed: 9,
            ..SimConfig::default()
        };
        let traces = tiny_traces(&rt, 2);
        let report = RouterSim::new(&rt, &traces, cfg).run();
        assert_eq!(report.latency.count(), 2 * 2_000);
        // Every lookup costs at least the FE service time.
        assert!(report.mean_lookup_cycles() >= 20.0);
        let fe_total: u64 = report.per_lc.iter().map(|l| l.fe_lookups).sum();
        assert_eq!(fe_total, 2 * 2_000);
    }

    #[test]
    fn spal_beats_conventional_and_cache_only_on_fe_load() {
        let rt = synth::small(89);
        let traces = tiny_traces(&rt, 4);
        let spal = RouterSim::new(&rt, &traces, tiny_config(RouterKind::Spal, 4)).run();
        let cache_only = RouterSim::new(&rt, &traces, tiny_config(RouterKind::CacheOnly, 4)).run();
        let fe = |r: &SimReport| r.per_lc.iter().map(|l| l.fe_lookups).sum::<u64>();
        // Sharing means strictly fewer FE lookups than cache-only.
        assert!(
            fe(&spal) < fe(&cache_only),
            "spal {} vs cache-only {}",
            fe(&spal),
            fe(&cache_only)
        );
    }

    #[test]
    fn remote_lookups_cross_the_fabric() {
        let rt = synth::small(97);
        let cfg = tiny_config(RouterKind::Spal, 4);
        let traces = tiny_traces(&rt, 4);
        let report = RouterSim::new(&rt, &traces, cfg).run();
        assert!(report.fabric.sent > 0);
        assert_eq!(report.fabric.sent, report.fabric.delivered);
    }

    #[test]
    fn per_lookup_fe_model_runs() {
        let rt = synth::small(101);
        let cfg = SimConfig {
            fe: FeServiceModel::PerLookup,
            ..tiny_config(RouterKind::Spal, 2)
        };
        let traces = tiny_traces(&rt, 2);
        let report = RouterSim::new(&rt, &traces, cfg).run();
        assert_eq!(report.latency.count(), 2 * 3_000);
    }

    #[test]
    fn psi_one_spal_has_no_fabric_traffic() {
        let rt = synth::small(103);
        let cfg = tiny_config(RouterKind::Spal, 1);
        let traces = tiny_traces(&rt, 1);
        let report = RouterSim::new(&rt, &traces, cfg).run();
        assert_eq!(report.fabric.sent, 0);
        assert_eq!(report.latency.count(), 3_000);
    }

    #[test]
    fn disabling_early_recording_duplicates_work() {
        let rt = synth::small(109);
        let traces = tiny_traces(&rt, 4);
        let with = RouterSim::new(&rt, &traces, tiny_config(RouterKind::Spal, 4)).run();
        let without = RouterSim::new(
            &rt,
            &traces,
            SimConfig {
                early_recording: false,
                ..tiny_config(RouterKind::Spal, 4)
            },
        )
        .run();
        // Without reservations there are no waiting hits and at least as
        // much fabric traffic.
        let waiting: u64 = without.per_lc.iter().map(|l| l.cache.hits_waiting).sum();
        assert_eq!(waiting, 0);
        assert!(
            without.fabric.sent >= with.fabric.sent,
            "without {} vs with {}",
            without.fabric.sent,
            with.fabric.sent
        );
        assert_eq!(without.latency.count(), with.latency.count());
    }

    #[test]
    fn update_flushes_slow_lookups_but_preserve_liveness() {
        let rt = synth::small(113);
        let traces = tiny_traces(&rt, 2);
        let base = tiny_config(RouterKind::Spal, 2);
        let no_flush = RouterSim::new(&rt, &traces, base.clone()).run();
        let flushy = RouterSim::new(
            &rt,
            &traces,
            SimConfig {
                flush_interval_cycles: Some(2_000),
                ..base
            },
        )
        .run();
        // Everything still completes, and frequent flushes cost latency.
        assert_eq!(flushy.latency.count(), no_flush.latency.count());
        assert!(
            flushy.mean_lookup_cycles() > no_flush.mean_lookup_cycles(),
            "flushy {} vs {}",
            flushy.mean_lookup_cycles(),
            no_flush.mean_lookup_cycles()
        );
        let flushes: u64 = flushy.per_lc.iter().map(|l| l.cache.flushes).sum();
        assert!(flushes > 0);
    }

    #[test]
    fn short_traces_wrap_around_and_index_scheme_matters() {
        // A trace shorter than packets_per_lc is replayed cyclically.
        // Destinations are /24 *base* addresses — low bits all zero — the
        // pathological stride for low-bit set indexing.
        use spal_cache::IndexScheme;
        let rt = synth::small(131);
        // Sample prefixes spread across the table (adjacent sorted
        // entries share allocation blocks and would cluster under any
        // index scheme).
        let short = Trace::new(
            "short",
            rt.entries()
                .iter()
                .step_by(19)
                .take(50)
                .map(|e| e.prefix.first_addr())
                .collect(),
        );
        let run = |scheme: IndexScheme| {
            let base = tiny_config(RouterKind::Spal, 2);
            let cfg = SimConfig {
                packets_per_lc: 2_000,
                cache: LrCacheConfig {
                    index_scheme: scheme,
                    ..base.cache
                },
                ..base
            };
            RouterSim::new(&rt, &[short.clone(), short.clone()], cfg).run()
        };
        // Everything completes under either scheme.
        let low = run(IndexScheme::LowBits);
        let fold = run(IndexScheme::XorFold);
        assert_eq!(low.latency.count(), 2 * 2_000);
        assert_eq!(fold.latency.count(), 2 * 2_000);
        // Aligned destinations pile into one set under LowBits; XOR
        // folding spreads them and 50 addresses become ~all hits.
        assert!(low.hit_rate() < 0.5, "LowBits hit rate {}", low.hit_rate());
        assert!(
            fold.hit_rate() > 0.9,
            "XorFold hit rate {}",
            fold.hit_rate()
        );
    }

    #[test]
    fn shared_bus_fabric_serialises_but_completes() {
        use spal_fabric::FabricModel;
        let rt = synth::small(137);
        let traces = tiny_traces(&rt, 4);
        let base = tiny_config(RouterKind::Spal, 4);
        let crossbar = RouterSim::new(&rt, &traces, base.clone()).run();
        let bus = RouterSim::new(
            &rt,
            &traces,
            SimConfig {
                fabric: FabricModel::SharedBus,
                ..base
            },
        )
        .run();
        // Everything completes on either fabric; the single bus slot per
        // cycle adds queueing relative to the crossbar.
        assert_eq!(bus.latency.count(), crossbar.latency.count());
        assert!(bus.fabric.sent > 0);
        assert!(
            bus.mean_lookup_cycles() >= crossbar.mean_lookup_cycles() * 0.95,
            "bus {} vs crossbar {}",
            bus.mean_lookup_cycles(),
            crossbar.mean_lookup_cycles()
        );
    }

    #[test]
    fn warmup_excludes_cold_start_from_stats() {
        let rt = synth::small(127);
        let traces = tiny_traces(&rt, 2);
        let base = tiny_config(RouterKind::Spal, 2);
        let cold = RouterSim::new(&rt, &traces, base.clone()).run();
        let warm = RouterSim::new(
            &rt,
            &traces,
            SimConfig {
                measure_after_cycle: 10_000,
                ..base
            },
        )
        .run();
        // Fewer measured packets, but all still processed; the warm mean
        // is lower because compulsory misses fall in the excluded window.
        assert!(warm.latency.count() < cold.latency.count());
        assert!(warm.latency.count() > 0);
        assert!(
            warm.mean_lookup_cycles() <= cold.mean_lookup_cycles(),
            "warm {} vs cold {}",
            warm.mean_lookup_cycles(),
            cold.mean_lookup_cycles()
        );
    }

    #[test]
    fn run_for_partial() {
        let rt = synth::small(107);
        let cfg = tiny_config(RouterKind::Spal, 2);
        let traces = tiny_traces(&rt, 2);
        let report = RouterSim::new(&rt, &traces, cfg).run_for(500);
        assert!(report.cycles <= 500);
        assert!(report.latency.count() < 2 * 3_000);
    }
}
