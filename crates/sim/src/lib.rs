//! Cycle-driven simulation of SPAL-based and baseline routers (§5).
//!
//! The simulator advances a global 5 ns clock and models, per line card
//! and per cycle, exactly the machinery of Fig. 2:
//!
//! * a packet generator saturating the LC's link (uniform 2–18 cycle
//!   gaps at 40 Gbps, 6–74 at 10 Gbps), destinations supplied by a trace;
//! * one LR-cache probe per cycle, fed FIFO from the merged input queue
//!   (local arrivals plus requests arriving over the fabric);
//! * early cache-block recording: a miss reserves a W-bit entry so
//!   same-address followers park on its waiting list instead of
//!   re-issuing work;
//! * a forwarding engine that serves one lookup at a time at a fixed
//!   cost (40 cycles for the Lulea trie, 62 for the DP trie — §5.1's
//!   model) from a FIFO request queue;
//! * outgoing/incoming queues and a constant-latency switching fabric
//!   with one injection per source and one delivery per destination per
//!   cycle.
//!
//! Three router kinds share the loop: the full SPAL design, the
//! cache-only router of ref \[6\] (caches but no partitioning, no
//! sharing), and the conventional router (no caches at all).

pub mod config;
pub mod engine;
pub mod metrics;
pub mod report;

pub use config::{EngineMode, FeServiceModel, RouterKind, SimConfig};
pub use engine::RouterSim;
pub use metrics::LatencyStats;
pub use report::{LcReport, SimReport};
