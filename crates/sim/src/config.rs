//! Simulation configuration.

use spal_cache::LrCacheConfig;
use spal_core::LpmAlgorithm;
use spal_fabric::FabricModel;
use spal_traffic::LcSpeed;

/// Which router design the simulation models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// The full SPAL design: partitioned tables, LR-caches, home-LC
    /// result sharing over the fabric.
    Spal,
    /// Ref \[6\]-style: whole table + LR-cache at every LC, no
    /// partitioning, no sharing — the paper's "ψ-independent" comparison
    /// point in Fig. 6.
    CacheOnly,
    /// A conventional router: whole table at every LC, no caches.
    Conventional,
}

/// How the simulator's clock advances.
///
/// Both modes produce bit-identical reports: the fast-forward engine
/// only skips cycles in which, by construction, no line card, forwarding
/// engine, fabric port or cache-flush timer has anything to do. The
/// naive mode is kept as the executable specification the equivalence
/// suite pins the fast path against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Event-horizon fast-forward: whenever the router is globally
    /// quiescent, jump the clock straight to the earliest next event
    /// (packet arrival, FE completion, fabric delivery, or cache-flush
    /// boundary).
    #[default]
    FastForward,
    /// Advance one cycle at a time, evaluating every phase every cycle.
    Naive,
}

/// How long a forwarding-engine lookup takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeServiceModel {
    /// Fixed cost in cycles (§5.1 uses 40 for the Lulea trie and 62 for
    /// the DP trie).
    Fixed(u32),
    /// Charge the actual per-lookup memory accesses through the paper's
    /// timing model (12 ns/access + 120 ns code on 5 ns cycles) — an
    /// ablation that removes the fixed-cost approximation.
    PerLookup,
}

impl FeServiceModel {
    /// Cost in cycles of a lookup that performed `accesses` memory
    /// accesses.
    pub fn cycles(self, accesses: u32) -> u32 {
        match self {
            FeServiceModel::Fixed(c) => c,
            FeServiceModel::PerLookup => {
                let m = spal_lpm::model::FeTimingModel::default();
                m.lookup_cycles(accesses as f64).max(1)
            }
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Router design under test.
    pub kind: RouterKind,
    /// Number of line cards ψ.
    pub psi: usize,
    /// LC link speed (sets the §5.1 arrival process).
    pub speed: LcSpeed,
    /// FE lookup-cost model.
    pub fe: FeServiceModel,
    /// LPM algorithm each FE runs (results are always exact; `fe` decides
    /// the charged time).
    pub algorithm: LpmAlgorithm,
    /// LR-cache configuration (ignored for [`RouterKind::Conventional`]).
    pub cache: LrCacheConfig,
    /// Fabric topology (ignored unless [`RouterKind::Spal`]).
    pub fabric: FabricModel,
    /// Packets generated per LC (§5.1 uses 300,000).
    pub packets_per_lc: usize,
    /// Early cache-block recording (§3.2): reserve a W-bit entry at miss
    /// time so same-address followers wait instead of re-issuing work.
    /// Disabling it is an ablation: duplicate requests then reach the FE
    /// and the fabric.
    pub early_recording: bool,
    /// Simulate routing-table updates: flush every LR-cache each
    /// interval (§3.2: "all entries in every LR-cache are flushed after
    /// each table update"; §5.1 cites 20–100 updates/s, i.e. one per
    /// 10–50 ms = 2M–10M cycles). `None` = no updates during the run,
    /// the paper's default of one 300k-packet window per update.
    pub flush_interval_cycles: Option<u64>,
    /// Exclude packets arriving before this cycle from latency
    /// statistics (cold-start caches still *process* them). The paper
    /// measures whole windows including the post-flush cold start
    /// (default 0); a warm-up window isolates steady-state behaviour.
    pub measure_after_cycle: u64,
    /// RNG seed for arrivals and random replacement.
    pub seed: u64,
    /// Clock-advance strategy. [`EngineMode::FastForward`] (the default)
    /// and [`EngineMode::Naive`] are report-identical; the switch exists
    /// for the equivalence suite and for perf comparisons.
    pub engine: EngineMode,
    /// Drain FE arrival bursts through the batched lookup path: when an
    /// FE starts a lookup and more jobs are queued behind it, resolve up
    /// to a quad of addresses in one interleaved `lookup_batch` call and
    /// stash the extra results for the jobs' own start cycles. The
    /// forwarding table is immutable during a run and the batch contract
    /// is bit-identical to scalar (access counts included), so reports
    /// do not change — only host-side wall clock. Default on; the
    /// switch exists for the equivalence suite and perf comparisons.
    pub fe_batch: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            kind: RouterKind::Spal,
            psi: 16,
            speed: LcSpeed::Gbps40,
            fe: FeServiceModel::Fixed(40),
            algorithm: LpmAlgorithm::Lulea,
            cache: LrCacheConfig::paper(4096),
            fabric: FabricModel::Crossbar,
            packets_per_lc: 300_000,
            early_recording: true,
            flush_interval_cycles: None,
            measure_after_cycle: 0,
            seed: 1,
            engine: EngineMode::FastForward,
            fe_batch: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_service_model() {
        assert_eq!(FeServiceModel::Fixed(40).cycles(999), 40);
        assert_eq!(FeServiceModel::Fixed(62).cycles(1), 62);
    }

    #[test]
    fn per_lookup_service_model() {
        // 6.6 accesses → ≈40 cycles; 16 accesses → ≈62 cycles.
        assert_eq!(FeServiceModel::PerLookup.cycles(7), 41);
        assert_eq!(FeServiceModel::PerLookup.cycles(16), 62);
        // Never zero.
        assert!(FeServiceModel::PerLookup.cycles(0) >= 1);
    }

    #[test]
    fn default_matches_paper_headline_case() {
        let c = SimConfig::default();
        assert_eq!(c.psi, 16);
        assert_eq!(c.cache.blocks, 4096);
        assert_eq!(c.fe, FeServiceModel::Fixed(40));
        assert_eq!(c.packets_per_lc, 300_000);
        assert_eq!(c.engine, EngineMode::FastForward);
    }
}
