//! Simulation results.

use crate::metrics::LatencyStats;
use spal_cache::CacheStats;
use spal_fabric::FabricStats;

/// Per-line-card results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LcReport {
    /// Line-card index.
    pub lc: usize,
    /// Packets generated (and completed) at this LC.
    pub packets: u64,
    /// LR-cache statistics (all zeros for the conventional router).
    pub cache: CacheStats,
    /// Lookups the local FE executed (local packets + remote requests).
    pub fe_lookups: u64,
    /// Cycles the FE spent busy.
    pub fe_busy_cycles: u64,
    /// High-water mark of the FE request queue.
    pub fe_queue_high_water: usize,
}

/// Results of one simulation run.
///
/// Equality is exact and field-by-field — the `engine_equiv` suite
/// relies on it to pin the fast-forward engine against the naive one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Per-packet lookup latency over all LCs, in cycles.
    pub latency: LatencyStats,
    /// Per-LC breakdown.
    pub per_lc: Vec<LcReport>,
    /// Fabric statistics (zeros unless the SPAL router ran).
    pub fabric: FabricStats,
    /// Total simulated cycles until the last packet completed.
    pub cycles: u64,
}

impl SimReport {
    /// Mean lookup time in cycles — the paper's primary metric.
    pub fn mean_lookup_cycles(&self) -> f64 {
        self.latency.mean()
    }

    /// Aggregate cache hit rate across LCs.
    pub fn hit_rate(&self) -> f64 {
        let mut hits = 0u64;
        let mut probes = 0u64;
        for lc in &self.per_lc {
            hits += lc.cache.hits_loc + lc.cache.hits_rem + lc.cache.hits_waiting;
            probes += lc.cache.probes();
        }
        if probes == 0 {
            0.0
        } else {
            hits as f64 / probes as f64
        }
    }

    /// Router-wide forwarding rate in packets per second: ψ LCs, each
    /// forwarding at the rate its mean lookup time allows (the §5.2
    /// arithmetic behind "over 336 million packets per second").
    pub fn router_packets_per_second(&self) -> f64 {
        self.latency.lookups_per_second() * self.per_lc.len() as f64
    }

    /// Mean FE utilisation across LCs (busy cycles / total cycles).
    pub fn fe_utilization(&self) -> f64 {
        if self.cycles == 0 || self.per_lc.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.per_lc.iter().map(|l| l.fe_busy_cycles).sum();
        busy as f64 / (self.cycles as f64 * self.per_lc.len() as f64)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "mean {:.2} cycles | p99 {} | hit rate {:.3} | {:.1} Mpps router-wide | FE util {:.2}",
            self.mean_lookup_cycles(),
            self.latency.quantile(0.99),
            self.hit_rate(),
            self.router_packets_per_second() / 1e6,
            self.fe_utilization(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(mean_cycles: u64, lcs: usize) -> SimReport {
        let mut latency = LatencyStats::new();
        latency.record(mean_cycles);
        SimReport {
            latency,
            per_lc: (0..lcs)
                .map(|lc| LcReport {
                    lc,
                    packets: 1,
                    cache: CacheStats::default(),
                    fe_lookups: 0,
                    fe_busy_cycles: 10,
                    fe_queue_high_water: 0,
                })
                .collect(),
            fabric: FabricStats::default(),
            cycles: 100,
        }
    }

    #[test]
    fn router_rate_scales_with_psi() {
        let r = report_with(10, 16);
        // 10 cycles = 50 ns → 20 Mpps per LC → 320 Mpps router-wide.
        assert!((r.router_packets_per_second() - 320e6).abs() < 1e-3);
    }

    #[test]
    fn fe_utilization_math() {
        let r = report_with(10, 4);
        assert!((r.fe_utilization() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn summary_formats() {
        let s = report_with(10, 2).summary();
        assert!(s.contains("mean 10.00 cycles"));
    }
}
