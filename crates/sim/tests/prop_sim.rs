//! Property tests for the cycle simulator: conservation (every generated
//! packet completes exactly once), fabric message balance, and
//! determinism — across arbitrary small configurations.

use proptest::prelude::*;
use spal_cache::LrCacheConfig;
use spal_rib::synth;
use spal_sim::{FeServiceModel, RouterKind, RouterSim, SimConfig};
use spal_traffic::{preset, PresetName, TracePreset};

fn arb_kind() -> impl Strategy<Value = RouterKind> {
    prop_oneof![Just(RouterKind::Spal), Just(RouterKind::CacheOnly)]
}

proptest! {
    // Each case runs a small simulation; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_and_balance(
        kind in arb_kind(),
        psi in 1usize..=5,
        blocks_exp in 5u32..=9, // 32..512 blocks
        fe in prop::sample::select(vec![10u32, 40, 62]),
        early in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let table = synth::synthesize(&synth::SynthConfig::sized(1_500, 13));
        let p = TracePreset { distinct: 800, ..preset(PresetName::D75) };
        let packets = 1_500usize;
        let traces = p.generate(&table, packets * psi, seed).split(psi);
        let config = SimConfig {
            kind,
            psi,
            fe: FeServiceModel::Fixed(fe),
            cache: LrCacheConfig {
                blocks: (1usize << blocks_exp),
                ..LrCacheConfig::default()
            },
            packets_per_lc: packets,
            early_recording: early,
            seed,
            ..SimConfig::default()
        };
        let report = RouterSim::new(&table, &traces, config).run();
        // Conservation: every packet completed exactly once.
        prop_assert_eq!(report.latency.count(), (packets * psi) as u64);
        let per_lc_total: u64 = report.per_lc.iter().map(|l| l.packets).sum();
        prop_assert_eq!(per_lc_total, (packets * psi) as u64);
        // Fabric balance: everything sent was delivered.
        prop_assert_eq!(report.fabric.sent, report.fabric.delivered);
        if kind == RouterKind::CacheOnly {
            prop_assert_eq!(report.fabric.sent, 0);
        }
        // Latency floor: nothing completes in zero cycles.
        prop_assert!(report.latency.quantile(0.0001) >= 1);
        // FE accounting: busy cycles = lookups x fixed cost.
        for lc in &report.per_lc {
            prop_assert_eq!(lc.fe_busy_cycles, lc.fe_lookups * fe as u64);
        }
    }

    #[test]
    fn determinism(seed in 0u64..200, psi in 1usize..=3) {
        let table = synth::synthesize(&synth::SynthConfig::sized(800, 17));
        let p = TracePreset { distinct: 400, ..preset(PresetName::L92_0) };
        let traces = p.generate(&table, 1_000 * psi, seed).split(psi);
        let mk = || SimConfig {
            kind: RouterKind::Spal,
            psi,
            cache: LrCacheConfig { blocks: 128, ..LrCacheConfig::default() },
            packets_per_lc: 1_000,
            seed,
            ..SimConfig::default()
        };
        let a = RouterSim::new(&table, &traces, mk()).run();
        let b = RouterSim::new(&table, &traces, mk()).run();
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.latency.count(), b.latency.count());
        prop_assert!((a.mean_lookup_cycles() - b.mean_lookup_cycles()).abs() < 1e-12);
        prop_assert_eq!(a.fabric.sent, b.fabric.sent);
    }
}
