//! Pins the event-horizon fast-forward engine against the naive
//! one-cycle-at-a-time loop: for the same configuration and traces the
//! two must produce **identical** [`SimReport`]s — same latency
//! histogram, same per-LC counters, same fabric statistics, same final
//! cycle — because the fast path only skips cycles in which every phase
//! is provably a no-op.

use spal_cache::LrCacheConfig;
use spal_fabric::FabricModel;
use spal_rib::{synth, RoutingTable};
use spal_sim::{EngineMode, FeServiceModel, RouterKind, RouterSim, SimConfig};
use spal_traffic::{preset, LcSpeed, PresetName, Trace, TracePreset};

fn traces(table: &RoutingTable, n: usize, packets: usize) -> Vec<Trace> {
    let p = TracePreset {
        distinct: 1_200,
        ..preset(PresetName::D75)
    };
    p.generate(table, packets * n, 5).split(n)
}

fn base(kind: RouterKind, psi: usize, speed: LcSpeed) -> SimConfig {
    SimConfig {
        kind,
        psi,
        speed,
        fe: FeServiceModel::Fixed(40),
        cache: LrCacheConfig {
            blocks: 512,
            ..LrCacheConfig::default()
        },
        packets_per_lc: 2_000,
        seed: 11,
        ..SimConfig::default()
    }
}

/// Run `cfg` to completion under both engines and demand identical
/// reports.
fn assert_run_equiv(table: &RoutingTable, streams: &[Trace], cfg: SimConfig) {
    let fast = RouterSim::new(
        table,
        streams,
        SimConfig {
            engine: EngineMode::FastForward,
            ..cfg.clone()
        },
    )
    .run();
    let naive = RouterSim::new(
        table,
        streams,
        SimConfig {
            engine: EngineMode::Naive,
            ..cfg
        },
    )
    .run();
    assert_eq!(fast, naive);
}

/// Same, but truncated at `cycles` — the jump cap must land the clock on
/// exactly the cycle the naive loop stops at.
fn assert_run_for_equiv(table: &RoutingTable, streams: &[Trace], cfg: SimConfig, cycles: u64) {
    let fast = RouterSim::new(
        table,
        streams,
        SimConfig {
            engine: EngineMode::FastForward,
            ..cfg.clone()
        },
    )
    .run_for(cycles);
    let naive = RouterSim::new(
        table,
        streams,
        SimConfig {
            engine: EngineMode::Naive,
            ..cfg
        },
    )
    .run_for(cycles);
    assert_eq!(fast, naive, "diverged at run_for({cycles})");
}

#[test]
fn spal_crossbar_40g() {
    let rt = synth::small(41);
    let cfg = base(RouterKind::Spal, 4, LcSpeed::Gbps40);
    assert_run_equiv(&rt, &traces(&rt, 4, 2_000), cfg);
}

#[test]
fn spal_crossbar_10g() {
    // 10 Gbps gaps (6–74 cycles) are where fast-forward actually jumps;
    // equivalence here exercises the arrival/FE/fabric event horizon.
    let rt = synth::small(43);
    let cfg = base(RouterKind::Spal, 4, LcSpeed::Gbps10);
    assert_run_equiv(&rt, &traces(&rt, 4, 2_000), cfg);
}

#[test]
fn spal_shared_bus_both_speeds() {
    let rt = synth::small(47);
    for speed in [LcSpeed::Gbps10, LcSpeed::Gbps40] {
        let cfg = SimConfig {
            fabric: FabricModel::SharedBus,
            ..base(RouterKind::Spal, 4, speed)
        };
        assert_run_equiv(&rt, &traces(&rt, 4, 2_000), cfg);
    }
}

#[test]
fn cache_only_both_speeds() {
    let rt = synth::small(53);
    for speed in [LcSpeed::Gbps10, LcSpeed::Gbps40] {
        let cfg = base(RouterKind::CacheOnly, 2, speed);
        assert_run_equiv(&rt, &traces(&rt, 2, 2_000), cfg);
    }
}

#[test]
fn conventional_10g_completes_identically() {
    // Stable only with an FE faster than the 40-cycle mean gap.
    let rt = synth::small(59);
    let cfg = SimConfig {
        fe: FeServiceModel::Fixed(20),
        ..base(RouterKind::Conventional, 2, LcSpeed::Gbps10)
    };
    assert_run_equiv(&rt, &traces(&rt, 2, 2_000), cfg);
}

#[test]
fn conventional_40g_truncated() {
    // The overloaded conventional router never drains at 40 Gbps; the
    // truncated window must still be cycle-identical.
    let rt = synth::small(61);
    let cfg = base(RouterKind::Conventional, 2, LcSpeed::Gbps40);
    assert_run_for_equiv(&rt, &traces(&rt, 2, 2_000), cfg, 20_000);
}

#[test]
fn flush_boundaries_are_jump_stops() {
    let rt = synth::small(67);
    let streams = traces(&rt, 2, 2_000);
    // Intervals below, at, and far above the typical event spacing —
    // including one that divides nothing evenly.
    for interval in [500u64, 2_048, 7_777, 50_000] {
        let cfg = SimConfig {
            flush_interval_cycles: Some(interval),
            ..base(RouterKind::Spal, 2, LcSpeed::Gbps10)
        };
        assert_run_equiv(&rt, &streams, cfg);
    }
}

#[test]
fn run_for_truncation_matches_at_any_cutoff() {
    let rt = synth::small(71);
    let streams = traces(&rt, 2, 2_000);
    let cfg = base(RouterKind::Spal, 2, LcSpeed::Gbps10);
    // Cutoffs landing mid-lookup, mid-transit, and long past drain.
    for cycles in [1u64, 37, 500, 4_001, 1_000_000] {
        assert_run_for_equiv(&rt, &streams, cfg.clone(), cycles);
    }
}

#[test]
fn per_lookup_fe_model() {
    let rt = synth::small(73);
    let cfg = SimConfig {
        fe: FeServiceModel::PerLookup,
        ..base(RouterKind::Spal, 4, LcSpeed::Gbps10)
    };
    assert_run_equiv(&rt, &traces(&rt, 4, 2_000), cfg);
}

#[test]
fn batch_drain_under_deep_fe_backlog() {
    // 40 Gbps with a per-lookup-cost FE overloads the engines, so the
    // FE queues stay deep and the batched drain issues real quads on
    // nearly every start; both engines must still agree cycle for
    // cycle, with batching both on and off.
    let rt = synth::small(89);
    let streams = traces(&rt, 2, 2_000);
    for fe_batch in [true, false] {
        let cfg = SimConfig {
            fe: FeServiceModel::PerLookup,
            fe_batch,
            ..base(RouterKind::Conventional, 2, LcSpeed::Gbps40)
        };
        assert_run_for_equiv(&rt, &streams, cfg, 30_000);
    }
}

#[test]
fn early_recording_off() {
    let rt = synth::small(79);
    let cfg = SimConfig {
        early_recording: false,
        ..base(RouterKind::Spal, 4, LcSpeed::Gbps10)
    };
    assert_run_equiv(&rt, &traces(&rt, 4, 2_000), cfg);
}

#[test]
fn single_lc_and_warmup_window() {
    let rt = synth::small(83);
    let cfg = SimConfig {
        measure_after_cycle: 5_000,
        ..base(RouterKind::Spal, 1, LcSpeed::Gbps10)
    };
    assert_run_equiv(&rt, &traces(&rt, 1, 2_000), cfg);
}
