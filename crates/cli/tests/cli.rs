//! End-to-end tests of the `spal` binary.

use std::process::Command;

fn spal(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_spal"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_lists_commands() {
    let out = spal(&["help"]);
    assert!(out.status.success());
    let s = stdout(&out);
    for cmd in ["gen-table", "partition", "simulate", "gen-trace", "lookup"] {
        assert!(s.contains(cmd), "missing {cmd} in help");
    }
}

#[test]
fn unknown_command_fails() {
    let out = spal(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_table_stats_partition_lookup_roundtrip() {
    let dir = std::env::temp_dir().join(format!("spal-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let table = dir.join("table.txt");
    let table_s = table.to_str().unwrap();

    let out = spal(&[
        "gen-table",
        "--size",
        "800",
        "--seed",
        "5",
        "--out",
        table_s,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = spal(&["stats", "--table", table_s]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("routes: 800"));

    let out = spal(&["partition", "--psi", "4", "--table", table_s]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("psi = 4"));
    assert!(s.contains("LC  3"));

    // Look up the first route's first address: must resolve via it.
    let text = std::fs::read_to_string(&table).unwrap();
    let first_prefix = text
        .lines()
        .next()
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap();
    let addr = first_prefix.split('/').next().unwrap();
    let out = spal(&["lookup", "--table", table_s, addr]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("->"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_trace_produces_packets() {
    let out = spal(&[
        "gen-trace",
        "--size",
        "500",
        "--packets",
        "50",
        "--preset",
        "B_L",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(stdout(&out).lines().count(), 50);
}

#[test]
fn analyze_trace_reports_profile() {
    let out = spal(&[
        "analyze-trace",
        "--size",
        "800",
        "--packets",
        "5000",
        "--preset",
        "L_92-0",
        "--max-capacity",
        "1024",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = stdout(&out);
    assert!(s.contains("packets: 5000"));
    assert!(s.contains("predicted LRU hit rate"));
    assert!(s.contains("1024"));
}

#[test]
fn simulate_reports_summary() {
    let out = spal(&[
        "simulate",
        "--psi",
        "2",
        "--beta",
        "256",
        "--packets",
        "2000",
        "--size",
        "1000",
        "--preset",
        "L_92-0",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = stdout(&out);
    assert!(s.contains("mean"), "{s}");
    assert!(s.contains("fabric:"));
}

#[test]
fn simulate_rejects_bad_kind_and_speed() {
    let out = spal(&["simulate", "--kind", "quantum"]);
    assert!(!out.status.success());
    let out = spal(&["simulate", "--speed", "100"]);
    assert!(!out.status.success());
}

#[test]
fn lookup_requires_address() {
    let out = spal(&["lookup", "--size", "100"]);
    assert!(!out.status.success());
}
