//! `spal` — command-line interface to the SPAL reproduction.
//!
//! ```text
//! spal gen-table --size 41709 --seed 1 --out table.txt
//! spal stats --table table.txt
//! spal partition --psi 16 --table table.txt
//! spal lookup --table table.txt 10.1.2.3 192.168.0.1
//! spal gen-trace --preset D_75 --packets 100000 --table table.txt --out trace.txt
//! spal simulate --psi 16 --beta 4096 --preset D_75 --packets 100000
//! spal dataplane --workers 4 --engine lulea --churn 2000 --json
//! spal dataplane6 --workers 4 --prefixes 50000 --churn 1000
//! ```

mod args;

use args::{ArgError, Args};
use spal_cache::LrCacheConfig;
use spal_core::bits::{eta_for, select_bits};
use spal_core::partition::Partitioning;
use spal_core::{ForwardingTable, LpmAlgorithm};
use spal_lpm::Lpm;
use spal_rib::stats::{nesting_stats, LengthDistribution};
use spal_rib::{parse, synth, RoutingTable};
use spal_sim::{RouterKind, RouterSim, SimConfig};
use spal_traffic::{preset, PresetName, Trace};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "help" || raw[0] == "--help" {
        print_usage();
        return;
    }
    let command = raw[0].clone();
    let args = match Args::parse(raw.into_iter().skip(1)) {
        Ok(a) => a,
        Err(e) => die(&e.to_string()),
    };
    let result = match command.as_str() {
        "gen-table" => cmd_gen_table(&args),
        "stats" => cmd_stats(&args),
        "partition" => cmd_partition(&args),
        "lookup" => cmd_lookup(&args),
        "gen-trace" => cmd_gen_trace(&args),
        "analyze-trace" => cmd_analyze_trace(&args),
        "simulate" => cmd_simulate(&args),
        "dataplane" => cmd_dataplane(&args),
        "dataplane6" => cmd_dataplane6(&args),
        "scenario" => cmd_scenario(&args),
        other => Err(ArgError(format!(
            "unknown command {other:?}; try 'spal help'"
        ))),
    };
    if let Err(e) = result {
        die(&e.to_string());
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn print_usage() {
    println!(
        "spal — SPAL packet-lookup toolkit (ICPP 2004 reproduction)

commands:
  gen-table  --size N --seed S [--out FILE]        synthesize a routing table
  stats      --table FILE | --rt1 | --rt2          table statistics
  partition  --psi N [--table FILE|--rt1|--rt2]    partitioning bits + sizes
  lookup     --table FILE ADDR...                  longest-prefix match
  gen-trace  --preset NAME --packets N [--table …] [--out FILE]
  analyze-trace --in FILE | (--preset NAME --packets N [--table …])
             reuse-distance profile + predicted LRU hit rates
  simulate   --psi N [--beta B] [--gamma G] [--preset NAME]
             [--packets N] [--kind spal|cache-only|conventional]
             [--speed 10|40] [--fe CYCLES] [--seed S]
  dataplane  --workers N [--engine dp|binary|lulea|lc|dir24|multibit|poptrie]
             [--beta B] [--gamma G] [--batch N] [--preset NAME] [--packets N]
             [--churn UPDATES] [--publish-every N] [--withdraw-fraction F]
             [--pace-us US] [--invalidation targeted|flush] [--scalar]
             [--deterministic] [--seed S] [--faults SEED] [--json]
             [--out-latency FILE]
             run the threaded SPAL runtime with RCU table publication;
             --scalar disables the vector-mode worker loop (burst ring
             drains, batched cache probes, coalesced home-LC lookups)
             and processes one packet per iteration as before;
             --faults injects seed-driven message drops/delays/dups and
             worker stalls (implies --deterministic) and exits non-zero
             on any oracle divergence
  dataplane6 --workers N [--engine ship|binary] [--prefixes N]
             [--beta B] [--gamma G] [--batch N] [--packets N]
             [--churn UPDATES] [--publish-every N] [--withdraw-fraction F]
             [--pace-us US] [--invalidation targeted|flush] [--scalar]
             [--deterministic] [--seed S] [--json]
             run the IPv6 dataplane (SHIP engines, 128-bit LR-caches
             and fabric) over a DFZ-2026-shaped synthetic v6 table;
             exits non-zero on any oracle divergence
  scenario   NAME|all [--quick] [--workers N] [--packets N] [--seed S]
             [--json] [--out FILE]
             run a scripted operational episode against the live
             dataplane and grade it against hard gates; exits non-zero
             when any gate fails. NAME is one of lc-failure (kill an LC
             mid-traffic, online re-partitioning), flash-crowd,
             overload, soak (deterministic long-horizon mix). --out
             appends one JSON row per scenario

presets: D_75 D_81 L_92-0 L_92-1 B_L"
    );
}

/// Resolve the table source flags shared by several commands.
fn load_table(args: &Args) -> Result<RoutingTable, ArgError> {
    if args.has("rt1") {
        return Ok(synth::rt1(0xA11CE));
    }
    if args.has("rt2") {
        return Ok(synth::rt2(0xB0B));
    }
    match args.get("table") {
        Some(path) => {
            let file = std::fs::File::open(path)
                .map_err(|e| ArgError(format!("cannot open {path}: {e}")))?;
            parse::read_table(file).map_err(|e| ArgError(format!("{path}: {e}")))
        }
        None => Ok(synth::synthesize(&synth::SynthConfig::sized(
            args.get_or("size", 20_000usize)?,
            args.get_or("seed", 1u64)?,
        ))),
    }
}

fn parse_preset(name: &str) -> Result<PresetName, ArgError> {
    Ok(match name {
        "D_75" => PresetName::D75,
        "D_81" => PresetName::D81,
        "L_92-0" => PresetName::L92_0,
        "L_92-1" => PresetName::L92_1,
        "B_L" => PresetName::BL,
        other => return Err(ArgError(format!("unknown preset {other:?}"))),
    })
}

fn cmd_gen_table(args: &Args) -> Result<(), ArgError> {
    let size = args.get_or("size", 20_000usize)?;
    let seed = args.get_or("seed", 1u64)?;
    let table = synth::synthesize(&synth::SynthConfig::sized(size, seed));
    match args.get("out") {
        Some(path) => {
            let f = std::fs::File::create(path)
                .map_err(|e| ArgError(format!("cannot create {path}: {e}")))?;
            parse::write_table(&table, std::io::BufWriter::new(f))
                .map_err(|e| ArgError(e.to_string()))?;
            println!("wrote {} routes to {path}", table.len());
        }
        None => {
            let stdout = std::io::stdout();
            parse::write_table(&table, stdout.lock()).map_err(|e| ArgError(e.to_string()))?;
        }
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), ArgError> {
    let table = load_table(args)?;
    let d = LengthDistribution::of(&table);
    let n = nesting_stats(&table);
    println!("routes: {}", table.len());
    println!("mean prefix length: {:.2}", d.mean());
    println!(
        "mode: /{}",
        d.mode().map(|m| m.to_string()).unwrap_or_default()
    );
    println!("<= /24: {:.1}%", d.fraction_at_most(24) * 100.0);
    println!("/32 host routes: {}", d.counts[32]);
    println!(
        "nested prefixes: {} ({:.1}%), max depth {}",
        n.nested,
        100.0 * n.nested as f64 / table.len().max(1) as f64,
        n.max_depth
    );
    println!("\nlen  count");
    for (len, &c) in d.counts.iter().enumerate() {
        if c > 0 {
            println!("{len:>3}  {c}");
        }
    }
    Ok(())
}

fn cmd_partition(args: &Args) -> Result<(), ArgError> {
    let table = load_table(args)?;
    let psi = args.get_or("psi", 4usize)?;
    if psi == 0 {
        return Err(ArgError("--psi must be at least 1".into()));
    }
    let bits = select_bits(&table, eta_for(psi));
    let part = Partitioning::new(&table, bits.clone(), psi);
    let stats = part.stats(&table);
    println!("table: {} routes; psi = {psi}; bits {bits:?}", table.len());
    println!(
        "per-LC sizes: min {} max {} (max/min {:.3}); replication {:.2}%",
        stats.min_size,
        stats.max_size,
        stats.imbalance_ratio(),
        stats.replication_overhead() * 100.0
    );
    let tables = part.forwarding_tables(&table);
    for (lc, t) in tables.iter().enumerate() {
        let trie = ForwardingTable::build(LpmAlgorithm::Lulea, t);
        println!(
            "LC {lc:>2}: {:>8} prefixes, Lulea trie {:>8.1} KB",
            t.len(),
            trie.storage_bytes() as f64 / 1024.0
        );
    }
    Ok(())
}

fn cmd_lookup(args: &Args) -> Result<(), ArgError> {
    let table = load_table(args)?;
    if args.positional().is_empty() {
        return Err(ArgError("lookup needs at least one address".into()));
    }
    let trie = ForwardingTable::build(LpmAlgorithm::Lulea, &table);
    for a in args.positional() {
        let addr = parse_addr(a)?;
        let counted = trie.lookup_counted(addr);
        let entry = table.longest_match(addr);
        match entry {
            Some(e) => println!(
                "{a} -> {} via {} ({} accesses, {} lines)",
                e.next_hop, e.prefix, counted.mem_accesses, counted.lines_touched
            ),
            None => println!(
                "{a} -> no route ({} accesses, {} lines)",
                counted.mem_accesses, counted.lines_touched
            ),
        }
    }
    Ok(())
}

fn parse_addr(s: &str) -> Result<u32, ArgError> {
    let mut octets = [0u8; 4];
    let mut n = 0;
    for part in s.split('.') {
        if n >= 4 {
            return Err(ArgError(format!("bad address {s:?}")));
        }
        octets[n] = part
            .parse()
            .map_err(|_| ArgError(format!("bad address {s:?}")))?;
        n += 1;
    }
    if n != 4 {
        return Err(ArgError(format!("bad address {s:?}")));
    }
    Ok(u32::from_be_bytes(octets))
}

fn cmd_gen_trace(args: &Args) -> Result<(), ArgError> {
    let table = load_table(args)?;
    let name = parse_preset(args.get("preset").unwrap_or("D_75"))?;
    let packets = args.get_or("packets", 100_000usize)?;
    let seed = args.get_or("seed", 1u64)?;
    let trace = preset(name).generate(&table, packets, seed);
    match args.get("out") {
        Some(path) => {
            let f = std::fs::File::create(path)
                .map_err(|e| ArgError(format!("cannot create {path}: {e}")))?;
            trace
                .write_text(std::io::BufWriter::new(f))
                .map_err(|e| ArgError(e.to_string()))?;
            println!(
                "wrote {} packets ({} distinct destinations) to {path}",
                trace.len(),
                trace.distinct()
            );
        }
        None => {
            let stdout = std::io::stdout();
            trace
                .write_text(stdout.lock())
                .map_err(|e| ArgError(e.to_string()))?;
        }
    }
    Ok(())
}

fn cmd_analyze_trace(args: &Args) -> Result<(), ArgError> {
    use spal_traffic::analysis::ReuseProfile;
    let trace = match args.get("in") {
        Some(path) => {
            let f = std::fs::File::open(path)
                .map_err(|e| ArgError(format!("cannot open {path}: {e}")))?;
            Trace::read_text(path.to_string(), f).map_err(|e| ArgError(e.to_string()))?
        }
        None => {
            let table = load_table(args)?;
            let name = parse_preset(args.get("preset").unwrap_or("D_75"))?;
            let packets = args.get_or("packets", 100_000usize)?;
            preset(name).generate(&table, packets, args.get_or("seed", 1u64)?)
        }
    };
    let max_cap = args.get_or("max-capacity", 8192usize)?;
    let profile = ReuseProfile::of(&trace, max_cap + 1);
    println!("packets: {}", profile.total());
    println!("distinct destinations: {}", profile.distinct());
    println!(
        "compulsory miss share: {:.3}",
        profile.cold_misses() as f64 / profile.total().max(1) as f64
    );
    println!("\ncapacity  predicted LRU hit rate");
    let mut cap = 64usize;
    while cap <= max_cap {
        println!("{cap:>8}  {:.4}", profile.lru_hit_rate(cap));
        cap *= 2;
    }
    Ok(())
}

fn cmd_dataplane(args: &Args) -> Result<(), ArgError> {
    use spal_dataplane::{run, ChurnConfig, DataplaneConfig, FaultPlan, InvalidationMode};

    let table = load_table(args)?;
    let workers = args.get_or("workers", 4usize)?;
    if workers == 0 {
        return Err(ArgError("--workers must be at least 1".into()));
    }
    let algorithm = match args.get("engine").unwrap_or("dp") {
        "dp" => LpmAlgorithm::Dp,
        "binary" => LpmAlgorithm::Binary,
        "lulea" => LpmAlgorithm::Lulea,
        "lc" => LpmAlgorithm::Lc { fill_factor: 0.25 },
        "dir24" => LpmAlgorithm::Dir24,
        "multibit" => LpmAlgorithm::Multibit,
        "poptrie" => LpmAlgorithm::Poptrie,
        other => return Err(ArgError(format!("unknown engine {other:?}"))),
    };
    let beta = args.get_or("beta", 4096usize)?;
    let gamma = args.get_or("gamma", if beta <= 1024 { 0.25 } else { 0.5 })?;
    let packets = args.get_or("packets", 100_000usize)?;
    let seed = args.get_or("seed", 1u64)?;
    let churn_updates = args.get_or("churn", 0usize)?;
    let churn = (churn_updates > 0).then(|| ChurnConfig {
        updates: churn_updates,
        updates_per_publication: args.get_or("publish-every", 50usize).unwrap_or(50),
        withdraw_fraction: args.get_or("withdraw-fraction", 0.3f64).unwrap_or(0.3),
        pace_us: args.get_or("pace-us", 200u64).unwrap_or(200),
    });
    let invalidation = match args.get("invalidation").unwrap_or("targeted") {
        "targeted" => InvalidationMode::Targeted,
        "flush" => InvalidationMode::FullFlush,
        other => {
            return Err(ArgError(format!(
                "--invalidation must be 'targeted' or 'flush', got {other:?}"
            )))
        }
    };
    let name = parse_preset(args.get("preset").unwrap_or("D_75"))?;
    let faults = args
        .get("faults")
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| ArgError(format!("--faults expects a seed, got {s:?}")))
        })
        .transpose()?
        .map(FaultPlan::standard);

    let traces: Vec<Trace> = preset(name)
        .generate(&table, packets * workers, seed)
        .split(workers);
    let cfg = DataplaneConfig {
        workers,
        algorithm,
        cache: LrCacheConfig {
            blocks: beta,
            mix_rem_fraction: gamma,
            ..LrCacheConfig::default()
        },
        batch: args.get_or("batch", 32usize)?,
        vector: !args.has("scalar"),
        churn,
        invalidation,
        // Fault runs use the deterministic schedule so every fault —
        // and any failure — replays exactly from the seed.
        deterministic: args.has("deterministic") || faults.is_some(),
        seed,
        faults,
        // Latency histograms cost a timestamp pair per admit burst;
        // only pay for them when something consumes them (the JSON
        // report or an --out-latency file).
        capture_latency: args.has("json") || args.get("out-latency").is_some(),
        ..DataplaneConfig::default()
    };
    eprintln!(
        "dataplane: workers={workers} engine={algorithm:?} beta={beta} gamma={gamma} \
         preset={} packets/worker={packets}{}",
        name.label(),
        if churn_updates > 0 {
            format!(" churn={churn_updates} updates")
        } else {
            String::new()
        },
    );
    let report = run(&table, &traces, &cfg);
    if let Some(path) = args.get("out-latency") {
        let p = report.latency_paths();
        let json = format!(
            "{{\"loc_hit\": {{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}, \
             \"rem_hit\": {{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}, \
             \"miss\": {{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}}}\n",
            p.loc_hit.count(),
            p.loc_hit.p50_ns(),
            p.loc_hit.p99_ns(),
            p.loc_hit.p999_ns(),
            p.rem_hit.count(),
            p.rem_hit.p50_ns(),
            p.rem_hit.p99_ns(),
            p.rem_hit.p999_ns(),
            p.miss.count(),
            p.miss.p50_ns(),
            p.miss.p99_ns(),
            p.miss.p999_ns(),
        );
        std::fs::write(path, json).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote latency histogram to {path}");
    }
    if args.has("json") {
        print!("{}", report.to_json());
        return Ok(());
    }
    println!("{}", report.summary());
    let paths = report.latency_paths();
    let all = paths.all();
    if all.count() > 0 {
        println!(
            "latency (ns): loc-hit p50/p99.9 {}/{}, rem-hit p50/p99.9 {}/{}, \
             miss p50/p99.9 {}/{}, all p99.9 {}",
            paths.loc_hit.p50_ns(),
            paths.loc_hit.p999_ns(),
            paths.rem_hit.p50_ns(),
            paths.rem_hit.p999_ns(),
            paths.miss.p50_ns(),
            paths.miss.p999_ns(),
            all.p999_ns(),
        );
    }
    if let Some(c) = &report.churn {
        println!(
            "churn: {} invalidations sent, apply min/mean/max {:.1}/{:.1}/{:.1} µs, \
             final check {}/{} consistent",
            c.invalidations_sent,
            c.apply_us.min_us,
            c.apply_us.mean_us(),
            c.apply_us.max_us,
            c.final_checks - c.final_mismatches,
            c.final_checks,
        );
    }
    println!("\nlc  packets   hit-rate  remote-req  served  stale");
    for w in &report.workers {
        let probes = w.cache.probes().max(1);
        let hits = w.cache.hits_loc + w.cache.hits_rem + w.cache.hits_waiting;
        println!(
            "{:>2}  {:>8}  {:>8.3}  {:>10}  {:>6}  {:>5}",
            w.lc,
            w.packets,
            hits as f64 / probes as f64,
            w.remote_requests,
            w.remote_served,
            w.stale_replies,
        );
    }
    if report.faults.is_some() {
        println!("{}", report.fault_summary());
    }
    if report.oracle_divergence() > 0 {
        return Err(ArgError(format!(
            "{} oracle divergences — dataplane disagreed with the scalar full-table oracle",
            report.oracle_divergence()
        )));
    }
    Ok(())
}

fn cmd_dataplane6(args: &Args) -> Result<(), ArgError> {
    use spal_core::LpmAlgorithm6;
    use spal_dataplane::{run6, ChurnConfig, Dataplane6Config, InvalidationMode};
    use spal_rib::v6::synthesize6_dfz;
    use spal_traffic::generate6;

    let workers = args.get_or("workers", 4usize)?;
    if workers == 0 {
        return Err(ArgError("--workers must be at least 1".into()));
    }
    let algorithm = match args.get("engine").unwrap_or("ship") {
        "ship" => LpmAlgorithm6::Ship,
        "binary" => LpmAlgorithm6::Binary,
        other => return Err(ArgError(format!("unknown v6 engine {other:?}"))),
    };
    let prefixes = args.get_or("prefixes", 50_000usize)?;
    let beta = args.get_or("beta", 4096usize)?;
    let gamma = args.get_or("gamma", if beta <= 1024 { 0.25 } else { 0.5 })?;
    let packets = args.get_or("packets", 100_000usize)?;
    let seed = args.get_or("seed", 1u64)?;
    let churn_updates = args.get_or("churn", 0usize)?;
    let churn = (churn_updates > 0).then(|| ChurnConfig {
        updates: churn_updates,
        updates_per_publication: args.get_or("publish-every", 50usize).unwrap_or(50),
        withdraw_fraction: args.get_or("withdraw-fraction", 0.3f64).unwrap_or(0.3),
        pace_us: args.get_or("pace-us", 200u64).unwrap_or(200),
    });
    let invalidation = match args.get("invalidation").unwrap_or("targeted") {
        "targeted" => InvalidationMode::Targeted,
        "flush" => InvalidationMode::FullFlush,
        other => {
            return Err(ArgError(format!(
                "--invalidation must be 'targeted' or 'flush', got {other:?}"
            )))
        }
    };

    let table = synthesize6_dfz(prefixes, seed ^ 0xD15C);
    let traces =
        generate6(&table, 32_768.min(4 * prefixes), packets * workers, seed).split(workers);
    let cfg = Dataplane6Config {
        workers,
        algorithm,
        cache: LrCacheConfig {
            blocks: beta,
            mix_rem_fraction: gamma,
            ..LrCacheConfig::default()
        },
        batch: args.get_or("batch", 32usize)?,
        vector: !args.has("scalar"),
        churn,
        invalidation,
        deterministic: args.has("deterministic"),
        seed,
        ..Dataplane6Config::default()
    };
    eprintln!(
        "dataplane6: workers={workers} engine={} table={} v6 prefixes beta={beta} gamma={gamma} \
         packets/worker={packets}{}",
        algorithm.label(),
        table.len(),
        if churn_updates > 0 {
            format!(" churn={churn_updates} updates")
        } else {
            String::new()
        },
    );
    let report = run6(&table, &traces, &cfg);
    if args.has("json") {
        print!("{}", report.to_json());
        return Ok(());
    }
    println!("{}", report.summary());
    if let Some(c) = &report.churn {
        println!(
            "churn: {} invalidations sent, apply min/mean/max {:.1}/{:.1}/{:.1} µs, \
             final check {}/{} consistent",
            c.invalidations_sent,
            c.apply_us.min_us,
            c.apply_us.mean_us(),
            c.apply_us.max_us,
            c.final_checks - c.final_mismatches,
            c.final_checks,
        );
    }
    println!("\nlc  packets   hit-rate  remote-req  served  stale");
    for w in &report.workers {
        let probes = w.cache.probes().max(1);
        let hits = w.cache.hits_loc + w.cache.hits_rem + w.cache.hits_waiting;
        println!(
            "{:>2}  {:>8}  {:>8.3}  {:>10}  {:>6}  {:>5}",
            w.lc,
            w.packets,
            hits as f64 / probes as f64,
            w.remote_requests,
            w.remote_served,
            w.stale_replies,
        );
    }
    if report.oracle_divergence() > 0 {
        return Err(ArgError(format!(
            "{} oracle divergences — dataplane disagreed with the per-LC RIB oracle",
            report.oracle_divergence()
        )));
    }
    Ok(())
}

fn cmd_scenario(args: &Args) -> Result<(), ArgError> {
    use spal_dataplane::{run_scenario, ScenarioConfig, ScenarioKind};

    let names: Vec<&str> = ScenarioKind::ALL.iter().map(|k| k.name()).collect();
    let which = args
        .positional()
        .first()
        .map(String::as_str)
        .ok_or_else(|| {
            ArgError(format!(
                "scenario needs a name: {} or all",
                names.join(", ")
            ))
        })?;
    let kinds: Vec<ScenarioKind> = if which == "all" {
        ScenarioKind::ALL.to_vec()
    } else {
        vec![ScenarioKind::from_name(which).ok_or_else(|| {
            ArgError(format!(
                "unknown scenario {which:?}; expected {} or all",
                names.join(", ")
            ))
        })?]
    };

    let quick = args.has("quick");
    let mut rows = Vec::new();
    let mut failed = Vec::new();
    for kind in kinds {
        let mut cfg = ScenarioConfig::new(kind, quick);
        cfg.workers = args.get_or("workers", cfg.workers)?;
        cfg.packets = args.get_or("packets", cfg.packets)?;
        cfg.seed = args.get_or("seed", cfg.seed)?;
        if cfg.workers < 2 {
            return Err(ArgError("scenarios need --workers >= 2".into()));
        }
        eprintln!(
            "scenario {}: workers={} packets/worker={}{}",
            kind.name(),
            cfg.workers,
            cfg.packets,
            if quick { " (quick)" } else { "" },
        );
        let result = run_scenario(&cfg);
        if args.has("json") {
            println!("{}", result.json_row());
        } else {
            println!("{}", result.summary());
        }
        rows.push(result.json_row());
        if !result.passed() {
            failed.push(format!(
                "{}: {}",
                kind.name(),
                result.gate_failures.join("; ")
            ));
        }
    }
    if let Some(path) = args.get("out") {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| ArgError(format!("cannot open {path}: {e}")))?;
        for row in &rows {
            writeln!(f, "{row}").map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        }
        eprintln!("appended {} row(s) to {path}", rows.len());
    }
    if !failed.is_empty() {
        return Err(ArgError(format!(
            "scenario gates failed: {}",
            failed.join(" | ")
        )));
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), ArgError> {
    let table = load_table(args)?;
    let psi = args.get_or("psi", 16usize)?;
    let beta = args.get_or("beta", 4096usize)?;
    let gamma = args.get_or("gamma", if beta <= 1024 { 0.25 } else { 0.5 })?;
    let packets = args.get_or("packets", 100_000usize)?;
    let seed = args.get_or("seed", 1u64)?;
    let fe = args.get_or("fe", 40u32)?;
    let kind = match args.get("kind").unwrap_or("spal") {
        "spal" => RouterKind::Spal,
        "cache-only" => RouterKind::CacheOnly,
        "conventional" => RouterKind::Conventional,
        other => return Err(ArgError(format!("unknown router kind {other:?}"))),
    };
    let speed = match args.get_or("speed", 40u32)? {
        10 => spal_traffic::LcSpeed::Gbps10,
        40 => spal_traffic::LcSpeed::Gbps40,
        other => return Err(ArgError(format!("--speed must be 10 or 40, got {other}"))),
    };
    let name = parse_preset(args.get("preset").unwrap_or("D_75"))?;

    let traces: Vec<Trace> = preset(name)
        .generate(&table, packets * psi, seed)
        .split(psi);
    let config = SimConfig {
        kind,
        psi,
        speed,
        fe: spal_sim::FeServiceModel::Fixed(fe),
        cache: LrCacheConfig {
            blocks: beta,
            mix_rem_fraction: gamma,
            ..LrCacheConfig::default()
        },
        packets_per_lc: packets,
        seed,
        ..SimConfig::default()
    };
    eprintln!(
        "simulating {kind:?}: psi={psi} beta={beta} gamma={gamma} preset={} packets/LC={packets} fe={fe}cyc",
        name.label()
    );
    let report = RouterSim::new(&table, &traces, config).run();
    println!("{}", report.summary());
    println!(
        "cycles: {} ({:.2} ms); p50/p99/max latency: {}/{}/{} cycles",
        report.cycles,
        report.cycles as f64 * 5e-6,
        report.latency.quantile(0.5),
        report.latency.quantile(0.99),
        report.latency.max()
    );
    println!(
        "fabric: {} msgs, mean transit {:.1} cycles",
        report.fabric.sent,
        report.fabric.mean_transit()
    );
    Ok(())
}
