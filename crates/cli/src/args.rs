//! Minimal flag parsing (no external dependencies): `--key value` pairs
//! plus positional arguments.

use std::collections::HashMap;

/// Parsed command-line arguments: flags and positionals.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw arguments. `--flag value` sets a flag; `--flag` at the
    /// end of input or followed by another flag is a boolean (value
    /// "true"); anything else is positional.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let raw: Vec<String> = raw.into_iter().collect();
        let mut out = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(name) = a.strip_prefix("--") {
                if name.is_empty() {
                    return Err(ArgError("empty flag name '--'".into()));
                }
                let value = raw.get(i + 1);
                match value {
                    Some(v) if !v.starts_with("--") => {
                        out.flags.insert(name.to_string(), v.clone());
                        i += 2;
                    }
                    _ => {
                        out.flags.insert(name.to_string(), "true".to_string());
                        i += 1;
                    }
                }
            } else {
                out.positional.push(a.clone());
                i += 1;
            }
        }
        Ok(out)
    }

    /// A string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}"))),
        }
    }

    /// Whether a boolean flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn flags_and_positionals() {
        let a = parse(&["cmd", "--size", "100", "file.txt", "--quick"]);
        assert_eq!(a.positional(), &["cmd".to_string(), "file.txt".to_string()]);
        assert_eq!(a.get("size"), Some("100"));
        assert!(a.has("quick"));
        assert!(!a.has("missing"));
    }

    #[test]
    fn get_or_parses_with_default() {
        let a = parse(&["--n", "42"]);
        assert_eq!(a.get_or("n", 0usize).unwrap(), 42);
        assert_eq!(a.get_or("m", 7usize).unwrap(), 7);
        assert!(a.get_or("n", 0.5f64).is_ok());
    }

    #[test]
    fn bad_value_is_an_error() {
        let a = parse(&["--n", "not-a-number"]);
        assert!(a.get_or("n", 0usize).is_err());
    }

    #[test]
    fn flag_before_flag_is_boolean() {
        let a = parse(&["--quick", "--n", "3"]);
        assert!(a.has("quick"));
        assert_eq!(a.get_or("n", 0usize).unwrap(), 3);
    }

    #[test]
    fn empty_flag_rejected() {
        assert!(Args::parse(["--".to_string()]).is_err());
    }
}
