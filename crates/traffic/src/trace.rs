//! Destination-address traces: containers, generation, per-LC stream
//! splitting, and a simple text format.

use crate::locality::{LocalityModel, LocalitySampler};
use crate::pool::AddressPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::Arc;

/// A sequence of packet destination addresses.
///
/// Destinations live behind an [`Arc`], so cloning a trace — or handing
/// its address stream to a simulator line card — shares one allocation
/// instead of copying potentially hundreds of thousands of addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    dests: Arc<[u32]>,
}

impl Trace {
    /// Wrap a destination sequence.
    pub fn new(name: impl Into<String>, dests: Vec<u32>) -> Self {
        Trace {
            name: name.into(),
            dests: dests.into(),
        }
    }

    /// Generate `len` destinations from a pool under a locality model.
    pub fn generate(
        name: impl Into<String>,
        pool: &AddressPool,
        model: LocalityModel,
        len: usize,
        seed: u64,
    ) -> Self {
        assert!(
            !pool.is_empty(),
            "cannot generate a trace from an empty pool"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler = LocalitySampler::new(model, pool.len());
        let addrs = pool.addresses();
        let dests = (0..len)
            .map(|_| addrs[sampler.next_index(&mut rng)])
            .collect();
        Trace::new(name, dests)
    }

    /// The trace's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The destination sequence.
    pub fn destinations(&self) -> &[u32] {
        &self.dests
    }

    /// The destination sequence as a shared handle (no copy).
    pub fn destinations_shared(&self) -> Arc<[u32]> {
        Arc::clone(&self.dests)
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.dests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.dests.is_empty()
    }

    /// Number of distinct destinations.
    pub fn distinct(&self) -> usize {
        let mut v = self.dests.to_vec();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// Split into `n` per-LC streams round-robin, as if `n` links tapped
    /// the same backbone flow (§5.1 feeds every LC its own stream).
    pub fn split(&self, n: usize) -> Vec<Trace> {
        assert!(n >= 1, "need at least one stream");
        let mut streams: Vec<Vec<u32>> = vec![Vec::with_capacity(self.len() / n + 1); n];
        for (i, &d) in self.dests.iter().enumerate() {
            streams[i % n].push(d);
        }
        streams
            .into_iter()
            .enumerate()
            .map(|(i, dests)| Trace::new(format!("{}#{}", self.name, i), dests))
            .collect()
    }

    /// Iterate the destinations in contiguous chunks of at most `size`
    /// addresses — the natural feed for `Lpm::lookup_batch` consumers
    /// (the last chunk carries the unaligned tail).
    ///
    /// # Panics
    /// Panics if `size` is zero.
    pub fn batches(&self, size: usize) -> impl Iterator<Item = &[u32]> {
        assert!(size >= 1, "batch size must be at least 1");
        self.dests.chunks(size)
    }

    /// Split into `n` *contiguous* shards of near-equal length (first
    /// `len % n` shards one longer), preserving each shard's arrival
    /// order — the right cut for replaying one trace across worker
    /// threads, where [`Trace::split`]'s round-robin interleave would
    /// destroy the locality each worker sees.
    pub fn shard_slices(&self, n: usize) -> Vec<Trace> {
        assert!(n >= 1, "need at least one shard");
        let base = self.len() / n;
        let extra = self.len() % n;
        let mut start = 0;
        (0..n)
            .map(|i| {
                let len = base + usize::from(i < extra);
                let shard = Trace::new(
                    format!("{}@{}", self.name, i),
                    self.dests[start..start + len].to_vec(),
                );
                start += len;
                shard
            })
            .collect()
    }

    /// Write one dotted-quad destination per line.
    pub fn write_text<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let mut buf = String::new();
        for &d in self.dests.iter() {
            buf.clear();
            let b = d.to_be_bytes();
            buf.push_str(&format!("{}.{}.{}.{}\n", b[0], b[1], b[2], b[3]));
            w.write_all(buf.as_bytes())?;
        }
        Ok(())
    }

    /// Read a trace from the text format (`a.b.c.d` per line; blanks and
    /// `#` comments skipped).
    pub fn read_text<R: Read>(name: impl Into<String>, r: R) -> std::io::Result<Trace> {
        let mut dests = Vec::new();
        for line in BufReader::new(r).lines() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut octets = [0u8; 4];
            let mut n = 0;
            for part in line.split('.') {
                if n >= 4 {
                    return Err(bad_line(line));
                }
                octets[n] = part.parse().map_err(|_| bad_line(line))?;
                n += 1;
            }
            if n != 4 {
                return Err(bad_line(line));
            }
            dests.push(u32::from_be_bytes(octets));
        }
        Ok(Trace::new(name, dests))
    }
}

fn bad_line(line: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("bad trace line {line:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::synth;

    fn small_trace() -> Trace {
        let rt = synth::small(4);
        let pool = AddressPool::covered(&rt, 100, 0.0, 1);
        Trace::generate("t", &pool, LocalityModel::Zipf { alpha: 1.0 }, 1000, 2)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_trace();
        let b = small_trace();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
        assert!(a.distinct() <= 100);
    }

    #[test]
    fn split_round_robin() {
        let t = Trace::new("x", vec![1, 2, 3, 4, 5]);
        let s = t.split(2);
        assert_eq!(s[0].destinations(), &[1, 3, 5]);
        assert_eq!(s[1].destinations(), &[2, 4]);
        assert_eq!(s[0].name(), "x#0");
    }

    #[test]
    fn split_one_is_identity() {
        let t = Trace::new("x", vec![9, 8, 7]);
        let s = t.split(1);
        assert_eq!(s[0].destinations(), t.destinations());
    }

    #[test]
    fn batches_cover_trace_in_order() {
        let t = Trace::new("x", (0..10u32).collect());
        let chunks: Vec<&[u32]> = t.batches(4).collect();
        assert_eq!(chunks, vec![&[0, 1, 2, 3][..], &[4, 5, 6, 7], &[8, 9]]);
        // One oversized batch yields the whole trace.
        assert_eq!(t.batches(100).next().unwrap(), t.destinations());
    }

    #[test]
    fn shard_slices_are_contiguous_and_balanced() {
        let t = Trace::new("x", (0..11u32).collect());
        let shards = t.shard_slices(3);
        assert_eq!(shards[0].destinations(), &[0, 1, 2, 3]);
        assert_eq!(shards[1].destinations(), &[4, 5, 6, 7]);
        assert_eq!(shards[2].destinations(), &[8, 9, 10]);
        assert_eq!(shards[0].name(), "x@0");
        // More shards than packets: trailing shards are empty, nothing
        // is lost.
        let tiny = Trace::new("y", vec![1, 2]);
        let s = tiny.shard_slices(4);
        assert_eq!(s.iter().map(|t| t.len()).sum::<usize>(), 2);
    }

    #[test]
    fn clones_share_destination_storage() {
        let t = Trace::new("x", vec![1, 2, 3]);
        let c = t.clone();
        assert!(Arc::ptr_eq(
            &t.destinations_shared(),
            &c.destinations_shared()
        ));
    }

    #[test]
    fn text_roundtrip() {
        let t = Trace::new("x", vec![0x0A000001, 0xC0A80001, 0]);
        let mut buf = Vec::new();
        t.write_text(&mut buf).unwrap();
        assert_eq!(
            String::from_utf8(buf.clone()).unwrap(),
            "10.0.0.1\n192.168.0.1\n0.0.0.0\n"
        );
        let back = Trace::read_text("x", buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(Trace::read_text("x", "1.2.3\n".as_bytes()).is_err());
        assert!(Trace::read_text("x", "1.2.3.4.5\n".as_bytes()).is_err());
        assert!(Trace::read_text("x", "hello\n".as_bytes()).is_err());
        // Comments and blanks are fine.
        let t = Trace::read_text("x", "# c\n\n1.2.3.4\n".as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn zipf_trace_has_locality() {
        // The generated trace's most common destination should appear far
        // more often than 1/distinct of the time.
        let t = small_trace();
        let mut counts = std::collections::HashMap::new();
        for &d in t.destinations() {
            *counts.entry(d).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 3 * t.len() / 100, "max count {max}");
    }
}
