//! Trace analysis: reuse distances and working sets.
//!
//! The single property the LR-cache exploits is temporal locality; these
//! tools quantify it so synthetic presets can be validated against the
//! hit-rate band the paper cites for real 1998/2002 traffic (>0.93 at 4K
//! blocks, refs \[5, 6\]). The key fact: a fully-associative LRU cache of
//! capacity C hits exactly those references whose *reuse distance* (the
//! number of distinct destinations seen since the previous reference to
//! the same address) is < C — so one pass over the trace predicts the
//! hit rate at every capacity at once.

use crate::trace::Trace;
use std::collections::HashMap;

/// Reuse-distance histogram of a trace.
#[derive(Debug, Clone)]
pub struct ReuseProfile {
    /// `counts[d]` = number of references with reuse distance exactly
    /// `d`, for `d < counts.len()`; deeper reuses land in `overflow`.
    counts: Vec<u64>,
    overflow: u64,
    /// First references (no previous occurrence — compulsory misses).
    cold: u64,
    total: u64,
}

impl ReuseProfile {
    /// Compute the profile with distances resolved up to `max_distance`.
    ///
    /// Implementation: an order-statistics tree over last-access times
    /// via a Fenwick (binary indexed) tree — O(n log n) total.
    pub fn of(trace: &Trace, max_distance: usize) -> Self {
        let n = trace.len();
        let mut fenwick = Fenwick::new(n + 1);
        let mut last_seen: HashMap<u32, usize> = HashMap::new();
        let mut counts = vec![0u64; max_distance];
        let mut overflow = 0u64;
        let mut cold = 0u64;
        for (t, &addr) in trace.destinations().iter().enumerate() {
            match last_seen.insert(addr, t) {
                None => cold += 1,
                Some(prev) => {
                    // Distinct addresses touched strictly between prev
                    // and t = number of "live last-access marks" in
                    // (prev, t).
                    let distance = fenwick.range_sum(prev + 1, t) as usize;
                    if distance < max_distance {
                        counts[distance] += 1;
                    } else {
                        overflow += 1;
                    }
                    fenwick.add(prev, -1); // its mark moves to t
                }
            }
            fenwick.add(t, 1);
        }
        ReuseProfile {
            counts,
            overflow,
            cold,
            total: n as u64,
        }
    }

    /// Total references.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Compulsory (first-reference) misses.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// References whose reuse distance exceeded the resolved maximum.
    pub fn deep_reuses(&self) -> u64 {
        self.overflow
    }

    /// Predicted hit rate of a fully-associative LRU cache of `capacity`
    /// blocks (`capacity` must be ≤ the profile's `max_distance`).
    pub fn lru_hit_rate(&self, capacity: usize) -> f64 {
        assert!(
            capacity <= self.counts.len(),
            "profile only resolves distances below {}",
            self.counts.len()
        );
        if self.total == 0 {
            return 0.0;
        }
        let hits: u64 = self.counts[..capacity].iter().sum();
        hits as f64 / self.total as f64
    }

    /// The working-set size: distinct destinations in the trace.
    pub fn distinct(&self) -> u64 {
        self.cold
    }
}

/// A Fenwick tree over i64 counts.
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Add `delta` at position `i` (0-based).
    fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based).
    fn prefix_sum(&self, i: usize) -> i64 {
        let mut i = i + 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum over the open-ended slice `lo..hi` (0-based, half-open), zero
    /// when empty.
    fn range_sum(&self, lo: usize, hi: usize) -> i64 {
        if lo >= hi {
            return 0;
        }
        let high = self.prefix_sum(hi - 1);
        let low = if lo == 0 { 0 } else { self.prefix_sum(lo - 1) };
        high - low
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(dests: &[u32]) -> Trace {
        Trace::new("t", dests.to_vec())
    }

    #[test]
    fn simple_reuse_distances() {
        // a b a: the second `a` has reuse distance 1 (only b between).
        let p = ReuseProfile::of(&trace(&[1, 2, 1]), 16);
        assert_eq!(p.cold_misses(), 2);
        assert_eq!(p.total(), 3);
        // distance-1 reuse hits in any LRU cache of capacity >= 2.
        assert!((p.lru_hit_rate(2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((p.lru_hit_rate(1) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn immediate_repeat_is_distance_zero() {
        let p = ReuseProfile::of(&trace(&[5, 5, 5]), 4);
        assert_eq!(p.cold_misses(), 1);
        assert!((p.lru_hit_rate(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distance_counts_distinct_not_references() {
        // a b b b a: between the two a's, one distinct address.
        let p = ReuseProfile::of(&trace(&[1, 2, 2, 2, 1]), 8);
        // The final `a` reuse distance = 1 → hits at capacity 2.
        assert!((p.lru_hit_rate(2) - 3.0 / 5.0).abs() < 1e-12); // b,b reuses + a
    }

    #[test]
    fn overflow_counts_deep_reuses() {
        // a, then 4 distinct, then a again: distance 4.
        let p = ReuseProfile::of(&trace(&[9, 1, 2, 3, 4, 9]), 3);
        assert_eq!(p.deep_reuses(), 1);
        assert_eq!(p.cold_misses(), 5);
    }

    #[test]
    fn lru_prediction_matches_simulated_cache() {
        // Cross-check against a simple LRU simulation on a Zipf trace.
        use crate::locality::LocalityModel;
        use crate::pool::AddressPool;
        let pool = AddressPool::from_addresses(0..2_000u32);
        let t = Trace::generate("z", &pool, LocalityModel::Zipf { alpha: 1.1 }, 20_000, 3);
        let cap = 256usize;
        let p = ReuseProfile::of(&t, cap + 1);
        // Simulated fully-associative LRU.
        let mut order: Vec<u32> = Vec::new();
        let mut hits = 0u64;
        for &a in t.destinations() {
            if let Some(pos) = order.iter().position(|&x| x == a) {
                if pos < cap {
                    hits += 1;
                }
                order.remove(pos);
            }
            order.insert(0, a);
        }
        let simulated = hits as f64 / t.len() as f64;
        let predicted = p.lru_hit_rate(cap);
        assert!(
            (simulated - predicted).abs() < 1e-9,
            "sim {simulated} vs predicted {predicted}"
        );
    }

    #[test]
    fn preset_locality_lands_in_paper_band() {
        // The five presets must predict >0.85 LRU hit rate at 4K blocks
        // over a 300k window — the neighbourhood of the paper's >0.93
        // claim (set-associativity costs a little more on top).
        use crate::presets::{preset, PresetName};
        use spal_rib::synth;
        let table = synth::synthesize(&synth::SynthConfig::sized(20_000, 2));
        for name in [PresetName::L92_0, PresetName::BL] {
            let t = preset(name).generate(&table, 100_000, 5);
            let p = ReuseProfile::of(&t, 4096 + 1);
            let rate = p.lru_hit_rate(4096);
            assert!(
                rate > 0.8,
                "{}: predicted LRU hit rate {rate}",
                name.label()
            );
        }
    }
}
