//! IPv6 destination traces: the 128-bit mirror of [`crate::trace`] and
//! [`crate::pool`], sized for the v6 dataplane and the SHIP benchmarks.
//!
//! The locality machinery (Zipf popularity, alias sampling, packet
//! trains) never looks inside an address, so it is reused as-is; only
//! the pool construction is width-specific — distinct destinations are
//! drawn inside the covered space of a [`RoutingTable6`], host bits
//! randomized below each drawn prefix, with an optional uncovered
//! fraction for routing-miss traffic.

use crate::locality::{LocalityModel, LocalitySampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spal_rib::v6::RoutingTable6;
use std::sync::Arc;

/// A pool of distinct IPv6 destination addresses.
#[derive(Debug, Clone)]
pub struct AddressPool6 {
    addrs: Vec<u128>,
}

impl AddressPool6 {
    /// Draw `distinct` addresses, `uncovered_fraction` of them uniform
    /// random (likely routing misses), the rest inside randomly chosen
    /// table prefixes with random host bits.
    ///
    /// # Panics
    /// Panics if the table is empty and `uncovered_fraction < 1.0`.
    pub fn covered(
        table: &RoutingTable6,
        distinct: usize,
        uncovered_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(
            !table.is_empty() || uncovered_fraction >= 1.0,
            "cannot draw covered v6 addresses from an empty table"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6666_0000_0000_0000);
        let mut addrs = Vec::with_capacity(distinct);
        for _ in 0..distinct {
            let addr = if rng.gen_bool(uncovered_fraction.clamp(0.0, 1.0)) {
                rng.gen::<u128>()
            } else {
                let e = table.entries()[rng.gen_range(0..table.len())];
                let host = if e.prefix.len() >= 128 {
                    0
                } else {
                    rng.gen::<u128>() >> e.prefix.len()
                };
                e.prefix.bits() | host
            };
            addrs.push(addr);
        }
        AddressPool6 { addrs }
    }

    /// The pooled addresses.
    pub fn addresses(&self) -> &[u128] {
        &self.addrs
    }

    /// Number of pooled addresses.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

/// A sequence of IPv6 packet destination addresses (shared storage, as
/// [`crate::Trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace6 {
    name: String,
    dests: Arc<[u128]>,
}

impl Trace6 {
    /// Wrap a destination sequence.
    pub fn new(name: impl Into<String>, dests: Vec<u128>) -> Self {
        Trace6 {
            name: name.into(),
            dests: dests.into(),
        }
    }

    /// Generate `len` destinations from a pool under a locality model.
    pub fn generate(
        name: impl Into<String>,
        pool: &AddressPool6,
        model: LocalityModel,
        len: usize,
        seed: u64,
    ) -> Self {
        assert!(
            !pool.is_empty(),
            "cannot generate a trace from an empty pool"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler = LocalitySampler::new(model, pool.len());
        let addrs = pool.addresses();
        let dests = (0..len)
            .map(|_| addrs[sampler.next_index(&mut rng)])
            .collect();
        Trace6::new(name, dests)
    }

    /// The trace's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The destination sequence.
    pub fn destinations(&self) -> &[u128] {
        &self.dests
    }

    /// The destination sequence as a shared handle (no copy).
    pub fn destinations_shared(&self) -> Arc<[u128]> {
        Arc::clone(&self.dests)
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.dests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.dests.is_empty()
    }

    /// Split into `n` per-LC streams round-robin (see [`crate::Trace::split`]).
    pub fn split(&self, n: usize) -> Vec<Trace6> {
        assert!(n >= 1, "need at least one stream");
        let mut streams: Vec<Vec<u128>> = vec![Vec::with_capacity(self.len() / n + 1); n];
        for (i, &d) in self.dests.iter().enumerate() {
            streams[i % n].push(d);
        }
        streams
            .into_iter()
            .enumerate()
            .map(|(i, dests)| Trace6::new(format!("{}#{}", self.name, i), dests))
            .collect()
    }
}

/// One-call v6 trace: a Zipf(α = 1.0) stream over `distinct` covered
/// destinations — the working-set shape the v4 presets use — split
/// across nothing (the caller splits per LC).
pub fn generate6(table: &RoutingTable6, distinct: usize, len: usize, seed: u64) -> Trace6 {
    let pool = AddressPool6::covered(table, distinct, 0.02, seed);
    Trace6::generate(
        "v6-zipf",
        &pool,
        LocalityModel::Zipf { alpha: 1.0 },
        len,
        seed.rotate_left(23) ^ 0x7A6F,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::v6::synthesize6_dfz;

    #[test]
    fn generation_is_deterministic_and_mostly_covered() {
        let rt = synthesize6_dfz(2_000, 9);
        let a = generate6(&rt, 400, 5_000, 7);
        let b = generate6(&rt, 400, 5_000, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
        let covered = a
            .destinations()
            .iter()
            .filter(|&&d| rt.longest_match(d).is_some())
            .count();
        assert!(
            covered * 10 >= a.len() * 9,
            "only {covered}/{} covered",
            a.len()
        );
    }

    #[test]
    fn split_round_robin() {
        let t = Trace6::new("x", vec![1, 2, 3, 4, 5]);
        let s = t.split(2);
        assert_eq!(s[0].destinations(), &[1, 3, 5]);
        assert_eq!(s[1].destinations(), &[2, 4]);
        assert_eq!(s[0].name(), "x#0");
    }

    #[test]
    fn zipf_trace_has_locality() {
        let rt = synthesize6_dfz(1_000, 3);
        let t = generate6(&rt, 200, 4_000, 1);
        let mut counts = std::collections::HashMap::new();
        for &d in t.destinations() {
            *counts.entry(d).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 3 * t.len() / 200, "max count {max}");
    }
}
