//! Packet arrival processes — §5.1 of the paper.
//!
//! Given an LC speed (after link aggregation) of 10 or 40 Gbps, packets
//! of varying length arrive so that the link is saturated on average,
//! with mean packet length 256 B and minimum 40 B. On the 5 ns system
//! cycle that works out to one packet every 2–18 cycles (uniform) at
//! 40 Gbps and every 6–74 cycles at 10 Gbps, which is exactly the model
//! implemented here.

use rand::rngs::StdRng;
use rand::Rng;

/// Line-card link speed after aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LcSpeed {
    /// 10 Gbps (e.g. aggregated OC-48s / 10GbE).
    Gbps10,
    /// 40 Gbps (OC-768).
    Gbps40,
}

impl LcSpeed {
    /// Inclusive range of inter-arrival gaps in cycles (§5.1).
    pub fn gap_range(self) -> (u64, u64) {
        match self {
            LcSpeed::Gbps40 => (2, 18),
            LcSpeed::Gbps10 => (6, 74),
        }
    }

    /// Mean inter-arrival gap in cycles.
    pub fn mean_gap(self) -> f64 {
        let (lo, hi) = self.gap_range();
        (lo + hi) as f64 / 2.0
    }

    /// Mean offered load in packets per second (5 ns cycles).
    pub fn packets_per_second(self) -> f64 {
        1.0 / (self.mean_gap() * 5e-9)
    }
}

/// Generates successive packet arrival times for one LC.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    speed: LcSpeed,
    next_at: u64,
}

impl ArrivalProcess {
    /// Start a process whose first packet arrives at cycle 0.
    pub fn new(speed: LcSpeed) -> Self {
        ArrivalProcess { speed, next_at: 0 }
    }

    /// The configured speed.
    pub fn speed(&self) -> LcSpeed {
        self.speed
    }

    /// Cycle at which the next packet arrives (without consuming it).
    pub fn peek(&self) -> u64 {
        self.next_at
    }

    /// Consume the pending arrival and schedule the one after it.
    pub fn advance(&mut self, rng: &mut StdRng) -> u64 {
        let now = self.next_at;
        let (lo, hi) = self.speed.gap_range();
        self.next_at = now + rng.gen_range(lo..=hi);
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gap_ranges_match_paper() {
        assert_eq!(LcSpeed::Gbps40.gap_range(), (2, 18));
        assert_eq!(LcSpeed::Gbps10.gap_range(), (6, 74));
        assert!((LcSpeed::Gbps40.mean_gap() - 10.0).abs() < 1e-12);
        assert!((LcSpeed::Gbps10.mean_gap() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn mean_rate_consistency() {
        // 256-byte packets at 40 Gbps: 40e9/(256·8) ≈ 19.5 Mpps; the
        // 10-cycle mean gap gives 20 Mpps. Same ballpark by construction.
        assert!((LcSpeed::Gbps40.packets_per_second() - 20e6).abs() < 1e-3);
        assert!((LcSpeed::Gbps10.packets_per_second() - 5e6).abs() < 1e-3);
    }

    #[test]
    fn arrivals_are_monotone_and_in_range() {
        let mut p = ArrivalProcess::new(LcSpeed::Gbps40);
        let mut rng = StdRng::seed_from_u64(8);
        let mut prev = p.advance(&mut rng);
        assert_eq!(prev, 0);
        for _ in 0..1000 {
            let next = p.advance(&mut rng);
            let gap = next - prev;
            assert!((2..=18).contains(&gap), "gap {gap}");
            prev = next;
        }
    }

    #[test]
    fn mean_gap_converges() {
        let mut p = ArrivalProcess::new(LcSpeed::Gbps10);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let mut last = 0;
        for _ in 0..n {
            last = p.advance(&mut rng);
        }
        let mean = last as f64 / (n - 1) as f64;
        assert!((39.0..41.0).contains(&mean), "mean gap {mean}");
    }
}
