//! Adversarial traffic generators for the operational-scenario suite.
//!
//! Steady-state presets calibrate *favourable* locality; these two
//! generators produce the opposite — the traffic shapes a cache-based
//! forwarding path is most likely to die on in production:
//!
//! * [`flash_crowd`] — a Zipf stream whose popularity mass collapses
//!   mid-trace onto a handful of hot /24 blocks (a flash crowd or a
//!   reflection-style DDoS converging on a few victim subnets);
//! * [`cache_thrash`] — phase-shifting disjoint working sets sized just
//!   past the LR-cache capacity, so LRU replacement evicts every entry
//!   right before its next use.
//!
//! Both are deterministic for a given seed and draw destinations inside
//! the routing table's covered space (plus in-block neighbours for the
//! hot /24s), so every address still resolves through the normal
//! lookup path.

use crate::locality::{LocalityModel, LocalitySampler};
use crate::pool::AddressPool;
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a [`flash_crowd`] trace.
#[derive(Debug, Clone, Copy)]
pub struct FlashCrowdConfig {
    /// Distinct destinations in the pre-collapse Zipf phase.
    pub distinct: usize,
    /// Zipf exponent of the pre-collapse phase.
    pub alpha: f64,
    /// Fraction of the trace after which the crowd forms (0..1).
    pub collapse_at: f64,
    /// Number of hot /24 blocks the crowd converges on.
    pub hot_blocks: usize,
    /// Post-collapse share of packets aimed at the hot blocks; the
    /// remainder keeps the background Zipf stream.
    pub hot_fraction: f64,
}

impl Default for FlashCrowdConfig {
    fn default() -> Self {
        FlashCrowdConfig {
            distinct: 20_000,
            alpha: 0.9,
            collapse_at: 0.5,
            hot_blocks: 8,
            hot_fraction: 0.9,
        }
    }
}

/// Generate a flash-crowd trace: phase one is an ordinary Zipf stream
/// over `cfg.distinct` covered destinations; from `collapse_at` onward,
/// `hot_fraction` of the packets hit addresses inside `hot_blocks`
/// /24 blocks picked around popular pool destinations. Hot packets
/// sample the full 256-address block (not just pool members), the way a
/// crowd fans out across one subnet.
///
/// # Panics
/// Panics on an empty table, zero `hot_blocks`, or fractions outside
/// `[0, 1]`.
pub fn flash_crowd(
    table: &spal_rib::RoutingTable,
    len: usize,
    seed: u64,
    cfg: &FlashCrowdConfig,
) -> Trace {
    assert!(cfg.hot_blocks > 0, "need at least one hot block");
    assert!(
        (0.0..=1.0).contains(&cfg.collapse_at) && (0.0..=1.0).contains(&cfg.hot_fraction),
        "fractions must be in [0, 1]"
    );
    let pool = AddressPool::covered(table, cfg.distinct, 0.0, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1A5_4C0D);
    let mut sampler = LocalitySampler::new(LocalityModel::Zipf { alpha: cfg.alpha }, pool.len());
    let addrs = pool.addresses();
    // Hot /24s around distinct popular destinations (low Zipf ranks are
    // at the front of the pool's rank order).
    let mut hot: Vec<u32> = Vec::with_capacity(cfg.hot_blocks);
    for &a in addrs {
        let block = a & 0xFFFF_FF00;
        if !hot.contains(&block) {
            hot.push(block);
            if hot.len() == cfg.hot_blocks {
                break;
            }
        }
    }
    let collapse = (len as f64 * cfg.collapse_at) as usize;
    let dests: Vec<u32> = (0..len)
        .map(|i| {
            if i >= collapse && rng.gen::<f64>() < cfg.hot_fraction {
                hot[rng.gen_range(0..hot.len())] | rng.gen_range(0u32..256)
            } else {
                addrs[sampler.next_index(&mut rng)]
            }
        })
        .collect();
    Trace::new(format!("flash-crowd({}x/24)", cfg.hot_blocks), dests)
}

/// Shape of a [`cache_thrash`] trace.
#[derive(Debug, Clone, Copy)]
pub struct ThrashConfig {
    /// Distinct destinations per phase — size this just past the
    /// LR-cache capacity (entries × a small overshoot) so LRU evicts
    /// each entry right before it recurs.
    pub working_set: usize,
    /// Packets per phase before the working set shifts to a disjoint
    /// one (every shift restarts the cold-miss cascade).
    pub phase_len: usize,
    /// Number of disjoint working sets cycled through.
    pub phases: usize,
}

impl Default for ThrashConfig {
    fn default() -> Self {
        ThrashConfig {
            working_set: 5_000,
            phase_len: 50_000,
            phases: 4,
        }
    }
}

/// Generate a cache-thrash trace: `cfg.phases` pairwise-disjoint
/// working sets of `cfg.working_set` covered destinations; within a
/// phase the set is scanned cyclically (maximal reuse distance — the
/// LRU worst case), and after `cfg.phase_len` packets the next phase's
/// disjoint set takes over.
///
/// # Panics
/// Panics on an empty table or zero sizes.
pub fn cache_thrash(
    table: &spal_rib::RoutingTable,
    len: usize,
    seed: u64,
    cfg: &ThrashConfig,
) -> Trace {
    assert!(
        cfg.working_set > 0 && cfg.phase_len > 0 && cfg.phases > 0,
        "thrash config sizes must be positive"
    );
    let pool = AddressPool::covered(table, cfg.working_set * cfg.phases, 0.0, seed);
    let addrs = pool.addresses();
    let dests: Vec<u32> = (0..len)
        .map(|i| {
            let phase = (i / cfg.phase_len) % cfg.phases;
            let set = &addrs[phase * cfg.working_set..(phase + 1) * cfg.working_set];
            set[i % cfg.working_set]
        })
        .collect();
    Trace::new(
        format!("cache-thrash(ws={},phases={})", cfg.working_set, cfg.phases),
        dests,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::synth;
    use std::collections::HashSet;

    #[test]
    fn flash_crowd_concentrates_after_collapse() {
        let rt = synth::small(9);
        let cfg = FlashCrowdConfig {
            distinct: 2_000,
            hot_blocks: 4,
            collapse_at: 0.5,
            hot_fraction: 0.9,
            ..Default::default()
        };
        let t = flash_crowd(&rt, 40_000, 7, &cfg);
        assert_eq!(t.len(), 40_000);
        let blocks = |s: &[u32]| -> HashSet<u32> { s.iter().map(|a| a >> 8).collect() };
        let pre = blocks(&t.destinations()[..20_000]);
        let post = blocks(&t.destinations()[20_000..]);
        // Post-collapse traffic collapses onto far fewer /24s.
        assert!(
            post.len() * 4 < pre.len(),
            "pre {} /24s vs post {}",
            pre.len(),
            post.len()
        );
        // Determinism.
        assert_eq!(
            t.destinations(),
            flash_crowd(&rt, 40_000, 7, &cfg).destinations()
        );
    }

    #[test]
    fn flash_crowd_hot_share_matches_config() {
        let rt = synth::small(9);
        let cfg = FlashCrowdConfig {
            distinct: 2_000,
            hot_blocks: 2,
            collapse_at: 0.0, // hot from packet 0
            hot_fraction: 0.8,
            ..Default::default()
        };
        let t = flash_crowd(&rt, 30_000, 3, &cfg);
        let mut counts: std::collections::HashMap<u32, usize> = Default::default();
        for &a in t.destinations() {
            *counts.entry(a >> 8).or_default() += 1;
        }
        let mut top: Vec<usize> = counts.values().copied().collect();
        top.sort_unstable_by(|a, b| b.cmp(a));
        let hot_share = (top[0] + top[1]) as f64 / t.len() as f64;
        assert!(
            (0.75..=0.95).contains(&hot_share),
            "hot share {hot_share:.3}"
        );
    }

    #[test]
    fn cache_thrash_phases_are_disjoint_and_cyclic() {
        let rt = synth::small(5);
        let cfg = ThrashConfig {
            working_set: 300,
            phase_len: 1_000,
            phases: 3,
        };
        let t = cache_thrash(&rt, 6_000, 11, &cfg);
        assert_eq!(t.len(), 6_000);
        let set = |lo: usize, hi: usize| -> HashSet<u32> {
            t.destinations()[lo..hi].iter().copied().collect()
        };
        let p0 = set(0, 1_000);
        let p1 = set(1_000, 2_000);
        let p2 = set(2_000, 3_000);
        assert_eq!(p0.len(), 300);
        assert!(p0.is_disjoint(&p1), "phases share destinations");
        assert!(p1.is_disjoint(&p2), "phases share destinations");
        // The cycle wraps: packets 3000.. replay phase 0's set.
        assert_eq!(set(3_000, 4_000), p0);
        // Within a phase the scan is cyclic: reuse distance == ws.
        let d = t.destinations();
        assert_eq!(d[0], d[300]);
        assert_eq!(d[1], d[301]);
    }

    #[test]
    #[should_panic]
    fn thrash_rejects_zero_working_set() {
        let rt = synth::small(5);
        let _ = cache_thrash(
            &rt,
            100,
            1,
            &ThrashConfig {
                working_set: 0,
                ..Default::default()
            },
        );
    }
}
