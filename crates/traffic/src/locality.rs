//! Popularity and temporal-locality models for destination addresses.
//!
//! IP destination popularity is heavily skewed — the paper cites \[9\]:
//! a small share of flows (≈9 %) carries most traffic (≈90 %). A Zipf
//! distribution over a pool of distinct destinations captures that, and a
//! geometric "packet train" overlay captures flow-level burstiness (a few
//! consecutive packets to the same destination).

use rand::rngs::StdRng;
use rand::Rng;

/// Walker's alias method: O(n) construction, O(1) sampling from an
/// arbitrary discrete distribution. Used for Zipf popularity over pools
/// of up to a few hundred thousand destinations.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights (not necessarily normalised).
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: everything remaining keeps probability 1.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index.
    #[inline]
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// How destination addresses repeat over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LocalityModel {
    /// Independent draws from a Zipf(`alpha`) popularity distribution
    /// (the independent reference model).
    Zipf { alpha: f64 },
    /// Zipf draws, but with probability `burst_prob` the previous
    /// destination is repeated, giving geometric packet trains with mean
    /// length `1 / (1 - burst_prob)` — flow-level locality.
    ZipfBursty { alpha: f64, burst_prob: f64 },
}

impl LocalityModel {
    /// The Zipf exponent.
    pub fn alpha(self) -> f64 {
        match self {
            LocalityModel::Zipf { alpha } | LocalityModel::ZipfBursty { alpha, .. } => alpha,
        }
    }

    /// Zipf rank weights for a pool of `n` destinations.
    pub fn weights(self, n: usize) -> Vec<f64> {
        let alpha = self.alpha();
        (1..=n).map(|k| (k as f64).powf(-alpha)).collect()
    }
}

/// A stateful generator of destination indexes into a pool.
#[derive(Debug, Clone)]
pub struct LocalitySampler {
    table: AliasTable,
    model: LocalityModel,
    last: Option<usize>,
}

impl LocalitySampler {
    /// Build a sampler over a pool of `n` destinations.
    pub fn new(model: LocalityModel, n: usize) -> Self {
        LocalitySampler {
            table: AliasTable::new(&model.weights(n)),
            model,
            last: None,
        }
    }

    /// Draw the next destination index.
    pub fn next_index(&mut self, rng: &mut StdRng) -> usize {
        if let LocalityModel::ZipfBursty { burst_prob, .. } = self.model {
            if let Some(last) = self.last {
                if rng.gen::<f64>() < burst_prob {
                    return last;
                }
            }
        }
        let idx = self.table.sample(rng);
        self.last = Some(idx);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn alias_uniform_weights() {
        let t = AliasTable::new(&[1.0; 4]);
        let mut counts = [0usize; 4];
        let mut r = rng();
        for _ in 0..40_000 {
            counts[t.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn alias_skewed_weights() {
        let t = AliasTable::new(&[8.0, 1.0, 1.0]);
        let mut counts = [0usize; 3];
        let mut r = rng();
        for _ in 0..50_000 {
            counts[t.sample(&mut r)] += 1;
        }
        // Outcome 0 has 80 % mass.
        assert!(counts[0] > 38_000, "counts {counts:?}");
        assert!(counts[1] > 3_500 && counts[2] > 3_500);
    }

    #[test]
    fn alias_single_outcome() {
        let t = AliasTable::new(&[3.0]);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(t.sample(&mut r), 0);
        }
    }

    #[test]
    #[should_panic]
    fn alias_rejects_empty() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic]
    fn alias_rejects_zero_mass() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_mass_concentrates() {
        // With alpha = 1.2 over 10_000 outcomes, the top 100 ranks should
        // carry well over half the mass.
        let model = LocalityModel::Zipf { alpha: 1.2 };
        let mut s = LocalitySampler::new(model, 10_000);
        let mut r = rng();
        let mut top = 0usize;
        let n = 50_000;
        for _ in 0..n {
            if s.next_index(&mut r) < 100 {
                top += 1;
            }
        }
        assert!(
            top as f64 / n as f64 > 0.55,
            "top share {}",
            top as f64 / n as f64
        );
    }

    #[test]
    fn bursts_repeat_destinations() {
        let model = LocalityModel::ZipfBursty {
            alpha: 1.0,
            burst_prob: 0.5,
        };
        let mut s = LocalitySampler::new(model, 100_000);
        let mut r = rng();
        let mut repeats = 0usize;
        let mut prev = s.next_index(&mut r);
        let n = 20_000;
        for _ in 0..n {
            let cur = s.next_index(&mut r);
            if cur == prev {
                repeats += 1;
            }
            prev = cur;
        }
        // Roughly half the packets continue the current train; the pool
        // is large enough that accidental repeats are negligible.
        let rate = repeats as f64 / n as f64;
        assert!((0.4..0.6).contains(&rate), "repeat rate {rate}");
    }

    #[test]
    fn weights_are_monotone() {
        let w = LocalityModel::Zipf { alpha: 1.0 }.weights(5);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[4] - 0.2).abs() < 1e-12);
    }
}
