//! Traffic substrate: destination-address traces and packet arrival
//! processes for the trace-driven simulation of §5.
//!
//! The paper drives its simulator with five public traces — two
//! WorldCup98 days (D_75, D_81), two Abilene-I segments (L_92-0, L_92-1)
//! and Bell Labs-I (B_L) — none of which is retrievable today. This crate
//! substitutes *named synthetic presets* ([`presets`]) whose single
//! relevant property, temporal locality of destination addresses, is
//! calibrated so a 4K-block LR-cache sees the >0.9 hit-rate band the
//! paper and its references \[5, 6\] report, with the five presets spread
//! across the locality range the five real traces span (visible as the
//! vertical spread in the paper's Figs. 4–6).
//!
//! Components:
//! * [`adversarial`] — flash-crowd collapse and cache-thrash traces for
//!   the operational-scenario suite;
//! * [`locality`] — Zipf popularity with an O(1) alias-method sampler and
//!   an optional packet-train (burst) overlay modelling flows;
//! * [`pool`] — distinct-destination pools drawn inside a routing table's
//!   covered space;
//! * [`trace`] — trace containers, per-LC stream splitting, text I/O;
//! * [`arrival`] — the §5.1 packet arrival processes (uniform 2–18 cycle
//!   gaps at 40 Gbps, 6–74 at 10 Gbps, mean packet 256 B).

pub mod adversarial;
pub mod analysis;
pub mod arrival;
pub mod locality;
pub mod pool;
pub mod presets;
pub mod trace;
pub mod v6;

pub use adversarial::{cache_thrash, flash_crowd, FlashCrowdConfig, ThrashConfig};
pub use arrival::{ArrivalProcess, LcSpeed};
pub use locality::{AliasTable, LocalityModel};
pub use pool::AddressPool;
pub use presets::{preset, PresetName, TracePreset, ALL_PRESETS};
pub use trace::Trace;
pub use v6::{generate6, AddressPool6, Trace6};
