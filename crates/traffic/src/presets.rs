//! Named trace presets standing in for the five public traces the paper
//! simulates (§5.1–5.2).
//!
//! Each preset fixes a distinct-destination count and a locality model so
//! that the five synthetic traces spread across the locality range the
//! real ones span: L_92-0 is the paper's best-behaved curve (lowest mean
//! lookup time in Figs. 4–6) and B_L the worst. The absolute parameters
//! are calibrated so a 4K-block LR-cache lands in the >0.9 hit-rate band
//! reported by the paper's references \[5, 6\] for 1998/2002 traffic.

use crate::locality::LocalityModel;
use crate::pool::AddressPool;
use crate::trace::Trace;
use spal_rib::RoutingTable;

/// The five trace identities used throughout §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PresetName {
    /// WorldCup98, July 9 1998.
    D75,
    /// WorldCup98, July 15 1998.
    D81,
    /// Abilene-I, segment 0.
    L92_0,
    /// Abilene-I, segment 1.
    L92_1,
    /// Bell Labs-I.
    BL,
}

impl PresetName {
    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PresetName::D75 => "D_75",
            PresetName::D81 => "D_81",
            PresetName::L92_0 => "L_92-0",
            PresetName::L92_1 => "L_92-1",
            PresetName::BL => "B_L",
        }
    }
}

/// All five presets, in the paper's legend order.
pub const ALL_PRESETS: [PresetName; 5] = [
    PresetName::D75,
    PresetName::D81,
    PresetName::L92_0,
    PresetName::L92_1,
    PresetName::BL,
];

/// Generation parameters of one preset.
#[derive(Debug, Clone, Copy)]
pub struct TracePreset {
    pub name: PresetName,
    /// Distinct destination addresses in the pool.
    pub distinct: usize,
    /// Temporal-locality model.
    pub model: LocalityModel,
    /// Base RNG seed (combined with the caller's seed).
    pub seed: u64,
}

/// Parameters for one named preset.
pub fn preset(name: PresetName) -> TracePreset {
    // Burstiness (packet trains) models flow locality on top of Zipf
    // popularity; higher alpha / fewer distinct destinations = more
    // cacheable. Order of curves matches the paper: L_92-0 best, B_L
    // worst.
    // Distinct counts are calibrated against the paper's 300,000-packet
    // per-LC windows: a 4K-block LR-cache must land in the >0.9 hit-rate
    // band of refs [5, 6], with B_L the least cacheable trace.
    match name {
        PresetName::D75 => TracePreset {
            name,
            distinct: 20_000,
            model: LocalityModel::ZipfBursty {
                alpha: 1.2,
                burst_prob: 0.40,
            },
            seed: 0xD75,
        },
        PresetName::D81 => TracePreset {
            name,
            distinct: 28_000,
            model: LocalityModel::ZipfBursty {
                alpha: 1.15,
                burst_prob: 0.40,
            },
            seed: 0xD81,
        },
        PresetName::L92_0 => TracePreset {
            name,
            distinct: 10_000,
            model: LocalityModel::ZipfBursty {
                alpha: 1.3,
                burst_prob: 0.50,
            },
            seed: 0x920,
        },
        PresetName::L92_1 => TracePreset {
            name,
            distinct: 14_000,
            model: LocalityModel::ZipfBursty {
                alpha: 1.25,
                burst_prob: 0.45,
            },
            seed: 0x921,
        },
        PresetName::BL => TracePreset {
            name,
            distinct: 32_000,
            model: LocalityModel::ZipfBursty {
                alpha: 1.12,
                burst_prob: 0.35,
            },
            seed: 0xB1,
        },
    }
}

impl TracePreset {
    /// Generate this preset's trace over a routing table: `len` packets
    /// whose destinations are covered by the table.
    pub fn generate(&self, table: &RoutingTable, len: usize, seed: u64) -> Trace {
        let pool = AddressPool::covered(table, self.distinct, 0.0, self.seed ^ seed);
        Trace::generate(
            self.name.label(),
            &pool,
            self.model,
            len,
            self.seed.rotate_left(17) ^ seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::synth;

    #[test]
    fn labels_match_paper() {
        assert_eq!(preset(PresetName::D75).name.label(), "D_75");
        assert_eq!(preset(PresetName::BL).name.label(), "B_L");
        assert_eq!(ALL_PRESETS.len(), 5);
    }

    #[test]
    fn locality_ordering() {
        // L_92-0 must be the most cacheable, B_L the least: fewer
        // distinct destinations and a higher alpha.
        let l92 = preset(PresetName::L92_0);
        let bl = preset(PresetName::BL);
        assert!(l92.distinct < bl.distinct);
        assert!(l92.model.alpha() > bl.model.alpha());
    }

    #[test]
    fn generation_works_and_is_deterministic() {
        let rt = synth::synthesize(&synth::SynthConfig::sized(5_000, 2));
        let p = preset(PresetName::L92_0);
        // Pool size may exceed what a small table can host distinctly;
        // use a preset-sized table in real experiments. Shrink here.
        let small = TracePreset {
            distinct: 2_000,
            ..p
        };
        let a = small.generate(&rt, 10_000, 42);
        let b = small.generate(&rt, 10_000, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10_000);
        for &d in a.destinations().iter().take(100) {
            assert!(rt.covers(d));
        }
    }
}
