//! Pools of distinct destination addresses drawn from a routing table's
//! covered space.
//!
//! A trace's destinations must actually resolve against the forwarding
//! tables (real traces are collected on networks whose routes exist), so
//! pool addresses are sampled *inside* randomly chosen routes. Sampling
//! routes uniformly (rather than by address-space size) concentrates
//! destinations in the short, numerous /24s exactly as production traffic
//! concentrates in allocated, announced space.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spal_rib::RoutingTable;
use std::collections::HashSet;

/// A set of distinct destination addresses.
#[derive(Debug, Clone)]
pub struct AddressPool {
    addrs: Vec<u32>,
}

impl AddressPool {
    /// Draw `size` distinct addresses covered by `table`, plus
    /// `uncovered_fraction` of the pool (rounded down) drawn anywhere in
    /// the address space (traffic that will miss the routing table).
    ///
    /// # Panics
    /// Panics if the table is empty but covered addresses are requested.
    pub fn covered(table: &RoutingTable, size: usize, uncovered_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&uncovered_fraction),
            "uncovered fraction must be in [0, 1]"
        );
        let n_uncovered = (size as f64 * uncovered_fraction) as usize;
        let n_covered = size - n_uncovered;
        assert!(
            n_covered == 0 || !table.is_empty(),
            "cannot draw covered addresses from an empty table"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen: HashSet<u32> = HashSet::with_capacity(size * 2);
        let mut addrs = Vec::with_capacity(size);
        while addrs.len() < n_covered {
            let e = table.entries()[rng.gen_range(0..table.len())];
            let span = e.prefix.size();
            let addr = e
                .prefix
                .first_addr()
                .wrapping_add((rng.gen::<u64>() % span) as u32);
            if seen.insert(addr) {
                addrs.push(addr);
            }
        }
        while addrs.len() < size {
            let addr: u32 = rng.gen();
            if !table.covers(addr) && seen.insert(addr) {
                addrs.push(addr);
            }
        }
        // Shuffle so Zipf rank is independent of how the address was
        // drawn (covered/uncovered, early/late route).
        for i in (1..addrs.len()).rev() {
            let j = rng.gen_range(0..=i);
            addrs.swap(i, j);
        }
        AddressPool { addrs }
    }

    /// Like [`AddressPool::covered`], but spatially *clustered*: routes
    /// are drawn `size / cluster` times and `cluster` distinct addresses
    /// are taken inside each, modelling many hosts per active subnet
    /// (the spatial density that range-caching schemes such as ref \[6\]
    /// exploit).
    ///
    /// # Panics
    /// Panics if `cluster` is zero or the table is empty.
    pub fn covered_clustered(table: &RoutingTable, size: usize, cluster: usize, seed: u64) -> Self {
        assert!(cluster > 0, "cluster size must be positive");
        assert!(!table.is_empty(), "cannot draw from an empty table");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen: HashSet<u32> = HashSet::with_capacity(size * 2);
        let mut addrs = Vec::with_capacity(size);
        while addrs.len() < size {
            let e = table.entries()[rng.gen_range(0..table.len())];
            let span = e.prefix.size();
            let want = cluster.min(size - addrs.len()).min(span as usize);
            let mut placed = 0;
            let mut attempts = 0;
            while placed < want && attempts < want * 8 {
                attempts += 1;
                let addr = e
                    .prefix
                    .first_addr()
                    .wrapping_add((rng.gen::<u64>() % span) as u32);
                if seen.insert(addr) {
                    addrs.push(addr);
                    placed += 1;
                }
            }
        }
        for i in (1..addrs.len()).rev() {
            let j = rng.gen_range(0..=i);
            addrs.swap(i, j);
        }
        AddressPool { addrs }
    }

    /// A pool of exactly the given addresses (deduplicated, order kept).
    pub fn from_addresses(addrs: impl IntoIterator<Item = u32>) -> Self {
        let mut seen = HashSet::new();
        let addrs = addrs.into_iter().filter(|a| seen.insert(*a)).collect();
        AddressPool { addrs }
    }

    /// The addresses, in Zipf-rank order (index 0 is the most popular).
    pub fn addresses(&self) -> &[u32] {
        &self.addrs
    }

    /// Number of distinct destinations.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::synth;

    #[test]
    fn covered_addresses_resolve() {
        let rt = synth::small(1);
        let pool = AddressPool::covered(&rt, 500, 0.0, 7);
        assert_eq!(pool.len(), 500);
        for &a in pool.addresses() {
            assert!(rt.covers(a), "{a:#010x} not covered");
        }
    }

    #[test]
    fn uncovered_fraction_respected() {
        let rt = synth::small(1);
        let pool = AddressPool::covered(&rt, 400, 0.25, 7);
        let uncovered = pool.addresses().iter().filter(|&&a| !rt.covers(a)).count();
        assert_eq!(uncovered, 100);
    }

    #[test]
    fn distinct_addresses() {
        let rt = synth::small(2);
        let pool = AddressPool::covered(&rt, 1000, 0.1, 9);
        let set: HashSet<u32> = pool.addresses().iter().copied().collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn deterministic_by_seed() {
        let rt = synth::small(3);
        let a = AddressPool::covered(&rt, 200, 0.0, 5);
        let b = AddressPool::covered(&rt, 200, 0.0, 5);
        assert_eq!(a.addresses(), b.addresses());
        let c = AddressPool::covered(&rt, 200, 0.0, 6);
        assert_ne!(a.addresses(), c.addresses());
    }

    #[test]
    fn clustered_pool_is_spatially_dense() {
        let rt = synth::small(7);
        let pool = AddressPool::covered_clustered(&rt, 800, 8, 3);
        assert_eq!(pool.len(), 800);
        // Distinctness preserved.
        let set: HashSet<u32> = pool.addresses().iter().copied().collect();
        assert_eq!(set.len(), 800);
        // Density: many pairs share a /24.
        let mut subnets: HashSet<u32> = HashSet::new();
        for &a in pool.addresses() {
            subnets.insert(a >> 8);
        }
        assert!(
            subnets.len() * 2 < 800,
            "only {} distinct /24s for 800 addrs",
            subnets.len()
        );
        // All covered.
        for &a in pool.addresses() {
            assert!(rt.covers(a));
        }
    }

    #[test]
    fn from_addresses_dedups() {
        let pool = AddressPool::from_addresses([1, 2, 2, 3, 1]);
        assert_eq!(pool.addresses(), &[1, 2, 3]);
    }
}
