//! Messages exchanged across the switching fabric.
//!
//! All message types are generic over the address width [`FabricAddr`]
//! (`u32` IPv4, the default type parameter, or `u128` IPv6), so the
//! same ring/outbox/coalescing machinery serves both dataplanes; a bare
//! `FabricMsg` is the IPv4 message the v4 runtime always used.

/// An address a fabric message can carry: plain old data wide enough
/// for one destination IP.
pub trait FabricAddr: Copy + Default + Eq + std::fmt::Debug + 'static {}
impl FabricAddr for u32 {}
impl FabricAddr for u128 {}

/// Maximum addresses one batch message carries. Batch payloads are
/// fixed-size inline arrays (the SPSC ring requires `Copy` slots, so no
/// heap indirection): at 32 lanes a v4 `FabricMsg` is ~290 bytes, which
/// keeps per-packet ring traffic under 10 bytes once a vector-mode
/// worker coalesces its misses, without bloating ring memory the way a
/// cache-line-per-address layout would. (A v6 batch message is ~4×
/// larger — still far below a line per address.)
pub const BATCH_MSG_LANES: usize = 32;

/// Payload of a [`MsgKind::BatchRequest`]: up to [`BATCH_MSG_LANES`]
/// addresses homed on the destination LC, coalesced from one sender
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrBatch<A: FabricAddr = u32> {
    len: u8,
    addrs: [A; BATCH_MSG_LANES],
}

impl<A: FabricAddr> AddrBatch<A> {
    /// Pack a slice of addresses.
    ///
    /// # Panics
    /// Panics if the slice is empty or longer than [`BATCH_MSG_LANES`].
    pub fn from_slice(addrs: &[A]) -> Self {
        assert!(
            !addrs.is_empty() && addrs.len() <= BATCH_MSG_LANES,
            "batch of {} addresses (lanes: {BATCH_MSG_LANES})",
            addrs.len()
        );
        let mut packed = [A::default(); BATCH_MSG_LANES];
        packed[..addrs.len()].copy_from_slice(addrs);
        AddrBatch {
            len: addrs.len() as u8,
            addrs: packed,
        }
    }

    /// The packed addresses, in sender order.
    pub fn addrs(&self) -> &[A] {
        &self.addrs[..self.len as usize]
    }

    /// Number of addresses carried.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the batch carries nothing (never true for a constructed
    /// batch; present for clippy's `len`-without-`is_empty` lint).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Payload of a [`MsgKind::BatchReply`]: up to [`BATCH_MSG_LANES`]
/// `(address, next_hop)` results, all computed against the same table
/// version (the carrying message's `sent_at`) — the home LC answers a
/// coalesced request with one `lookup_batch` call and one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyBatch<A: FabricAddr = u32> {
    len: u8,
    addrs: [A; BATCH_MSG_LANES],
    next_hops: [Option<u16>; BATCH_MSG_LANES],
}

impl<A: FabricAddr> ReplyBatch<A> {
    /// Pack `(address, next_hop)` pairs.
    ///
    /// # Panics
    /// Panics if the slice is empty or longer than [`BATCH_MSG_LANES`].
    pub fn from_pairs(pairs: &[(A, Option<u16>)]) -> Self {
        assert!(
            !pairs.is_empty() && pairs.len() <= BATCH_MSG_LANES,
            "batch of {} replies (lanes: {BATCH_MSG_LANES})",
            pairs.len()
        );
        let mut addrs = [A::default(); BATCH_MSG_LANES];
        let mut next_hops = [None; BATCH_MSG_LANES];
        for (i, &(a, nh)) in pairs.iter().enumerate() {
            addrs[i] = a;
            next_hops[i] = nh;
        }
        ReplyBatch {
            len: pairs.len() as u8,
            addrs,
            next_hops,
        }
    }

    /// Iterate the packed `(address, next_hop)` pairs in sender order.
    pub fn iter(&self) -> impl Iterator<Item = (A, Option<u16>)> + '_ {
        (0..self.len as usize).map(move |i| (self.addrs[i], self.next_hops[i]))
    }

    /// Number of results carried.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the batch carries nothing (never true for a constructed
    /// batch; present for clippy's `len`-without-`is_empty` lint).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// What a fabric message carries.
///
/// Requests travel from a packet's arrival LC to its home LC; replies
/// carry the lookup result back (§3.3). Identifiers are raw `u16`s so
/// this crate stays dependency-free; `spal-core` maps them to `NextHop`.
/// The batch variants are the vector-mode dataplane's coalesced forms:
/// one message per destination LC per iteration instead of one per
/// address, with the same per-address semantics on the receiving side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind<A: FabricAddr = u32> {
    /// "Look this address up for me" — routed by the partitioning bits.
    Request,
    /// The lookup result: `Some(next_hop)` or `None` for a routing miss.
    Reply { next_hop: Option<u16> },
    /// Coalesced requests: every address is homed on the destination LC.
    BatchRequest(AddrBatch<A>),
    /// Coalesced replies, all stamped with the carrying message's
    /// `sent_at` table version.
    BatchReply(ReplyBatch<A>),
}

/// One message in flight over the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricMsg<A: FabricAddr = u32> {
    pub kind: MsgKind<A>,
    /// Originating LC (the reply's destination, read by the LR2 detector).
    pub src: u16,
    /// Destination LC (the home LC for requests).
    pub dst: u16,
    /// The packet's destination IP address.
    pub addr: A,
    /// Simulator-level packet identity (latency accounting).
    pub packet_id: u64,
    /// Cycle the message entered the fabric.
    pub sent_at: u64,
}

impl<A: FabricAddr> FabricMsg<A> {
    /// Whether this is a request (scalar or batch).
    pub fn is_request(&self) -> bool {
        matches!(self.kind, MsgKind::Request | MsgKind::BatchRequest(_))
    }

    /// Number of addresses this message carries (1 for scalar kinds).
    pub fn lanes(&self) -> usize {
        match &self.kind {
            MsgKind::Request | MsgKind::Reply { .. } => 1,
            MsgKind::BatchRequest(b) => b.len(),
            MsgKind::BatchReply(b) => b.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        let req = FabricMsg {
            kind: MsgKind::Request,
            src: 0,
            dst: 1,
            addr: 42u32,
            packet_id: 7,
            sent_at: 100,
        };
        assert!(req.is_request());
        assert_eq!(req.lanes(), 1);
        let rep = FabricMsg {
            kind: MsgKind::Reply { next_hop: Some(3) },
            ..req
        };
        assert!(!rep.is_request());
    }

    #[test]
    fn addr_batch_packs_and_unpacks() {
        let addrs: Vec<u32> = (0..7).map(|i| 0x0A00_0000 + i).collect();
        let b = AddrBatch::from_slice(&addrs);
        assert_eq!(b.len(), 7);
        assert!(!b.is_empty());
        assert_eq!(b.addrs(), &addrs[..]);
        let msg = FabricMsg {
            kind: MsgKind::BatchRequest(b),
            src: 2,
            dst: 0,
            addr: addrs[0],
            packet_id: 0,
            sent_at: 0,
        };
        assert!(msg.is_request());
        assert_eq!(msg.lanes(), 7);
    }

    #[test]
    fn reply_batch_preserves_pairs_in_order() {
        let pairs: Vec<(u32, Option<u16>)> = (0..BATCH_MSG_LANES as u32)
            .map(|i| (i * 13, if i % 3 == 0 { None } else { Some(i as u16) }))
            .collect();
        let b = ReplyBatch::from_pairs(&pairs);
        assert_eq!(b.len(), BATCH_MSG_LANES);
        assert_eq!(b.iter().collect::<Vec<_>>(), pairs);
        let msg = FabricMsg {
            kind: MsgKind::BatchReply(b),
            src: 0,
            dst: 2,
            addr: pairs[0].0,
            packet_id: 0,
            sent_at: 9,
        };
        assert!(!msg.is_request());
        assert_eq!(msg.lanes(), BATCH_MSG_LANES);
    }

    #[test]
    fn v6_messages_carry_full_width_addresses() {
        let addrs: Vec<u128> = (0..5u128).map(|i| (0x2001_0db8 + i) << 96 | i).collect();
        let b: AddrBatch<u128> = AddrBatch::from_slice(&addrs);
        assert_eq!(b.addrs(), &addrs[..]);
        let msg: FabricMsg<u128> = FabricMsg {
            kind: MsgKind::BatchRequest(b),
            src: 1,
            dst: 3,
            addr: addrs[0],
            packet_id: 0,
            sent_at: 0,
        };
        assert!(msg.is_request());
        assert_eq!(msg.lanes(), 5);
        let pairs: Vec<(u128, Option<u16>)> =
            addrs.iter().map(|&a| (a, Some((a & 0xF) as u16))).collect();
        let rb: ReplyBatch<u128> = ReplyBatch::from_pairs(&pairs);
        assert_eq!(rb.iter().collect::<Vec<_>>(), pairs);
    }

    #[test]
    #[should_panic]
    fn oversized_addr_batch_rejected() {
        let addrs = vec![0u32; BATCH_MSG_LANES + 1];
        let _ = AddrBatch::from_slice(&addrs);
    }

    #[test]
    #[should_panic]
    fn empty_reply_batch_rejected() {
        let _ = ReplyBatch::<u32>::from_pairs(&[]);
    }
}
