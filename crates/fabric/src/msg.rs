//! Messages exchanged across the switching fabric.

/// What a fabric message carries.
///
/// Requests travel from a packet's arrival LC to its home LC; replies
/// carry the lookup result back (§3.3). Identifiers are raw `u16`s so
/// this crate stays dependency-free; `spal-core` maps them to `NextHop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// "Look this address up for me" — routed by the partitioning bits.
    Request,
    /// The lookup result: `Some(next_hop)` or `None` for a routing miss.
    Reply { next_hop: Option<u16> },
}

/// One message in flight over the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricMsg {
    pub kind: MsgKind,
    /// Originating LC (the reply's destination, read by the LR2 detector).
    pub src: u16,
    /// Destination LC (the home LC for requests).
    pub dst: u16,
    /// The packet's destination IP address.
    pub addr: u32,
    /// Simulator-level packet identity (latency accounting).
    pub packet_id: u64,
    /// Cycle the message entered the fabric.
    pub sent_at: u64,
}

impl FabricMsg {
    /// Whether this is a request.
    pub fn is_request(&self) -> bool {
        matches!(self.kind, MsgKind::Request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        let req = FabricMsg {
            kind: MsgKind::Request,
            src: 0,
            dst: 1,
            addr: 42,
            packet_id: 7,
            sent_at: 100,
        };
        assert!(req.is_request());
        let rep = FabricMsg {
            kind: MsgKind::Reply { next_hop: Some(3) },
            ..req
        };
        assert!(!rep.is_request());
    }
}
