//! Bounded lock-free single-producer/single-consumer rings — the
//! dataplane's stand-in for the fabric's point-to-point links.
//!
//! The discrete-event simulator models the fabric's *timing*
//! ([`crate::SwitchingFabric`]); the multi-threaded dataplane runtime
//! needs its *mechanism*: a wait-free channel one LC worker can push
//! [`crate::FabricMsg`]s into while the destination worker pops them,
//! with no locks on either side. This is the classic Lamport ring:
//!
//! * a power-of-two slot array, a producer-owned `head` and a
//!   consumer-owned `tail`, both monotonically increasing indices taken
//!   modulo the capacity;
//! * the producer writes the slot *before* publishing it with a
//!   `Release` store of `head`; the consumer `Acquire`-loads `head`, so
//!   the slot write happens-before the slot read (and symmetrically for
//!   `tail` on the consume side, so a slot is never overwritten before
//!   its previous occupant has been read out);
//! * items are `Copy`, so slots need no drop handling and a ring can be
//!   torn down regardless of occupancy.
//!
//! Each half is `Send` (it moves to its worker thread) but deliberately
//! neither `Clone` nor `Sync`: exactly one producer and one consumer
//! exist per ring, which is what makes plain loads/stores on the indices
//! sufficient.

use std::mem::MaybeUninit;
use std::sync::Arc;

use spal_check::sync::{AtomicUsize, CheckCell, Ordering};

struct RingInner<T> {
    slots: Box<[CheckCell<MaybeUninit<T>>]>,
    /// Next index the producer will write (only the producer stores it).
    head: AtomicUsize,
    /// Next index the consumer will read (only the consumer stores it).
    tail: AtomicUsize,
}

// RingInner is Sync via CheckCell's `T: Send` bound: the
// producer/consumer split guarantees each slot is accessed by at most
// one thread at a time, with the head/tail Release/Acquire pairs
// ordering the accesses — exactly the discipline the model checker
// verifies when this crate is built with `--cfg spal_check`.

/// Producer half of a bounded SPSC ring (see [`spsc_ring`]).
pub struct SpscProducer<T> {
    inner: Arc<RingInner<T>>,
    mask: usize,
}

/// Consumer half of a bounded SPSC ring (see [`spsc_ring`]).
pub struct SpscConsumer<T> {
    inner: Arc<RingInner<T>>,
    mask: usize,
}

/// Create a bounded SPSC ring holding at most `capacity` items
/// (rounded up to a power of two, minimum 2).
pub fn spsc_ring<T: Copy + Send>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[CheckCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| CheckCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(RingInner {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        SpscProducer {
            inner: Arc::clone(&inner),
            mask: cap - 1,
        },
        SpscConsumer {
            inner,
            mask: cap - 1,
        },
    )
}

impl<T: Copy + Send> SpscProducer<T> {
    /// Capacity of the ring (a power of two).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Try to append `item`; returns it back if the ring is full.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        let head = self.inner.head.load(Ordering::Relaxed);
        let tail = self.inner.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) > self.mask {
            return Err(item);
        }
        // SAFETY: the slot at `head` is past the consumer's tail (checked
        // above), so only this producer touches it until the Release
        // store below publishes it.
        self.inner.slots[head & self.mask].with_mut(|p| unsafe {
            (*p).write(item);
        });
        // Seeded-bug hook: weakening this publish to Relaxed severs the
        // happens-before edge to the consumer's slot read — the model
        // checker must flag it (crates/check/tests assert that it does).
        let publish = if spal_check::bug_enabled("spsc-head-store-relaxed") {
            Ordering::Relaxed
        } else {
            Ordering::Release
        };
        self.inner.head.store(head.wrapping_add(1), publish);
        Ok(())
    }

    /// Burst push: append as many of `items` as fit, in order, with ONE
    /// `Release` store of `head` for the whole burst — the amortization
    /// vector-mode workers rely on (a per-item `try_push` loop pays a
    /// published store, and the consumer an `Acquire` reload, per
    /// message). Returns how many items were pushed; a full ring takes a
    /// capacity-aware partial prefix and leaves the rest to the caller.
    pub fn push_slice(&mut self, items: &[T]) -> usize {
        let head = self.inner.head.load(Ordering::Relaxed);
        let tail = self.inner.tail.load(Ordering::Acquire);
        let free = self.capacity() - head.wrapping_sub(tail);
        let n = free.min(items.len());
        if n == 0 {
            return 0;
        }
        for (i, item) in items[..n].iter().enumerate() {
            // SAFETY: slots head..head+n are past the consumer's tail
            // (free-space check above), so only this producer touches
            // them until the single Release store below publishes all n.
            self.inner.slots[head.wrapping_add(i) & self.mask].with_mut(|p| unsafe {
                (*p).write(*item);
            });
        }
        // Same seeded-bug hook as `try_push`: the burst publish is one
        // store, so weakening it severs the happens-before edge for
        // every slot in the burst at once.
        let publish = if spal_check::bug_enabled("spsc-head-store-relaxed") {
            Ordering::Relaxed
        } else {
            Ordering::Release
        };
        self.inner.head.store(head.wrapping_add(n), publish);
        n
    }

    /// Number of items currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.inner
            .head
            .load(Ordering::Relaxed)
            .wrapping_sub(self.inner.tail.load(Ordering::Acquire))
    }

    /// Whether the ring currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Copy + Send> SpscConsumer<T> {
    /// Capacity of the ring (a power of two).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Try to remove the oldest item.
    pub fn try_pop(&mut self) -> Option<T> {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: head > tail, so the producer published this slot (the
        // Acquire load of `head` ordered its write before this read) and
        // will not rewrite it until `tail` advances past it.
        let item = self.inner.slots[tail & self.mask].with(|p| unsafe { (*p).assume_init_read() });
        // Seeded-bug hook: a Relaxed tail store lets the producer reuse
        // the slot without ordering after this read (caught once the
        // ring wraps around).
        let release = if spal_check::bug_enabled("spsc-tail-store-relaxed") {
            Ordering::Relaxed
        } else {
            Ordering::Release
        };
        self.inner.tail.store(tail.wrapping_add(1), release);
        Some(item)
    }

    /// Burst pop: append up to `max` queued items onto `out`, in FIFO
    /// order, with ONE `Release` store of `tail` for the whole burst.
    /// Returns how many items were popped (0 on an empty ring).
    pub fn pop_slice(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Acquire);
        let n = head.wrapping_sub(tail).min(max);
        if n == 0 {
            return 0;
        }
        out.reserve(n);
        for i in 0..n {
            // SAFETY: indices tail..tail+n are below `head`, so the
            // producer published them (ordered by the Acquire load
            // above) and will not rewrite them until the single tail
            // store below frees the whole burst.
            let item = self.inner.slots[tail.wrapping_add(i) & self.mask]
                .with(|p| unsafe { (*p).assume_init_read() });
            out.push(item);
        }
        // Same seeded-bug hook as `try_pop`: the burst free is one
        // store, so weakening it lets the producer reuse all n slots
        // without ordering after the reads.
        let release = if spal_check::bug_enabled("spsc-tail-store-relaxed") {
            Ordering::Relaxed
        } else {
            Ordering::Release
        };
        self.inner.tail.store(tail.wrapping_add(n), release);
        n
    }

    /// Number of items currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.inner
            .head
            .load(Ordering::Acquire)
            .wrapping_sub(self.inner.tail.load(Ordering::Relaxed))
    }

    /// Whether the ring currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = spsc_ring::<u32>(4);
        assert_eq!(tx.capacity(), 4);
        for i in 0..4 {
            assert!(tx.try_push(i).is_ok());
        }
        assert_eq!(tx.try_push(99), Err(99));
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = spsc_ring::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = spsc_ring::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn wraparound_preserves_order() {
        let (mut tx, mut rx) = spsc_ring::<u64>(4);
        for round in 0..10u64 {
            for i in 0..3 {
                assert!(tx.try_push(round * 10 + i).is_ok());
            }
            for i in 0..3 {
                assert_eq!(rx.try_pop(), Some(round * 10 + i));
            }
        }
    }

    #[test]
    fn cross_thread_stress_no_loss_no_reorder() {
        // Push a long sequence through a tiny ring from another thread;
        // every item must come out exactly once, in order.
        const N: u64 = 200_000;
        let (mut tx, mut rx) = spsc_ring::<u64>(8);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut item = i;
                loop {
                    match tx.try_push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            match rx.try_pop() {
                Some(v) => {
                    assert_eq!(v, expected);
                    expected += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn push_slice_wraps_and_preserves_order() {
        // Force head/tail well past the array boundary, then burst
        // across the wrap: items must come out in push order.
        let (mut tx, mut rx) = spsc_ring::<u64>(8);
        let mut sink = Vec::new();
        for _ in 0..3 {
            assert_eq!(tx.push_slice(&[0, 0, 0]), 3);
            assert_eq!(rx.pop_slice(&mut sink, 3), 3);
        }
        sink.clear();
        let burst: Vec<u64> = (100..108).collect();
        assert_eq!(tx.push_slice(&burst), 8); // spans the wraparound
        assert_eq!(rx.pop_slice(&mut sink, usize::MAX), 8);
        assert_eq!(sink, burst);
    }

    #[test]
    fn push_slice_partial_into_nearly_full_ring() {
        let (mut tx, mut rx) = spsc_ring::<u32>(8);
        assert_eq!(tx.push_slice(&[1, 2, 3, 4, 5, 6]), 6);
        // Only 2 slots free: burst of 5 takes a partial prefix.
        assert_eq!(tx.push_slice(&[7, 8, 9, 10, 11]), 2);
        // Completely full: nothing fits.
        assert_eq!(tx.push_slice(&[99]), 0);
        let mut sink = Vec::new();
        assert_eq!(rx.pop_slice(&mut sink, usize::MAX), 8);
        assert_eq!(sink, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn pop_slice_on_empty_returns_zero() {
        let (mut tx, mut rx) = spsc_ring::<u8>(4);
        let mut sink = Vec::new();
        assert_eq!(rx.pop_slice(&mut sink, usize::MAX), 0);
        assert!(sink.is_empty());
        tx.push_slice(&[5]);
        assert_eq!(rx.pop_slice(&mut sink, usize::MAX), 1);
        assert_eq!(rx.pop_slice(&mut sink, usize::MAX), 0);
        assert_eq!(sink, vec![5]);
    }

    #[test]
    fn pop_slice_respects_max() {
        let (mut tx, mut rx) = spsc_ring::<u32>(16);
        assert_eq!(tx.push_slice(&[1, 2, 3, 4, 5]), 5);
        let mut sink = Vec::new();
        assert_eq!(rx.pop_slice(&mut sink, 2), 2);
        assert_eq!(sink, vec![1, 2]);
        assert_eq!(rx.pop_slice(&mut sink, 2), 2);
        assert_eq!(rx.pop_slice(&mut sink, 2), 1);
        assert_eq!(sink, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn burst_and_scalar_ops_interleave() {
        // try_push/try_pop and push_slice/pop_slice share the same
        // indices; mixing them must preserve FIFO order.
        let (mut tx, mut rx) = spsc_ring::<u32>(8);
        assert!(tx.try_push(1).is_ok());
        assert_eq!(tx.push_slice(&[2, 3]), 2);
        assert!(tx.try_push(4).is_ok());
        assert_eq!(rx.try_pop(), Some(1));
        let mut sink = Vec::new();
        assert_eq!(rx.pop_slice(&mut sink, usize::MAX), 3);
        assert_eq!(sink, vec![2, 3, 4]);
    }

    #[test]
    fn cross_thread_burst_stress_no_loss_no_reorder() {
        // Same invariant as the scalar stress test, but both sides use
        // burst operations with varying burst sizes through a tiny ring.
        const N: u64 = 200_000;
        let (mut tx, mut rx) = spsc_ring::<u64>(8);
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            let mut burst = Vec::with_capacity(16);
            while next < N {
                burst.clear();
                let want = (1 + next % 13).min(N - next);
                burst.extend(next..next + want);
                let mut off = 0;
                while off < burst.len() {
                    let pushed = tx.push_slice(&burst[off..]);
                    if pushed == 0 {
                        std::thread::yield_now();
                    }
                    off += pushed;
                }
                next += want;
            }
        });
        let mut expected = 0u64;
        let mut sink = Vec::with_capacity(16);
        while expected < N {
            sink.clear();
            if rx.pop_slice(&mut sink, 1 + (expected as usize % 7)) == 0 {
                std::thread::yield_now();
                continue;
            }
            for &v in &sink {
                assert_eq!(v, expected);
                expected += 1;
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn carries_fabric_messages() {
        use crate::{FabricMsg, MsgKind};
        let (mut tx, mut rx) = spsc_ring::<FabricMsg>(16);
        let msg = FabricMsg {
            kind: MsgKind::Reply { next_hop: Some(7) },
            src: 1,
            dst: 2,
            addr: 0x0A000001,
            packet_id: 42,
            sent_at: 0,
        };
        tx.try_push(msg).unwrap();
        assert_eq!(rx.try_pop(), Some(msg));
    }
}
