//! Bounded lock-free single-producer/single-consumer rings — the
//! dataplane's stand-in for the fabric's point-to-point links.
//!
//! The discrete-event simulator models the fabric's *timing*
//! ([`crate::SwitchingFabric`]); the multi-threaded dataplane runtime
//! needs its *mechanism*: a wait-free channel one LC worker can push
//! [`crate::FabricMsg`]s into while the destination worker pops them,
//! with no locks on either side. This is the classic Lamport ring:
//!
//! * a power-of-two slot array, a producer-owned `head` and a
//!   consumer-owned `tail`, both monotonically increasing indices taken
//!   modulo the capacity;
//! * the producer writes the slot *before* publishing it with a
//!   `Release` store of `head`; the consumer `Acquire`-loads `head`, so
//!   the slot write happens-before the slot read (and symmetrically for
//!   `tail` on the consume side, so a slot is never overwritten before
//!   its previous occupant has been read out);
//! * items are `Copy`, so slots need no drop handling and a ring can be
//!   torn down regardless of occupancy.
//!
//! Each half is `Send` (it moves to its worker thread) but deliberately
//! neither `Clone` nor `Sync`: exactly one producer and one consumer
//! exist per ring, which is what makes plain loads/stores on the indices
//! sufficient.

use std::mem::MaybeUninit;
use std::sync::Arc;

use spal_check::sync::{AtomicUsize, CheckCell, Ordering};

struct RingInner<T> {
    slots: Box<[CheckCell<MaybeUninit<T>>]>,
    /// Next index the producer will write (only the producer stores it).
    head: AtomicUsize,
    /// Next index the consumer will read (only the consumer stores it).
    tail: AtomicUsize,
}

// RingInner is Sync via CheckCell's `T: Send` bound: the
// producer/consumer split guarantees each slot is accessed by at most
// one thread at a time, with the head/tail Release/Acquire pairs
// ordering the accesses — exactly the discipline the model checker
// verifies when this crate is built with `--cfg spal_check`.

/// Producer half of a bounded SPSC ring (see [`spsc_ring`]).
pub struct SpscProducer<T> {
    inner: Arc<RingInner<T>>,
    mask: usize,
}

/// Consumer half of a bounded SPSC ring (see [`spsc_ring`]).
pub struct SpscConsumer<T> {
    inner: Arc<RingInner<T>>,
    mask: usize,
}

/// Create a bounded SPSC ring holding at most `capacity` items
/// (rounded up to a power of two, minimum 2).
pub fn spsc_ring<T: Copy + Send>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[CheckCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| CheckCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(RingInner {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        SpscProducer {
            inner: Arc::clone(&inner),
            mask: cap - 1,
        },
        SpscConsumer {
            inner,
            mask: cap - 1,
        },
    )
}

impl<T: Copy + Send> SpscProducer<T> {
    /// Capacity of the ring (a power of two).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Try to append `item`; returns it back if the ring is full.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        let head = self.inner.head.load(Ordering::Relaxed);
        let tail = self.inner.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) > self.mask {
            return Err(item);
        }
        // SAFETY: the slot at `head` is past the consumer's tail (checked
        // above), so only this producer touches it until the Release
        // store below publishes it.
        self.inner.slots[head & self.mask].with_mut(|p| unsafe {
            (*p).write(item);
        });
        // Seeded-bug hook: weakening this publish to Relaxed severs the
        // happens-before edge to the consumer's slot read — the model
        // checker must flag it (crates/check/tests assert that it does).
        let publish = if spal_check::bug_enabled("spsc-head-store-relaxed") {
            Ordering::Relaxed
        } else {
            Ordering::Release
        };
        self.inner.head.store(head.wrapping_add(1), publish);
        Ok(())
    }

    /// Number of items currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.inner
            .head
            .load(Ordering::Relaxed)
            .wrapping_sub(self.inner.tail.load(Ordering::Acquire))
    }

    /// Whether the ring currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Copy + Send> SpscConsumer<T> {
    /// Capacity of the ring (a power of two).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Try to remove the oldest item.
    pub fn try_pop(&mut self) -> Option<T> {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: head > tail, so the producer published this slot (the
        // Acquire load of `head` ordered its write before this read) and
        // will not rewrite it until `tail` advances past it.
        let item = self.inner.slots[tail & self.mask].with(|p| unsafe { (*p).assume_init_read() });
        // Seeded-bug hook: a Relaxed tail store lets the producer reuse
        // the slot without ordering after this read (caught once the
        // ring wraps around).
        let release = if spal_check::bug_enabled("spsc-tail-store-relaxed") {
            Ordering::Relaxed
        } else {
            Ordering::Release
        };
        self.inner.tail.store(tail.wrapping_add(1), release);
        Some(item)
    }

    /// Number of items currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.inner
            .head
            .load(Ordering::Acquire)
            .wrapping_sub(self.inner.tail.load(Ordering::Relaxed))
    }

    /// Whether the ring currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = spsc_ring::<u32>(4);
        assert_eq!(tx.capacity(), 4);
        for i in 0..4 {
            assert!(tx.try_push(i).is_ok());
        }
        assert_eq!(tx.try_push(99), Err(99));
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = spsc_ring::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = spsc_ring::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn wraparound_preserves_order() {
        let (mut tx, mut rx) = spsc_ring::<u64>(4);
        for round in 0..10u64 {
            for i in 0..3 {
                assert!(tx.try_push(round * 10 + i).is_ok());
            }
            for i in 0..3 {
                assert_eq!(rx.try_pop(), Some(round * 10 + i));
            }
        }
    }

    #[test]
    fn cross_thread_stress_no_loss_no_reorder() {
        // Push a long sequence through a tiny ring from another thread;
        // every item must come out exactly once, in order.
        const N: u64 = 200_000;
        let (mut tx, mut rx) = spsc_ring::<u64>(8);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut item = i;
                loop {
                    match tx.try_push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            match rx.try_pop() {
                Some(v) => {
                    assert_eq!(v, expected);
                    expected += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn carries_fabric_messages() {
        use crate::{FabricMsg, MsgKind};
        let (mut tx, mut rx) = spsc_ring::<FabricMsg>(16);
        let msg = FabricMsg {
            kind: MsgKind::Reply { next_hop: Some(7) },
            src: 1,
            dst: 2,
            addr: 0x0A000001,
            packet_id: 42,
            sent_at: 0,
        };
        tx.try_push(msg).unwrap();
        assert_eq!(rx.try_pop(), Some(msg));
    }
}
