//! Fabric topologies, their latency models, and the message-moving
//! machinery.

use crate::msg::FabricMsg;
use std::collections::VecDeque;

/// The interconnect structure between line cards (§3: shared bus for
/// small ψ, crossbar, or a multistage network built from small
/// crossbars).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricModel {
    /// A single shared bus: one injection per cycle across all LCs.
    SharedBus,
    /// A full crossbar: every input/output pair simultaneously.
    Crossbar,
    /// A multistage network of `radix`-port crossbars; one cycle per
    /// stage.
    Multistage { radix: usize },
    /// A fixed transit latency regardless of port count — for
    /// sensitivity studies on how fabric cost shifts the SPAL trade-offs
    /// (e.g. the γ mix optimum of Fig. 4).
    Fixed { cycles: u64 },
}

impl FabricModel {
    /// Transit latency in system cycles for a fabric with `ports` LCs.
    ///
    /// Calibrated to §1's "packet latency over the fabric being 10 ns or
    /// less" (= 2 cycles at 5 ns) for the router sizes the paper studies:
    /// a 1-cycle bus/crossbar at ψ ≤ 2, 2 cycles up to ψ = 16 for the
    /// crossbar, and one cycle per stage for the multistage structure.
    pub fn latency_cycles(self, ports: usize) -> u64 {
        let ports = ports.max(1);
        match self {
            FabricModel::SharedBus => 1,
            FabricModel::Crossbar => {
                if ports <= 2 {
                    1
                } else if ports <= 16 {
                    2
                } else {
                    // Larger crossbars pay extra wiring/arbitration delay.
                    2 + (ports as f64).log2().ceil() as u64 - 4
                }
            }
            FabricModel::Multistage { radix } => {
                assert!(radix >= 2, "multistage radix must be at least 2");
                if ports <= radix {
                    1
                } else {
                    (ports as f64).log(radix as f64).ceil() as u64
                }
            }
            FabricModel::Fixed { cycles } => cycles.max(1),
        }
    }
}

/// Aggregate fabric accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Messages accepted for transit.
    pub sent: u64,
    /// Messages handed to their destination LC.
    pub delivered: u64,
    /// Injections refused (bus busy).
    pub bus_conflicts: u64,
    /// Sum over delivered messages of (delivery − send) cycles,
    /// including output-port queueing.
    pub total_transit_cycles: u64,
}

impl FabricStats {
    /// Mean cycles a delivered message spent in the fabric.
    pub fn mean_transit(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_transit_cycles as f64 / self.delivered as f64
        }
    }
}

/// Injection failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The shared bus already carried a message this cycle; retry next
    /// cycle.
    BusBusy,
}

/// The switching fabric: constant-latency transit plus per-destination
/// output queues drained one message per cycle (output-port
/// serialisation).
#[derive(Debug, Clone)]
pub struct SwitchingFabric {
    model: FabricModel,
    ports: usize,
    latency: u64,
    /// Per-destination FIFO of (arrival_cycle, message). Constant latency
    /// keeps these ordered by arrival time.
    in_transit: Vec<VecDeque<(u64, FabricMsg)>>,
    /// Cycle of the last bus injection (SharedBus only).
    bus_last_cycle: Option<u64>,
    /// Cycle of the last delivery per destination port (serialisation).
    last_delivery: Vec<Option<u64>>,
    stats: FabricStats,
}

impl SwitchingFabric {
    /// Create a fabric connecting `ports` LCs.
    pub fn new(model: FabricModel, ports: usize) -> Self {
        assert!(ports >= 1, "a fabric needs at least one port");
        SwitchingFabric {
            model,
            ports,
            latency: model.latency_cycles(ports),
            in_transit: vec![VecDeque::new(); ports],
            bus_last_cycle: None,
            last_delivery: vec![None; ports],
            stats: FabricStats::default(),
        }
    }

    /// The topology.
    pub fn model(&self) -> FabricModel {
        self.model
    }

    /// Number of LC ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Transit latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Inject `msg` at cycle `now`. The caller (an LC's outgoing stage)
    /// injects at most one message per cycle per source; the fabric
    /// additionally enforces the shared bus's single global slot.
    pub fn send(&mut self, msg: FabricMsg, now: u64) -> Result<(), SendError> {
        debug_assert!((msg.dst as usize) < self.ports, "destination out of range");
        if self.model == FabricModel::SharedBus {
            if self.bus_last_cycle == Some(now) {
                self.stats.bus_conflicts += 1;
                return Err(SendError::BusBusy);
            }
            self.bus_last_cycle = Some(now);
        }
        let arrives = now + self.latency;
        self.in_transit[msg.dst as usize].push_back((arrives, msg));
        self.stats.sent += 1;
        Ok(())
    }

    /// Deliver at most one message to `dst` whose transit has completed
    /// by cycle `now` (output-port serialisation: one per cycle).
    pub fn receive(&mut self, dst: u16, now: u64) -> Option<FabricMsg> {
        if self.last_delivery[dst as usize] == Some(now) {
            return None; // the port already delivered this cycle
        }
        let q = &mut self.in_transit[dst as usize];
        match q.front() {
            Some(&(arrives, _)) if arrives <= now => {
                let (_, msg) = q.pop_front().expect("front exists");
                self.last_delivery[dst as usize] = Some(now);
                self.stats.delivered += 1;
                self.stats.total_transit_cycles += now - msg.sent_at;
                Some(msg)
            }
            _ => None,
        }
    }

    /// Messages still inside the fabric or waiting at output ports.
    pub fn in_flight(&self) -> usize {
        self.in_transit.iter().map(VecDeque::len).sum()
    }

    /// Whether [`SwitchingFabric::receive`] would hand `dst` a message
    /// at cycle `now` — a side-effect-free preview for schedulers that
    /// skip idle ports.
    pub fn deliverable(&self, dst: u16, now: u64) -> bool {
        self.last_delivery[dst as usize] != Some(now)
            && self.in_transit[dst as usize]
                .front()
                .is_some_and(|&(arrives, _)| arrives <= now)
    }

    /// Earliest cycle at which any in-flight message finishes transit,
    /// or `None` when the fabric is empty. Constant latency keeps each
    /// per-destination queue ordered by arrival time, so only queue
    /// fronts need inspecting. A message may still be delivered *later*
    /// than this (output-port serialisation), never earlier — which is
    /// exactly the guarantee an event-driven scheduler needs.
    pub fn next_delivery_at(&self) -> Option<u64> {
        (0..self.ports as u16)
            .filter_map(|dst| self.next_delivery_for(dst))
            .min()
    }

    /// Earliest transit-completion cycle among messages bound for `dst`,
    /// or `None` when none are in flight. Same guarantee as
    /// [`SwitchingFabric::next_delivery_at`], restricted to one output
    /// port — the per-LC event horizon an event-driven scheduler scans.
    pub fn next_delivery_for(&self, dst: u16) -> Option<u64> {
        self.in_transit[dst as usize]
            .front()
            .map(|&(arrives, _)| arrives)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgKind;

    fn msg(src: u16, dst: u16, id: u64, now: u64) -> FabricMsg {
        FabricMsg {
            kind: MsgKind::Request,
            src,
            dst,
            addr: 0,
            packet_id: id,
            sent_at: now,
        }
    }

    #[test]
    fn latency_models() {
        assert_eq!(FabricModel::SharedBus.latency_cycles(4), 1);
        assert_eq!(FabricModel::Crossbar.latency_cycles(2), 1);
        assert_eq!(FabricModel::Crossbar.latency_cycles(16), 2);
        assert_eq!(FabricModel::Crossbar.latency_cycles(64), 4);
        assert_eq!(FabricModel::Multistage { radix: 4 }.latency_cycles(4), 1);
        assert_eq!(FabricModel::Multistage { radix: 4 }.latency_cycles(16), 2);
        assert_eq!(FabricModel::Multistage { radix: 4 }.latency_cycles(64), 3);
    }

    #[test]
    fn transit_takes_latency_cycles() {
        let mut f = SwitchingFabric::new(FabricModel::Crossbar, 4);
        assert_eq!(f.latency(), 2);
        f.send(msg(0, 1, 1, 100), 100).unwrap();
        assert_eq!(f.receive(1, 100), None);
        assert_eq!(f.receive(1, 101), None);
        let m = f.receive(1, 102).unwrap();
        assert_eq!(m.packet_id, 1);
        assert_eq!(f.receive(1, 103), None);
        assert_eq!(f.stats().delivered, 1);
        assert_eq!(f.stats().total_transit_cycles, 2);
    }

    #[test]
    fn output_port_serialises() {
        let mut f = SwitchingFabric::new(FabricModel::Crossbar, 4);
        f.send(msg(0, 1, 1, 0), 0).unwrap();
        f.send(msg(2, 1, 2, 0), 0).unwrap();
        // Both arrive at cycle 2, but only one is handed over per cycle.
        assert_eq!(f.receive(1, 2).unwrap().packet_id, 1);
        assert_eq!(f.receive(1, 2), None); // caller polls once per cycle anyway
        assert_eq!(f.receive(1, 3).unwrap().packet_id, 2);
        // The second message's transit includes the queueing cycle.
        assert_eq!(f.stats().total_transit_cycles, 2 + 3);
    }

    #[test]
    fn bus_contention() {
        let mut f = SwitchingFabric::new(FabricModel::SharedBus, 4);
        f.send(msg(0, 1, 1, 5), 5).unwrap();
        assert_eq!(f.send(msg(2, 3, 2, 5), 5), Err(SendError::BusBusy));
        assert_eq!(f.stats().bus_conflicts, 1);
        f.send(msg(2, 3, 2, 6), 6).unwrap();
        assert_eq!(f.receive(3, 7).unwrap().packet_id, 2);
    }

    #[test]
    fn crossbar_parallel_paths() {
        let mut f = SwitchingFabric::new(FabricModel::Crossbar, 4);
        // Distinct destinations in the same cycle: no contention at all.
        f.send(msg(0, 1, 1, 0), 0).unwrap();
        f.send(msg(2, 3, 2, 0), 0).unwrap();
        assert!(f.receive(1, 2).is_some());
        assert!(f.receive(3, 2).is_some());
        assert_eq!(f.in_flight(), 0);
    }

    #[test]
    fn next_delivery_tracks_queue_fronts() {
        let mut f = SwitchingFabric::new(FabricModel::Crossbar, 4);
        assert_eq!(f.next_delivery_at(), None);
        f.send(msg(0, 1, 1, 10), 10).unwrap();
        f.send(msg(2, 3, 2, 12), 12).unwrap();
        // Latency 2: arrivals at 12 and 14; the minimum wins.
        assert_eq!(f.next_delivery_at(), Some(12));
        assert_eq!(f.next_delivery_for(1), Some(12));
        assert_eq!(f.next_delivery_for(3), Some(14));
        assert_eq!(f.next_delivery_for(0), None);
        assert!(f.receive(1, 12).is_some());
        assert_eq!(f.next_delivery_at(), Some(14));
        assert!(f.receive(3, 14).is_some());
        assert_eq!(f.next_delivery_at(), None);
    }

    #[test]
    fn different_destinations_isolated() {
        let mut f = SwitchingFabric::new(FabricModel::Crossbar, 4);
        f.send(msg(0, 2, 9, 0), 0).unwrap();
        assert_eq!(f.receive(1, 10), None);
        assert_eq!(f.receive(2, 10).unwrap().packet_id, 9);
    }
}
