//! Switching-fabric models for SPAL-based routers.
//!
//! §3 of the paper interconnects the line cards through a low-latency
//! fabric — "a shared-bus (for a small ψ), a crossbar, or a
//! multistage-based structure" — and deliberately abstracts the details:
//! "no emphasis on the fabric details will be placed, but the fabric
//! latency (in terms of system cycles) is assumed to depend on the fabric
//! size". This crate follows that contract:
//!
//! * [`FabricModel`] maps a topology and port count to a transit latency
//!   in cycles (≤ 2 cycles = 10 ns for the sizes the paper studies, per
//!   its §1 discussion of fast crossbars);
//! * [`SwitchingFabric`] moves [`FabricMsg`] lookup requests and replies
//!   between LCs with that latency, one injection per source per cycle
//!   and one delivery per destination per cycle (port serialisation), and
//!   a single shared injection slot per cycle for the bus topology;
//! * [`queue::Queue`] provides the FIFO queues the FIL chips use
//!   (input, request, outgoing, incoming — Fig. 2 of the paper);
//! * [`spsc::spsc_ring`] provides the bounded lock-free SPSC rings the
//!   multi-threaded dataplane runtime uses as real point-to-point links
//!   between LC worker threads (same [`FabricMsg`] payloads, actual
//!   concurrency instead of modelled cycle latency).

pub mod msg;
pub mod queue;
pub mod spsc;
pub mod topology;

pub use msg::{AddrBatch, FabricAddr, FabricMsg, MsgKind, ReplyBatch, BATCH_MSG_LANES};
pub use queue::Queue;
pub use spsc::{spsc_ring, SpscConsumer, SpscProducer};
pub use topology::{FabricModel, FabricStats, SendError, SwitchingFabric};
