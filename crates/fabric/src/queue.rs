//! FIFO queues used by the FIL chips (Fig. 2: input queue, request
//! queue, outgoing queue, incoming queue).

use std::collections::VecDeque;

/// A FIFO queue with an optional capacity bound and a high-water mark.
#[derive(Debug, Clone)]
pub struct Queue<T> {
    items: VecDeque<T>,
    capacity: Option<usize>,
    high_water: usize,
    total_enqueued: u64,
    rejected: u64,
}

impl<T> Default for Queue<T> {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl<T> Queue<T> {
    /// A queue without a capacity bound (the simulator's default: lookup
    /// traffic must not be silently dropped; pressure shows up as latency
    /// and in the high-water mark instead).
    pub fn unbounded() -> Self {
        Queue {
            items: VecDeque::new(),
            capacity: None,
            high_water: 0,
            total_enqueued: 0,
            rejected: 0,
        }
    }

    /// A queue holding at most `capacity` items.
    pub fn bounded(capacity: usize) -> Self {
        Queue {
            items: VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
            high_water: 0,
            total_enqueued: 0,
            rejected: 0,
        }
    }

    /// Append an item. Returns `false` (and counts a rejection) if the
    /// queue is at capacity.
    pub fn push(&mut self, item: T) -> bool {
        if let Some(cap) = self.capacity {
            if self.items.len() >= cap {
                self.rejected += 1;
                return false;
            }
        }
        self.items.push_back(item);
        self.total_enqueued += 1;
        self.high_water = self.high_water.max(self.items.len());
        true
    }

    /// Remove and return the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// The oldest item without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Largest occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total successful enqueues.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }

    /// Pushes rejected by the capacity bound.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Drop everything (table-update flush of in-flight state is NOT part
    /// of the paper's design; this exists for tests and resets).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterate without consuming.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = Queue::unbounded();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.peek(), Some(&2));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bounded_rejects_at_capacity() {
        let mut q = Queue::bounded(2);
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(!q.push(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.rejected(), 1);
        q.pop();
        assert!(q.push(3));
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = Queue::unbounded();
        q.push(1);
        q.push(2);
        q.pop();
        q.push(3);
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.total_enqueued(), 3);
    }

    #[test]
    fn clear_empties() {
        let mut q = Queue::unbounded();
        q.push(1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.high_water(), 1); // stats survive
    }
}
