//! Property tests for the switching fabric and queues: messages are
//! conserved, delivered in per-destination FIFO order, and never early.

use proptest::prelude::*;
use spal_fabric::{FabricModel, FabricMsg, MsgKind, Queue, SwitchingFabric};

fn arb_model() -> impl Strategy<Value = FabricModel> {
    prop_oneof![
        Just(FabricModel::SharedBus),
        Just(FabricModel::Crossbar),
        (2usize..=8).prop_map(|radix| FabricModel::Multistage { radix }),
        (1u64..=16).prop_map(|cycles| FabricModel::Fixed { cycles }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn messages_conserved_and_fifo_per_destination(
        model in arb_model(),
        ports in 1usize..=8,
        sends in proptest::collection::vec((0u16..8, 0u16..8, 0u64..40), 0..60),
    ) {
        let mut fabric = SwitchingFabric::new(model, ports);
        let latency = fabric.latency();
        let mut sent: Vec<FabricMsg> = Vec::new();
        // Drive sends over time (one attempted send per listed event, at
        // increasing cycles so the bus constraint rarely bites), then
        // drain.
        let mut now = 0u64;
        for (seq, (src, dst, gap)) in sends.into_iter().enumerate() {
            now += gap;
            let msg = FabricMsg {
                kind: MsgKind::Request,
                src: src % ports as u16,
                dst: dst % ports as u16,
                addr: seq as u32,
                packet_id: seq as u64,
                sent_at: now,
            };
            if fabric.send(msg, now).is_ok() {
                sent.push(msg);
            }
        }
        // Drain: poll every port each cycle until quiet.
        let mut received: Vec<(u64, FabricMsg)> = Vec::new();
        let deadline = now + latency + sent.len() as u64 + 4;
        for t in now..=deadline {
            for p in 0..ports as u16 {
                if let Some(m) = fabric.receive(p, t) {
                    received.push((t, m));
                }
            }
        }
        prop_assert_eq!(fabric.in_flight(), 0);
        prop_assert_eq!(received.len(), sent.len());
        for (t, m) in &received {
            // Never earlier than the transit latency.
            prop_assert!(*t >= m.sent_at + latency, "early delivery");
        }
        // Per-destination FIFO by send time.
        for dst in 0..ports as u16 {
            let times: Vec<u64> = received
                .iter()
                .filter(|(_, m)| m.dst == dst)
                .map(|(_, m)| m.sent_at)
                .collect();
            let mut sorted = times.clone();
            sorted.sort_unstable();
            prop_assert_eq!(times, sorted, "out-of-order at port {}", dst);
        }
        // Stats agree.
        prop_assert_eq!(fabric.stats().sent, sent.len() as u64);
        prop_assert_eq!(fabric.stats().delivered, sent.len() as u64);
    }

    #[test]
    fn queue_is_fifo_and_bounded(
        capacity in 1usize..32,
        items in proptest::collection::vec(any::<u32>(), 0..64),
        pops_between in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let mut q = Queue::bounded(capacity);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        for (i, &x) in items.iter().enumerate() {
            let accepted = q.push(x);
            prop_assert_eq!(accepted, model.len() < capacity);
            if accepted {
                model.push_back(x);
            }
            if pops_between[i % pops_between.len()] {
                prop_assert_eq!(q.pop(), model.pop_front());
            }
            prop_assert!(q.len() <= capacity);
            prop_assert_eq!(q.len(), model.len());
        }
        while let Some(x) = q.pop() {
            prop_assert_eq!(Some(x), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    #[test]
    fn latency_is_monotone_in_ports(model in arb_model()) {
        let mut prev = 0u64;
        for ports in [1usize, 2, 4, 8, 16, 32, 64] {
            let l = model.latency_cycles(ports);
            prop_assert!(l >= 1);
            prop_assert!(l >= prev, "latency shrank with size");
            prev = l;
        }
    }
}
