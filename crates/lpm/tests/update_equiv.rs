//! Property test for the incremental-update contract: applying a BGP
//! update stream in place to the incremental engines (DP trie, binary
//! trie) must be lookup-identical to rebuilding the engine from the
//! post-stream routing table — for arbitrary base tables, stream
//! lengths, and withdraw mixes. This is what the dataplane's RCU
//! control plane relies on when it syncs a shadow snapshot
//! incrementally instead of rebuilding it.

use proptest::prelude::*;
use spal_lpm::binary::BinaryTrie;
use spal_lpm::dp::DpTrie;
use spal_lpm::Lpm;
use spal_rib::updates::{update_stream, Update, UpdateStreamConfig};
use spal_rib::{synth, RoutingTable};

/// Random probes plus every final-table prefix's first address and a
/// near-miss neighbour — so equivalence is exercised on exact matches,
/// covered addresses, and addresses whose best match changed or
/// vanished mid-stream.
fn probe_addrs(fin: &RoutingTable, random: &[u32]) -> Vec<u32> {
    let mut addrs: Vec<u32> = random.to_vec();
    for e in fin.entries().iter().take(300) {
        let a = e.prefix.first_addr();
        addrs.push(a);
        addrs.push(a ^ 1);
        addrs.push(a.wrapping_sub(1));
    }
    addrs
}

proptest! {
    // Each case builds four engines and replays a whole stream; the
    // probe set inside a case is wide, so keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_stream_matches_rebuild(
        table_size in 30usize..600,
        table_seed in 0u64..40,
        update_count in 1usize..400,
        withdraw_tenths in 0u32..=9,
        stream_seed in 0u64..1_000,
        random_probes in proptest::collection::vec(any::<u32>(), 1..=64),
    ) {
        let base = synth::synthesize(&synth::SynthConfig::sized(table_size, table_seed));
        let (updates, fin) = update_stream(&base, &UpdateStreamConfig {
            count: update_count,
            withdraw_fraction: withdraw_tenths as f64 / 10.0,
            seed: stream_seed,
        });

        let mut dp = DpTrie::build(&base);
        let mut bin = BinaryTrie::build(&base);
        for &u in &updates {
            match u {
                Update::Announce(e) => {
                    dp.insert(e.prefix, e.next_hop);
                    bin.insert(e.prefix.bits(), e.prefix.len(), e.next_hop);
                }
                Update::Withdraw(p) => {
                    dp.remove(p);
                    bin.remove(p.bits(), p.len());
                }
            }
        }
        let dp_rebuilt = DpTrie::build(&fin);
        let bin_rebuilt = BinaryTrie::build(&fin);

        for &addr in &probe_addrs(&fin, &random_probes) {
            let oracle = fin.longest_match(addr).map(|e| e.next_hop);
            prop_assert_eq!(
                dp.lookup(addr), oracle,
                "DP incremental diverged from table oracle at {:#010x}", addr
            );
            prop_assert_eq!(
                bin.lookup(addr), oracle,
                "binary incremental diverged from table oracle at {:#010x}", addr
            );
            prop_assert_eq!(
                dp.lookup(addr), dp_rebuilt.lookup(addr),
                "DP incremental vs rebuilt diverged at {:#010x}", addr
            );
            prop_assert_eq!(
                bin.lookup(addr), bin_rebuilt.lookup(addr),
                "binary incremental vs rebuilt diverged at {:#010x}", addr
            );
        }
    }
}
