//! Property test for the incremental-update contract: applying a BGP
//! update stream in place to the incremental engines (DP trie, binary
//! trie) must be lookup-identical to rebuilding the engine from the
//! post-stream routing table — for arbitrary base tables, stream
//! lengths, and withdraw mixes. This is what the dataplane's RCU
//! control plane relies on when it syncs a shadow snapshot
//! incrementally instead of rebuilding it.

use proptest::prelude::*;
use spal_lpm::binary::BinaryTrie;
use spal_lpm::dir24::Dir24_8;
use spal_lpm::dp::DpTrie;
use spal_lpm::lctrie::LcTrie;
use spal_lpm::lulea::LuleaTrie;
use spal_lpm::multibit::MultibitTrie;
use spal_lpm::poptrie::Poptrie;
use spal_lpm::Lpm;
use spal_rib::updates::{update_stream, Update, UpdateStreamConfig};
use spal_rib::{synth, Prefix, RoutingTable};

/// Random probes plus every final-table prefix's first address and a
/// near-miss neighbour — so equivalence is exercised on exact matches,
/// covered addresses, and addresses whose best match changed or
/// vanished mid-stream.
fn probe_addrs(fin: &RoutingTable, random: &[u32]) -> Vec<u32> {
    let mut addrs: Vec<u32> = random.to_vec();
    for e in fin.entries().iter().take(300) {
        let a = e.prefix.first_addr();
        addrs.push(a);
        addrs.push(a ^ 1);
        addrs.push(a.wrapping_sub(1));
    }
    addrs
}

proptest! {
    // Each case builds four engines and replays a whole stream; the
    // probe set inside a case is wide, so keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_stream_matches_rebuild(
        table_size in 30usize..600,
        table_seed in 0u64..40,
        update_count in 1usize..400,
        withdraw_tenths in 0u32..=9,
        stream_seed in 0u64..1_000,
        random_probes in proptest::collection::vec(any::<u32>(), 1..=64),
    ) {
        let base = synth::synthesize(&synth::SynthConfig::sized(table_size, table_seed));
        let (updates, fin) = update_stream(&base, &UpdateStreamConfig {
            count: update_count,
            withdraw_fraction: withdraw_tenths as f64 / 10.0,
            seed: stream_seed,
        });

        let mut dp = DpTrie::build(&base);
        let mut bin = BinaryTrie::build(&base);
        for &u in &updates {
            match u {
                Update::Announce(e) => {
                    dp.insert(e.prefix, e.next_hop);
                    bin.insert(e.prefix.bits(), e.prefix.len(), e.next_hop);
                }
                Update::Withdraw(p) => {
                    dp.remove(p);
                    bin.remove(p.bits(), p.len());
                }
            }
        }
        let dp_rebuilt = DpTrie::build(&fin);
        let bin_rebuilt = BinaryTrie::build(&fin);

        for &addr in &probe_addrs(&fin, &random_probes) {
            let oracle = fin.longest_match(addr).map(|e| e.next_hop);
            prop_assert_eq!(
                dp.lookup(addr), oracle,
                "DP incremental diverged from table oracle at {:#010x}", addr
            );
            prop_assert_eq!(
                bin.lookup(addr), oracle,
                "binary incremental diverged from table oracle at {:#010x}", addr
            );
            prop_assert_eq!(
                dp.lookup(addr), dp_rebuilt.lookup(addr),
                "DP incremental vs rebuilt diverged at {:#010x}", addr
            );
            prop_assert_eq!(
                bin.lookup(addr), bin_rebuilt.lookup(addr),
                "binary incremental vs rebuilt diverged at {:#010x}", addr
            );
        }
    }
}

/// Replay `updates` against `engine` in batches of `batch` through
/// [`Lpm::apply_delta`], rebuilding with `build` whenever the engine
/// declines a batch (`None` — that fallback IS the contract, not a
/// failure). Returns the post-stream routing table so callers can probe.
fn replay_deltas<L: Lpm>(
    engine: &mut L,
    build: &dyn Fn(&RoutingTable) -> L,
    base: &RoutingTable,
    updates: &[Update],
    batch: usize,
) -> RoutingTable {
    let mut rib = base.clone();
    for chunk in updates.chunks(batch.max(1)) {
        let mut changed: Vec<Prefix> = Vec::with_capacity(chunk.len());
        for &u in chunk {
            let p = match u {
                Update::Announce(e) => e.prefix,
                Update::Withdraw(p) => p,
            };
            if !changed.contains(&p) {
                changed.push(p);
            }
            spal_rib::updates::apply(&mut rib, u);
        }
        if engine.apply_delta(&changed, &rib).is_none() {
            *engine = build(&rib);
        }
    }
    rib
}

proptest! {
    // Five static engines × a whole stream each; modest case count.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The compressed/static engines must be lookup-identical to a fresh
    /// rebuild (and the table oracle) after delta-patching an arbitrary
    /// update stream in arbitrary batch sizes — the chunk-granular
    /// maintenance path the control plane's shadow sync takes instead of
    /// a full rebuild per batch.
    #[test]
    fn delta_patched_stream_matches_rebuild(
        table_size in 30usize..400,
        table_seed in 0u64..40,
        update_count in 1usize..200,
        withdraw_tenths in 0u32..=9,
        stream_seed in 0u64..1_000,
        batch in 1usize..24,
        random_probes in proptest::collection::vec(any::<u32>(), 1..=48),
    ) {
        let base = synth::synthesize(&synth::SynthConfig::sized(table_size, table_seed));
        let (updates, fin) = update_stream(&base, &UpdateStreamConfig {
            count: update_count,
            withdraw_fraction: withdraw_tenths as f64 / 10.0,
            seed: stream_seed,
        });

        let mut lulea = LuleaTrie::build(&base);
        let mut dir24 = Dir24_8::build(&base);
        let mut lct = LcTrie::build(&base);
        let mut mb = MultibitTrie::build_16_8_8(&base);
        let mut pop = Poptrie::build(&base);

        let r1 = replay_deltas(&mut lulea, &LuleaTrie::build, &base, &updates, batch);
        let r2 = replay_deltas(&mut dir24, &Dir24_8::build, &base, &updates, batch);
        let r3 = replay_deltas(&mut lct, &LcTrie::build, &base, &updates, batch);
        let r4 = replay_deltas(&mut mb, &MultibitTrie::build_16_8_8, &base, &updates, batch);
        let r5 = replay_deltas(&mut pop, &Poptrie::build, &base, &updates, batch);
        prop_assert_eq!(r1.len(), fin.len());
        prop_assert_eq!(r2.len(), fin.len());
        prop_assert_eq!(r3.len(), fin.len());
        prop_assert_eq!(r4.len(), fin.len());
        prop_assert_eq!(r5.len(), fin.len());

        let lulea_fresh = LuleaTrie::build(&fin);
        let dir24_fresh = Dir24_8::build(&fin);
        let lct_fresh = LcTrie::build(&fin);
        let mb_fresh = MultibitTrie::build_16_8_8(&fin);
        let pop_fresh = Poptrie::build(&fin);

        for &addr in &probe_addrs(&fin, &random_probes) {
            let oracle = fin.longest_match(addr).map(|e| e.next_hop);
            prop_assert_eq!(
                lulea.lookup(addr), oracle,
                "Lulea delta-patched diverged from table oracle at {:#010x}", addr
            );
            prop_assert_eq!(
                dir24.lookup(addr), oracle,
                "DIR-24-8 delta-patched diverged from table oracle at {:#010x}", addr
            );
            prop_assert_eq!(
                lct.lookup(addr), oracle,
                "LC-trie delta-patched diverged from table oracle at {:#010x}", addr
            );
            prop_assert_eq!(
                mb.lookup(addr), oracle,
                "multibit delta-patched diverged from table oracle at {:#010x}", addr
            );
            prop_assert_eq!(
                pop.lookup(addr), oracle,
                "Poptrie delta-patched diverged from table oracle at {:#010x}", addr
            );
            prop_assert_eq!(
                lulea.lookup(addr), lulea_fresh.lookup(addr),
                "Lulea delta-patched vs fresh build diverged at {:#010x}", addr
            );
            prop_assert_eq!(
                dir24.lookup(addr), dir24_fresh.lookup(addr),
                "DIR-24-8 delta-patched vs fresh build diverged at {:#010x}", addr
            );
            prop_assert_eq!(
                lct.lookup(addr), lct_fresh.lookup(addr),
                "LC-trie delta-patched vs fresh build diverged at {:#010x}", addr
            );
            prop_assert_eq!(
                mb.lookup(addr), mb_fresh.lookup(addr),
                "multibit delta-patched vs fresh build diverged at {:#010x}", addr
            );
            prop_assert_eq!(
                pop.lookup(addr), pop_fresh.lookup(addr),
                "Poptrie delta-patched vs fresh build diverged at {:#010x}", addr
            );
        }
    }
}
