//! Property test for the batched lookup contract: for **every** engine,
//! `lookup_batch` must be bit-identical to per-address `lookup_counted`
//! — next hops *and* modelled memory-access counts — for arbitrary
//! tables, arbitrary address mixes, and every batch size from 1 to 64
//! (covering unaligned tails of the 4- and 16-lane group drivers).

use proptest::prelude::*;
use spal_lpm::binary::BinaryTrie;
use spal_lpm::dir24::Dir24_8;
use spal_lpm::dp::DpTrie;
use spal_lpm::lctrie::LcTrie;
use spal_lpm::lulea::LuleaTrie;
use spal_lpm::multibit::MultibitTrie;
use spal_lpm::poptrie::Poptrie;
use spal_lpm::{CountedLookup, Lpm};
use spal_rib::synth;

/// Address mix: half biased near the table's prefixes (via the low-seed
/// synth generator's preference for common first octets), half fully
/// random, plus edge addresses — so batches mix hits, misses, shallow
/// and deep walks.
fn arb_addrs() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u32>(),
            (0u32..=0xFF).prop_map(|hi| hi << 24 | 0x0101),
            Just(0u32),
            Just(u32::MAX),
        ],
        1..=130,
    )
}

fn check_engine(lpm: &dyn Lpm, addrs: &[u32], batch: usize) -> Result<(), TestCaseError> {
    let mut out = vec![CountedLookup::MISS; addrs.len()];
    for (chunk, chunk_out) in addrs.chunks(batch).zip(out.chunks_mut(batch)) {
        lpm.lookup_batch(chunk, &mut chunk_out[..chunk.len()]);
    }
    for (i, (&addr, &got)) in addrs.iter().zip(out.iter()).enumerate() {
        let want = lpm.lookup_counted(addr);
        prop_assert_eq!(
            got.next_hop,
            want.next_hop,
            "{}: next hop diverged at index {} addr {:#010x} (batch size {})",
            lpm.name(),
            i,
            addr,
            batch
        );
        prop_assert_eq!(
            got.mem_accesses,
            want.mem_accesses,
            "{}: access count diverged at index {} addr {:#010x} (batch size {})",
            lpm.name(),
            i,
            addr,
            batch
        );
        prop_assert_eq!(
            got.lines_touched,
            want.lines_touched,
            "{}: line count diverged at index {} addr {:#010x} (batch size {})",
            lpm.name(),
            i,
            addr,
            batch
        );
    }
    Ok(())
}

proptest! {
    // Each case builds seven engines over a fresh table; keep the count
    // modest — the address/batch-size space inside a case is wide.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batch_matches_scalar_on_every_engine(
        table_size in 50usize..1200,
        table_seed in 0u64..50,
        addrs in arb_addrs(),
        batch in 1usize..=64,
    ) {
        let table = synth::synthesize(&synth::SynthConfig::sized(table_size, table_seed));
        let engines: Vec<Box<dyn Lpm>> = vec![
            Box::new(Dir24_8::build(&table)),
            Box::new(LuleaTrie::build(&table)),
            Box::new(LcTrie::build(&table)),
            Box::new(BinaryTrie::build(&table)),
            Box::new(DpTrie::build(&table)),
            Box::new(MultibitTrie::build_16_8_8(&table)),
            Box::new(Poptrie::build(&table)),
        ];
        for lpm in &engines {
            check_engine(lpm.as_ref(), &addrs, batch)?;
        }
    }
}
