//! Cross-engine pin on the cache-line accounting: on a table whose
//! 16-bit stems all stay sparse (no route longer than /24, at most a
//! handful of runs per stem), the two engines built around line economy
//! — DIR-24-8 (flat arrays, one or two indexed reads) and the
//! cache-line-packed Poptrie — must resolve **every** address within a
//! 3-line budget, while the pointer-chasing binary trie blows far past
//! it. Pinning both sides keeps the `lines_touched` model honest: an
//! accounting bug that under-counts would let a fat engine sneak under
//! the budget, one that over-counts would push the packed engines over
//! it.

use spal_lpm::binary::BinaryTrie;
use spal_lpm::dir24::Dir24_8;
use spal_lpm::poptrie::Poptrie;
use spal_lpm::{mean_lines, Lpm};
use spal_rib::{NextHop, Prefix, RouteEntry, RoutingTable};

/// A deterministic table of /8, /16 and /24 routes where every 16-bit
/// stem holds at most six /24 runs — each Poptrie stem encodes as one
/// sparse node with inline leaf values, so a lookup is root + node +
/// next-hop: exactly the layout the 3-line budget models.
fn sparse_stem_table() -> RoutingTable {
    let mut entries = Vec::new();
    let mut nh = 0u16;
    let hop = |nh: &mut u16| {
        *nh = (*nh + 1) % 64;
        NextHop(*nh)
    };
    for hi in [10u32, 172, 192] {
        entries.push(RouteEntry {
            prefix: Prefix::new(hi << 24, 8).unwrap(),
            next_hop: hop(&mut nh),
        });
    }
    for stem in 0..400u32 {
        let bits = (10 << 24) | (stem << 16);
        entries.push(RouteEntry {
            prefix: Prefix::new(bits, 16).unwrap(),
            next_hop: hop(&mut nh),
        });
        // Up to six /24 runs inside the stem: an S32-class sparse node.
        for k in 0..(stem % 7) {
            entries.push(RouteEntry {
                prefix: Prefix::new(bits | (k * 37) << 8, 24).unwrap(),
                next_hop: hop(&mut nh),
            });
        }
    }
    RoutingTable::from_entries(entries)
}

fn probe_addrs(table: &RoutingTable) -> Vec<u32> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x11E5);
    let mut addrs: Vec<u32> = (0..4_000).map(|_| rng.gen()).collect();
    // Guarantee hits at every depth: probe inside every route.
    addrs.extend(table.entries().iter().map(|e| e.prefix.first_addr()));
    addrs
}

#[test]
fn packed_engines_stay_within_three_lines() {
    let table = sparse_stem_table();
    let addrs = probe_addrs(&table);

    let dir24 = Dir24_8::build(&table);
    let pop = Poptrie::build(&table);
    for &a in &addrs {
        let d = dir24.lookup_counted(a);
        assert!(
            d.lines_touched <= 3,
            "DIR-24-8 touched {} lines at {a:#010x}",
            d.lines_touched
        );
        let p = pop.lookup_counted(a);
        assert!(
            p.lines_touched <= 3,
            "Poptrie touched {} lines at {a:#010x}",
            p.lines_touched
        );
        // The line model never exceeds the access model: dedup only
        // removes charges.
        assert!(p.lines_touched <= p.mem_accesses);
        assert!(d.lines_touched <= d.mem_accesses);
    }
}

#[test]
fn pointer_chasing_engines_exceed_the_budget() {
    let table = sparse_stem_table();
    let addrs = probe_addrs(&table);
    let bin = BinaryTrie::build(&table);
    let pop = Poptrie::build(&table);
    let bin_mean = mean_lines(&bin, &addrs);
    let pop_mean = mean_lines(&pop, &addrs);
    assert!(
        bin_mean > 2.0 * pop_mean,
        "binary trie should touch far more lines than Poptrie \
         (binary {bin_mean:.2} vs poptrie {pop_mean:.2})"
    );
}
