//! Incremental-update consistency: the DP trie and the binary trie
//! follow a synthetic BGP update stream and must agree, at every
//! checkpoint, with a table rebuilt from scratch — the substrate for
//! §3.2's update handling.

use rand::{Rng, SeedableRng};
use spal_lpm::binary::BinaryTrie;
use spal_lpm::dp::DpTrie;
use spal_lpm::Lpm;
use spal_rib::updates::{apply, update_stream, Update, UpdateStreamConfig};
use spal_rib::{synth, RoutingTable};

fn assert_matches_oracle(dp: &DpTrie, bin: &BinaryTrie, oracle: &RoutingTable, seed: u64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for _ in 0..120 {
        let addr: u32 = rng.gen();
        let want = oracle.longest_match(addr).map(|e| e.next_hop);
        assert_eq!(dp.lookup(addr), want, "dp at {addr:#010x}");
        assert_eq!(bin.lookup(addr), want, "binary at {addr:#010x}");
    }
    for e in oracle.entries().iter().step_by(17) {
        let addr = e.prefix.first_addr();
        let want = oracle.longest_match(addr).map(|x| x.next_hop);
        assert_eq!(dp.lookup(addr), want);
        assert_eq!(bin.lookup(addr), want);
    }
}

#[test]
fn tries_follow_update_stream() {
    let base = synth::synthesize(&synth::SynthConfig::sized(2_000, 55));
    let (updates, final_table) = update_stream(
        &base,
        &UpdateStreamConfig {
            count: 3_000,
            withdraw_fraction: 0.35,
            seed: 9,
        },
    );

    let mut dp = DpTrie::build(&base);
    let mut bin = BinaryTrie::build(&base);
    let mut oracle = base.clone();

    for (i, &u) in updates.iter().enumerate() {
        match u {
            Update::Announce(e) => {
                dp.insert(e.prefix, e.next_hop);
                bin.insert(e.prefix.bits(), e.prefix.len(), e.next_hop);
            }
            Update::Withdraw(p) => {
                assert!(dp.remove(p).is_some(), "update {i}: dp missed {p}");
                assert!(bin.remove(p.bits(), p.len()).is_some());
            }
        }
        apply(&mut oracle, u);
        if i % 500 == 499 {
            assert_matches_oracle(&dp, &bin, &oracle, i as u64);
            assert_eq!(dp.route_count(), oracle.len());
            assert_eq!(bin.route_count(), oracle.len());
        }
    }
    assert_eq!(oracle.entries(), final_table.entries());
    assert_matches_oracle(&dp, &bin, &final_table, 0xF1);
}

#[test]
fn heavy_withdrawals_prune_back() {
    // Withdraw everything: the DP trie must shrink back to its root.
    let base = synth::synthesize(&synth::SynthConfig::sized(500, 57));
    let mut dp = DpTrie::build(&base);
    for e in base.entries() {
        assert!(dp.remove(e.prefix).is_some());
    }
    assert_eq!(dp.route_count(), 0);
    assert_eq!(dp.node_count(), 1);
    assert_eq!(dp.lookup(0x0A00_0001), None);
}

#[test]
fn rebuild_equals_incremental() {
    // After churn, an incrementally maintained DP trie and one rebuilt
    // from the final table must answer identically (storage may differ —
    // pruning does not reclaim split nodes that became pass-throughs).
    let base = synth::synthesize(&synth::SynthConfig::sized(1_000, 59));
    let (updates, final_table) = update_stream(
        &base,
        &UpdateStreamConfig {
            count: 2_000,
            withdraw_fraction: 0.45,
            seed: 4,
        },
    );
    let mut dp = DpTrie::build(&base);
    for &u in &updates {
        match u {
            Update::Announce(e) => {
                dp.insert(e.prefix, e.next_hop);
            }
            Update::Withdraw(p) => {
                dp.remove(p);
            }
        }
    }
    let rebuilt = DpTrie::build(&final_table);
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    for _ in 0..300 {
        let addr: u32 = rng.gen();
        assert_eq!(dp.lookup(addr), rebuilt.lookup(addr), "addr {addr:#010x}");
    }
    assert_eq!(dp.route_count(), rebuilt.route_count());
}
