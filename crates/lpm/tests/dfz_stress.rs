//! DFZ-2026-scale stress: build every engine at the ~1M-prefix IPv4
//! preset (and the v6 engines at the 200k preset), assert sampled
//! lookup correctness against the binary trie, drive a churn round
//! through `apply_delta`, and record per-engine storage so regressions
//! are visible.
//!
//! Two tiers:
//! * `dfz_*_full` — the real presets (1.01M v4 / 200k v6), `#[ignore]`d
//!   by default; run with `cargo test --release -- --ignored dfz_`.
//! * `dfz_*_quick` — the same checks at CI scale (150k v4 / 30k v6).
//!
//! The storage ceilings are set ~50 % above the measured full-scale
//! numbers (see EXPERIMENTS.md E25) — they catch a layout regression
//! that doubles a structure, not noise.

use spal_lpm::binary::{BinaryTrie, GenericBinaryTrie};
use spal_lpm::dir24::Dir24_8;
use spal_lpm::dp::DpTrie;
use spal_lpm::lctrie::LcTrie;
use spal_lpm::lulea::LuleaTrie;
use spal_lpm::multibit::MultibitTrie;
use spal_lpm::poptrie::Poptrie;
use spal_lpm::ship::Ship6;
use spal_lpm::{Lpm, Lpm6};
use spal_rib::synth::{self, SynthConfig};
use spal_rib::updates::{update_stream, Update, UpdateStreamConfig};
use spal_rib::v6::{apply6, synthesize6_dfz, update_stream6, Prefix6, Update6};
use spal_rib::{Prefix, RoutingTable};
use std::time::Instant;

/// Deterministic address sampler (splitmix-style), independent of the
/// table generator's RNG.
fn sample_addrs(count: usize, seed: u64) -> Vec<u64> {
    let mut x = seed;
    (0..count)
        .map(|_| {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

/// An engine under test paired with its rebuild constructor (the
/// fallback when `apply_delta` declines).
type EngineArm = (Box<dyn Lpm>, fn(&RoutingTable) -> Box<dyn Lpm>);

/// Build every IPv4 engine over `table`, assert sampled equivalence
/// with the binary trie, push a churn round through `apply_delta`
/// (rebuilding on decline — that fallback is the contract; a panic is
/// the bug this tier exists to catch), and check storage ceilings.
fn run_v4_tier(table: RoutingTable, probes: usize, max_bytes_per_route: &[(&str, f64)]) {
    let n = table.len();
    let t0 = Instant::now();
    let oracle = BinaryTrie::build(&table);
    eprintln!("[dfz] binary built in {:?}", t0.elapsed());

    let mut engines: Vec<EngineArm> = vec![
        (Box::new(Dir24_8::build(&table)), |t| {
            Box::new(Dir24_8::build(t))
        }),
        (Box::new(LuleaTrie::build(&table)), |t| {
            Box::new(LuleaTrie::build(t))
        }),
        (Box::new(LcTrie::build(&table)), |t| {
            Box::new(LcTrie::build(t))
        }),
        (Box::new(DpTrie::build(&table)), |t| {
            Box::new(DpTrie::build(t))
        }),
        (Box::new(MultibitTrie::build_16_8_8(&table)), |t| {
            Box::new(MultibitTrie::build_16_8_8(t))
        }),
        (Box::new(Poptrie::build(&table)), |t| {
            Box::new(Poptrie::build(t))
        }),
    ];

    // Storage record + ceilings.
    for (engine, _) in &engines {
        let bytes = engine.storage_bytes();
        let per_route = bytes as f64 / n as f64;
        eprintln!(
            "[dfz] {:>8}: {:>12} bytes at {} routes ({:.1} B/route)",
            engine.name(),
            bytes,
            n,
            per_route
        );
        if let Some(&(_, cap)) = max_bytes_per_route
            .iter()
            .find(|&&(name, _)| name == engine.name())
        {
            assert!(
                per_route <= cap,
                "{} storage regressed: {per_route:.1} B/route > cap {cap}",
                engine.name()
            );
        }
    }

    // Sampled lookup correctness, uniform + prefix-biased probes.
    let uniform = sample_addrs(probes, 0xD5A7);
    let biased: Vec<u32> = (0..probes)
        .map(|i| {
            let e = &table.entries()[(i * 7919) % n];
            let low = if e.prefix.len() >= 32 {
                0
            } else {
                (uniform[i] as u32) >> e.prefix.len()
            };
            e.prefix.bits() | low
        })
        .collect();
    for (engine, _) in &engines {
        for &a in &uniform {
            let addr = a as u32;
            assert_eq!(
                engine.lookup(addr),
                oracle.lookup(addr),
                "{} diverged at {addr:#010x}",
                engine.name()
            );
        }
        for &addr in &biased {
            assert_eq!(
                engine.lookup(addr),
                oracle.lookup(addr),
                "{} diverged at {addr:#010x}",
                engine.name()
            );
        }
    }

    // Churn round: a DFZ-shaped update stream applied in batches. Every
    // engine must either patch or decline — never panic — and stay
    // lookup-equivalent afterwards.
    let (updates, fin) = update_stream(
        &table,
        &UpdateStreamConfig {
            count: 2_000,
            withdraw_fraction: 0.3,
            seed: 0xC0FFEE,
        },
    );
    let mut rib = table.clone();
    let mut declines = vec![0usize; engines.len()];
    for chunk in updates.chunks(256) {
        let mut changed: Vec<Prefix> = Vec::new();
        for &u in chunk {
            let p = match u {
                Update::Announce(e) => e.prefix,
                Update::Withdraw(p) => p,
            };
            if !changed.contains(&p) {
                changed.push(p);
            }
            spal_rib::updates::apply(&mut rib, u);
        }
        for (i, (engine, rebuild)) in engines.iter_mut().enumerate() {
            if engine.apply_delta(&changed, &rib).is_none() {
                declines[i] += 1;
                *engine = rebuild(&rib);
            }
        }
    }
    assert_eq!(rib.len(), fin.len());
    let post_oracle = BinaryTrie::build(&fin);
    for (i, (engine, _)) in engines.iter().enumerate() {
        eprintln!(
            "[dfz] {:>8}: {} decline(s) over {} churn batches",
            engine.name(),
            declines[i],
            updates.len() / 256 + 1
        );
        for &a in uniform.iter().take(probes / 4) {
            let addr = a as u32;
            assert_eq!(
                engine.lookup(addr),
                post_oracle.lookup(addr),
                "{} diverged post-churn at {addr:#010x}",
                engine.name()
            );
        }
    }
}

/// v6 tier: SHIP and the binary trie at DFZ scale — storage, sampled
/// equivalence, and a churn round through SHIP's bin-granular patching.
fn run_v6_tier(size: usize, probes: usize) {
    let t0 = Instant::now();
    let table = synthesize6_dfz(size, 0xD15C);
    eprintln!("[dfz] v6 table ({size}) generated in {:?}", t0.elapsed());

    let t0 = Instant::now();
    let ship = Ship6::build(&table);
    let ship_build = t0.elapsed();
    let t0 = Instant::now();
    let trie = GenericBinaryTrie::<u128>::build6(&table);
    let trie_build = t0.elapsed();
    eprintln!(
        "[dfz] SHIP built in {ship_build:?} ({} B), binary in {trie_build:?} ({} B)",
        ship.storage_bytes(),
        Lpm6::storage_bytes(&trie)
    );
    // The acceptance gate's storage half, pinned at both scales.
    assert!(
        ship.storage_bytes() <= Lpm6::storage_bytes(&trie),
        "SHIP must not use more storage than the binary trie"
    );

    let samples = sample_addrs(probes, 0x6F6F);
    let addrs: Vec<u128> = samples
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            if i % 2 == 0 {
                let e = &table.entries()[(i * 104_729) % table.len()];
                e.prefix.bits() | s as u128
            } else {
                (s as u128) << 64 | samples[(i + 1) % samples.len()] as u128
            }
        })
        .collect();
    for &addr in &addrs {
        assert_eq!(
            ship.lookup(addr),
            trie.lookup_generic(addr),
            "SHIP diverged at {addr:#034x}"
        );
    }

    // Churn through the bin-granular patch path.
    let (updates, fin) = update_stream6(
        &table,
        &UpdateStreamConfig {
            count: 1_000,
            withdraw_fraction: 0.3,
            seed: 0xFEED,
        },
    );
    let mut rib = table.clone();
    let mut ship = ship;
    let mut trie = trie;
    let mut declines = 0usize;
    for chunk in updates.chunks(128) {
        let mut changed: Vec<Prefix6> = Vec::new();
        for &u in chunk {
            let p = match u {
                Update6::Announce(e) => e.prefix,
                Update6::Withdraw(p) => p,
            };
            if !changed.contains(&p) {
                changed.push(p);
            }
            apply6(&mut rib, u);
        }
        if ship.apply_delta(&changed, &rib).is_none() {
            declines += 1;
            ship = Ship6::build(&rib);
        }
        assert!(Lpm6::apply_delta(&mut trie, &changed, &rib).is_some());
    }
    assert_eq!(rib.len(), fin.len());
    eprintln!("[dfz] SHIP churn: {declines} decline(s)");
    for &addr in addrs.iter().take(probes / 2) {
        assert_eq!(
            ship.lookup(addr),
            trie.lookup_generic(addr),
            "SHIP diverged post-churn at {addr:#034x}"
        );
    }
}

/// Full-scale ceilings, ~50 % above the measured DFZ-2026 numbers
/// (1.01M routes: DIR-24-8 41.6, Lulea 8.1, LC 17.9, DP 33.6,
/// Multibit 109.4, Poptrie 7.7 B/route — EXPERIMENTS.md E25).
const FULL_CAPS: &[(&str, f64)] = &[
    ("DIR-24-8", 65.0),
    ("Lulea", 12.0),
    ("LC", 27.0),
    ("DP", 50.0),
    ("Multibit", 165.0),
    ("Poptrie", 12.0),
];

#[test]
#[ignore = "heavy: ~1M-prefix build of every engine; run with --ignored"]
fn dfz_v4_full() {
    let table = synth::dfz2026_v4(0xDF2026);
    assert_eq!(table.len(), synth::DFZ2026_V4_SIZE);
    run_v4_tier(table, 4_000, FULL_CAPS);
}

#[test]
fn dfz_v4_quick() {
    // Same shape, CI scale; caps get extra slack because fixed-size
    // structures (DIR-24-8's 32 MB base array, the multibit root level)
    // dominate per-route cost at small N (measured: 231.8 and 378.1
    // B/route at 150k).
    let caps: Vec<(&str, f64)> = FULL_CAPS
        .iter()
        .map(|&(name, cap)| match name {
            "DIR-24-8" => (name, 350.0),
            "Multibit" => (name, 550.0),
            _ => (name, cap * 2.0),
        })
        .collect();
    let table = synth::synthesize(&SynthConfig::dfz2026(150_000, 0xDF2026));
    run_v4_tier(table, 1_500, &caps);
}

#[test]
#[ignore = "heavy: 200k-prefix v6 build; run with --ignored"]
fn dfz_v6_full() {
    run_v6_tier(spal_rib::v6::DFZ2026_V6_SIZE, 3_000);
}

#[test]
fn dfz_v6_quick() {
    run_v6_tier(30_000, 1_000);
}
