//! Property suite for the SHIP IPv6 engine: bit-identity of scalar vs
//! batch lookups, equivalence with the generic binary trie (the IPv6
//! reference structure) over arbitrary v6 RIBs, and the incremental
//! contract — bin-granular `apply_delta` over arbitrary update streams
//! must be lookup-identical to a fresh rebuild, with the decline →
//! rebuild fallback exercised as part of the contract. Mirrors
//! `batch_equiv.rs` / `update_equiv.rs` at the 128-bit width.

use proptest::prelude::*;
use spal_lpm::binary::GenericBinaryTrie;
use spal_lpm::ship::Ship6;
use spal_lpm::{CountedLookup, Lpm6};
use spal_rib::updates::UpdateStreamConfig;
use spal_rib::v6::{
    apply6, synthesize6_dfz, update_stream6, Prefix6, RouteEntry6, RoutingTable6, Update6,
};
use spal_rib::NextHop;

/// Arbitrary v6 prefix, biased toward the cases that stress SHIP's
/// two-level split: lengths at and around the 16-bit bin boundary, the
/// /0 default, /128 host routes, and clustered top bits so bins
/// actually share tries.
fn arb_prefix6() -> impl Strategy<Value = Prefix6> {
    let len = prop_oneof![
        4 => 0u8..=128,
        2 => 14u8..=18,
        1 => Just(0u8),
        1 => Just(128u8),
        2 => prop_oneof![Just(32u8), Just(48u8), Just(64u8)],
    ];
    let bits = prop_oneof![
        3 => any::<u128>(),
        // Cluster into 16 top-16 blocks so bins collide.
        2 => (0u128..16, any::<u128>())
            .prop_map(|(blk, low)| (0x2000 + blk) << 112 | (low >> 16)),
    ];
    (bits, len).prop_map(|(bits, len)| Prefix6::new(bits, len).expect("len <= 128"))
}

fn arb_table6(max: usize) -> impl Strategy<Value = RoutingTable6> {
    proptest::collection::vec((arb_prefix6(), 0u16..64), 0..max).prop_map(|routes| {
        RoutingTable6::from_entries(routes.into_iter().map(|(prefix, nh)| RouteEntry6 {
            prefix,
            next_hop: NextHop(nh),
        }))
    })
}

/// Probe mix: the random draws plus every prefix's first address, a
/// bit-flipped neighbour, and the last covered address — exact matches,
/// near misses, and range edges.
fn probe_addrs(table: &RoutingTable6, random: &[u128]) -> Vec<u128> {
    let mut addrs = random.to_vec();
    for e in table.entries().iter().take(200) {
        let a = e.prefix.first_addr();
        addrs.push(a);
        addrs.push(a ^ 1);
        addrs.push(e.prefix.last_addr());
        addrs.push(a.wrapping_sub(1));
    }
    addrs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SHIP == binary trie == linear oracle on arbitrary tables.
    #[test]
    fn ship_matches_binary_oracle(
        table in arb_table6(120),
        random in proptest::collection::vec(any::<u128>(), 1..=48),
    ) {
        let ship = Ship6::build(&table);
        let trie = GenericBinaryTrie::<u128>::build6(&table);
        for &addr in &probe_addrs(&table, &random) {
            let oracle = table.longest_match(addr).map(|e| e.next_hop);
            prop_assert_eq!(
                ship.lookup(addr), oracle,
                "SHIP diverged from table oracle at {:#034x}", addr
            );
            prop_assert_eq!(
                trie.lookup_generic(addr), oracle,
                "binary trie diverged from table oracle at {:#034x}", addr
            );
        }
    }

    /// Batched SHIP lookups are bit-identical to scalar — next hops,
    /// access counts, and line counts — for every batch size across the
    /// 4-lane group driver's aligned and tail paths.
    #[test]
    fn ship_batch_bit_identical(
        table in arb_table6(150),
        random in proptest::collection::vec(any::<u128>(), 1..=100),
        batch in 1usize..=24,
    ) {
        let ship = Ship6::build(&table);
        let addrs = probe_addrs(&table, &random);
        let mut out = vec![CountedLookup::MISS; addrs.len()];
        for (chunk, chunk_out) in addrs.chunks(batch).zip(out.chunks_mut(batch)) {
            ship.lookup_batch(chunk, &mut chunk_out[..chunk.len()]);
        }
        for (i, (&addr, &got)) in addrs.iter().zip(out.iter()).enumerate() {
            let want = ship.lookup_counted(addr);
            prop_assert_eq!(
                got, want,
                "batch diverged from scalar at index {} addr {:#034x} (batch size {})",
                i, addr, batch
            );
        }
    }
}

proptest! {
    // Each case replays a whole stream against two engines; modest count.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Bin-granular delta patching over an arbitrary DFZ-shaped update
    /// stream stays lookup-identical to a fresh build and to the
    /// natively incremental binary trie, across batch sizes. A decline
    /// (`None`) triggers the contract's rebuild fallback.
    #[test]
    fn ship_delta_stream_matches_rebuild(
        table_size in 30usize..500,
        table_seed in 0u64..40,
        update_count in 1usize..300,
        withdraw_tenths in 0u32..=9,
        stream_seed in 0u64..1_000,
        batch in 1usize..24,
        random in proptest::collection::vec(any::<u128>(), 1..=32),
    ) {
        let base = synthesize6_dfz(table_size, table_seed);
        let (updates, fin) = update_stream6(&base, &UpdateStreamConfig {
            count: update_count,
            withdraw_fraction: withdraw_tenths as f64 / 10.0,
            seed: stream_seed,
        });

        let mut ship = Ship6::build(&base);
        let mut trie = GenericBinaryTrie::<u128>::build6(&base);
        let mut rib = base.clone();
        for chunk in updates.chunks(batch) {
            let mut changed: Vec<Prefix6> = Vec::with_capacity(chunk.len());
            for &u in chunk {
                let p = match u {
                    Update6::Announce(e) => e.prefix,
                    Update6::Withdraw(p) => p,
                };
                if !changed.contains(&p) {
                    changed.push(p);
                }
                apply6(&mut rib, u);
            }
            if ship.apply_delta(&changed, &rib).is_none() {
                ship = Ship6::build(&rib);
            }
            prop_assert!(
                Lpm6::apply_delta(&mut trie, &changed, &rib).is_some(),
                "binary trie is natively incremental and never declines"
            );
        }
        prop_assert_eq!(rib.len(), fin.len());

        let ship_fresh = Ship6::build(&fin);
        for &addr in &probe_addrs(&fin, &random) {
            let oracle = trie.lookup_generic(addr);
            prop_assert_eq!(
                ship.lookup(addr), oracle,
                "SHIP delta-patched diverged from binary trie at {:#034x}", addr
            );
            prop_assert_eq!(
                ship.lookup(addr), ship_fresh.lookup(addr),
                "SHIP delta-patched vs fresh build diverged at {:#034x}", addr
            );
        }
    }
}
