//! Compile-time thread-safety assertions: every LPM engine must be
//! `Send + Sync` so the multi-threaded trace-replay harness (and any
//! future parallel forwarding engine) can share one structure across
//! scoped worker threads behind an `Arc<dyn Lpm + Send + Sync>`. An
//! engine growing interior mutability (`Cell`, `Rc`, raw pointers)
//! breaks this file at compile time, long before a data race could.

use spal_lpm::binary::BinaryTrie;
use spal_lpm::dir24::Dir24_8;
use spal_lpm::dp::DpTrie;
use spal_lpm::lctrie::LcTrie;
use spal_lpm::lulea::LuleaTrie;
use spal_lpm::multibit::MultibitTrie;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn every_engine_is_send_and_sync() {
    assert_send_sync::<Dir24_8>();
    assert_send_sync::<LuleaTrie>();
    assert_send_sync::<LcTrie>();
    assert_send_sync::<BinaryTrie>();
    assert_send_sync::<DpTrie>();
    assert_send_sync::<MultibitTrie>();
}
