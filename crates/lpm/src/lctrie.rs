//! LC-trie — Nilsson & Karlsson, "IP-Address Lookup Using LC-Tries"
//! (ref \[12\] of the paper): a level- and path-compressed trie over the
//! *leaf* prefixes of the table, with the *internal* prefixes (those that
//! are proper prefixes of another stored prefix) moved to a prefix vector
//! reached through per-leaf chains.
//!
//! Each trie node packs a branch factor, a skip count and a child/leaf
//! index (modelled at the classic 4 bytes). The branch factor at every
//! node is the largest `b` for which at least `fill_factor · 2^b` of the
//! 2^b child slots are non-empty (the paper evaluates fill factor 0.25);
//! empty slots are backed by the sorted-order neighbour sharing the most
//! bits with the slot pattern, which keeps the prefix-chain fallback
//! correct (see `lookup_counted`). Branching never inspects bits past the
//! shortest string in a range, so no leaf prefix can be skipped over.

use crate::{CountedLookup, DeltaStats, LineSet, Lpm, BATCH_LANES};
use spal_rib::{NextHop, Prefix, RoutingTable};
use std::collections::{HashMap, HashSet};

/// Modelled bytes per trie node: branch/skip/address packed in 32 bits.
pub const NODE_BYTES: usize = 4;
/// Modelled bytes per base-vector entry: string (4) + length/flags (2) +
/// next hop (2) + prefix-chain pointer (4).
pub const BASE_BYTES: usize = 12;
/// Modelled bytes per prefix-vector entry: length (1) + next hop (2) +
/// chain pointer (4), padded.
pub const PREFIX_BYTES: usize = 8;

/// Line-accounting region tags: the node array, the base vector and the
/// prefix vector are distinct arrays.
const REGION_NODES: u32 = 0;
const REGION_BASE: u32 = 1;
const REGION_PREFIX: u32 = 2;

const NONE: u32 = u32::MAX;
/// Upper bound on a single node's branch factor (2^20 children), keeping
/// worst-case build memory bounded.
const MAX_BRANCH: u8 = 20;

#[derive(Debug, Clone, Copy)]
struct Node {
    /// 0 for a leaf; otherwise the node has 2^branch children.
    branch: u8,
    /// Path-compressed bits skipped before the branch bits.
    skip: u8,
    /// First-child index for internal nodes; base-vector index for leaves.
    adr: u32,
}

#[derive(Debug, Clone, Copy)]
struct BaseEntry {
    bits: u32,
    len: u8,
    next_hop: NextHop,
    /// Deepest internal proper ancestor, as an index into `prefixes`.
    chain: u32,
}

#[derive(Debug, Clone, Copy)]
struct PrefixEntry {
    len: u8,
    next_hop: NextHop,
    /// Next shorter internal ancestor.
    chain: u32,
}

/// The level-compressed trie.
#[derive(Debug, Clone)]
pub struct LcTrie {
    nodes: Vec<Node>,
    base: Vec<BaseEntry>,
    prefixes: Vec<PrefixEntry>,
    fill_factor: f64,
    routes: usize,
    /// Control-plane index: internal prefix → `prefixes` slot. Retained
    /// for incremental patching (chain resolution); not part of the
    /// modelled SRAM footprint.
    internal_idx: HashMap<Prefix, u32>,
    /// Control-plane shadow of `prefixes`: the full prefix at each slot
    /// (the SRAM entry models only the length). Needed to re-thread
    /// chains when a classification flip inserts or removes a slot.
    internal_keys: Vec<Prefix>,
    /// Distinct leaves currently reachable from the node array. Patched
    /// rebuilds append base segments and strand the old copies, so
    /// `base.len() - live_base` is the garbage the next full rebuild
    /// reclaims.
    live_base: usize,
}

impl LcTrie {
    /// Build with the paper's default fill factor of 0.25.
    pub fn build(table: &RoutingTable) -> Self {
        Self::build_with_fill(table, 0.25)
    }

    /// Build with an explicit fill factor in `(0, 1]`. Higher values
    /// produce deeper but smaller tries.
    pub fn build_with_fill(table: &RoutingTable, fill_factor: f64) -> Self {
        assert!(
            fill_factor > 0.0 && fill_factor <= 1.0,
            "fill factor must be in (0, 1]"
        );
        let routes = table.len();
        // Split the prefix set: internal prefixes (proper prefixes of
        // another stored prefix) go to the prefix vector; the rest are the
        // prefix-free leaf set the trie is built over.
        let all: Vec<(Prefix, NextHop)> = table
            .entries()
            .iter()
            .map(|e| (e.prefix, e.next_hop))
            .collect();
        let set: std::collections::HashSet<Prefix> = table.prefixes().collect();
        let mut is_internal = vec![false; all.len()];
        for (i, &(p, _)) in all.iter().enumerate() {
            // p is internal iff some stored prefix strictly extends it.
            // Check by walking down: any descendant in the set shares p's
            // bits; test the two children's subtrees via the sorted order.
            is_internal[i] = has_proper_descendant(&set, &all, p);
        }

        // Prefix vector: internal prefixes sorted by (bits, len) so chains
        // can be resolved by ancestor search.
        let mut internal: Vec<(Prefix, NextHop)> = all
            .iter()
            .zip(&is_internal)
            .filter(|&(_, &internal)| internal)
            .map(|(&e, _)| e)
            .collect();
        internal.sort_by_key(|&(p, _)| (p.bits(), p.len()));
        let find_internal = |p: Prefix| -> Option<u32> {
            internal
                .binary_search_by_key(&(p.bits(), p.len()), |&(q, _)| (q.bits(), q.len()))
                .ok()
                .map(|i| i as u32)
        };
        // Deepest internal proper ancestor of a prefix.
        let deepest_ancestor = |p: Prefix| -> u32 {
            let mut cur = p;
            while let Some(parent) = cur.parent() {
                cur = parent;
                if set.contains(&cur) {
                    if let Some(i) = find_internal(cur) {
                        return i;
                    }
                }
            }
            NONE
        };
        let prefixes: Vec<PrefixEntry> = internal
            .iter()
            .map(|&(p, nh)| PrefixEntry {
                len: p.len(),
                next_hop: nh,
                chain: deepest_ancestor(p),
            })
            .collect();

        // Base vector: leaf prefixes sorted by bits (they are prefix-free,
        // so bit order is unambiguous).
        let mut base: Vec<BaseEntry> = all
            .iter()
            .zip(&is_internal)
            .filter(|&(_, &internal)| !internal)
            .map(|(&(p, nh), _)| BaseEntry {
                bits: p.bits(),
                len: p.len(),
                next_hop: nh,
                chain: deepest_ancestor(p),
            })
            .collect();
        base.sort_by_key(|e| e.bits);

        let internal_idx: HashMap<Prefix, u32> = internal
            .iter()
            .enumerate()
            .map(|(i, &(p, _))| (p, i as u32))
            .collect();
        let internal_keys: Vec<Prefix> = internal.iter().map(|&(p, _)| p).collect();
        let live_base = base.len();
        let mut trie = LcTrie {
            nodes: Vec::new(),
            base,
            prefixes,
            fill_factor,
            routes,
            internal_idx,
            internal_keys,
            live_base,
        };
        if trie.base.is_empty() {
            trie.nodes.push(Node {
                branch: 0,
                skip: 0,
                adr: NONE,
            });
        } else {
            trie.nodes.push(Node {
                branch: 0,
                skip: 0,
                adr: 0,
            });
            trie.subdivide(0, 0, trie.base.len(), 0);
        }
        trie
    }

    /// Recursively build the node at `node_idx` covering base entries
    /// `[first, first+n)`, with `pos` address bits already consumed.
    fn subdivide(&mut self, node_idx: usize, first: usize, n: usize, pos: u8) {
        if n == 1 {
            self.nodes[node_idx] = Node {
                branch: 0,
                skip: 0,
                adr: first as u32,
            };
            return;
        }
        let lo = self.base[first].bits;
        let hi = self.base[first + n - 1].bits;
        let common = (lo ^ hi).leading_zeros() as u8; // > pos since sorted & distinct
        debug_assert!(common >= pos);
        let skip = common - pos;
        // Branch bits may not pass the shortest string in the range
        // (otherwise that leaf prefix could be skipped past).
        let min_len = self.base[first..first + n]
            .iter()
            .map(|e| e.len)
            .min()
            .expect("range non-empty");
        let cap = min_len
            .saturating_sub(common)
            .min(MAX_BRANCH)
            .min(32 - common);
        debug_assert!(cap >= 1, "range of ≥2 entries implies one branchable bit");
        let branch = self.pick_branch(first, n, common, cap);

        // Partition the (sorted) range by the branch-bit pattern.
        let shift = 32 - common as u32 - branch as u32;
        let pattern_of = |bits: u32| ((bits >> shift) as usize) & ((1 << branch) - 1);
        let children_base = self.nodes.len();
        let slots = 1usize << branch;
        self.nodes[node_idx] = Node {
            branch,
            skip,
            adr: children_base as u32,
        };
        self.nodes.resize(
            children_base + slots,
            Node {
                branch: 0,
                skip: 0,
                adr: NONE,
            },
        );
        let mut start = first;
        for pat in 0..slots {
            let mut end = start;
            while end < first + n && pattern_of(self.base[end].bits) == pat {
                end += 1;
            }
            let child = children_base + pat;
            if end == start {
                // Empty slot: back it with the sorted-order neighbour that
                // shares the most bits with the slot pattern, so the
                // prefix-chain fallback still finds every ancestor route.
                let key = self.base[first].bits & !(u32::MAX >> common) | ((pat as u32) << shift);
                let adr = self.nearest_in_range(first, n, key);
                self.nodes[child] = Node {
                    branch: 0,
                    skip: 0,
                    adr,
                };
            } else if end - start == 1 {
                self.nodes[child] = Node {
                    branch: 0,
                    skip: 0,
                    adr: start as u32,
                };
            } else {
                self.subdivide(child, start, end - start, common + branch);
            }
            start = end;
        }
        debug_assert_eq!(start, first + n);
    }

    /// Largest branch factor `b ≤ cap` whose 2^b slots are at least
    /// `fill_factor` full over the given range.
    fn pick_branch(&self, first: usize, n: usize, common: u8, cap: u8) -> u8 {
        let mut best = 1u8;
        for b in 2..=cap {
            let slots = 1usize << b;
            if slots > 2 * n {
                break; // cannot possibly stay ≥ 50 % of fill levels; cheap cut-off
            }
            let shift = 32 - common as u32 - b as u32;
            let mut nonempty = 0usize;
            let mut prev = usize::MAX;
            for e in &self.base[first..first + n] {
                let pat = ((e.bits >> shift) as usize) & (slots - 1);
                if pat != prev {
                    nonempty += 1;
                    prev = pat;
                }
            }
            if nonempty as f64 >= self.fill_factor * slots as f64 {
                best = b;
            }
        }
        best
    }

    /// Base index within `[first, first+n)` sharing the most leading bits
    /// with `key` (one of the two sorted neighbours of the insertion
    /// point).
    fn nearest_in_range(&self, first: usize, n: usize, key: u32) -> u32 {
        let range = &self.base[first..first + n];
        let idx = range.partition_point(|e| e.bits < key);
        let share = |i: usize| (range[i].bits ^ key).leading_zeros();
        let pick = match (idx.checked_sub(1), (idx < n).then_some(idx)) {
            (Some(a), Some(b)) => {
                if share(a) >= share(b) {
                    a
                } else {
                    b
                }
            }
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => unreachable!("range is non-empty"),
        };
        (first + pick) as u32
    }

    /// Number of trie nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Sizes of the base (leaf) and prefix (internal) vectors.
    pub fn vector_sizes(&self) -> (usize, usize) {
        (self.base.len(), self.prefixes.len())
    }

    /// Number of routes the trie was built from.
    pub fn route_count(&self) -> usize {
        self.routes
    }

    /// The fill factor the trie was built with.
    pub fn fill_factor(&self) -> f64 {
        self.fill_factor
    }

    /// Deepest internal ancestor of `p` currently in the prefix vector.
    fn chain_of(&self, p: Prefix) -> u32 {
        let mut cur = p;
        while let Some(parent) = cur.parent() {
            cur = parent;
            if let Some(&i) = self.internal_idx.get(&cur) {
                return i;
            }
        }
        NONE
    }

    /// Bits of some leaf in `node_idx`'s subtree — every leaf (including
    /// empty-slot backers, which are drawn from the same build range)
    /// agrees with the subtree's common prefix, so any one tells the
    /// patch path where the subtree lives in address space.
    fn sample_bits(&self, mut idx: usize) -> u32 {
        loop {
            let n = self.nodes[idx];
            if n.branch == 0 {
                return self.base[n.adr as usize].bits;
            }
            idx = n.adr as usize;
        }
    }

    /// Collect the distinct live leaves reachable from `node_idx`.
    /// Empty-slot backers and stale pre-patch copies repeat a (bits, len)
    /// key, so dedup by key rather than by base index.
    fn collect_leaves(
        &self,
        node_idx: usize,
        out: &mut Vec<(u32, u8)>,
        seen: &mut HashSet<(u32, u8)>,
    ) {
        let node = self.nodes[node_idx];
        if node.branch == 0 {
            if node.adr == NONE {
                return;
            }
            let e = self.base[node.adr as usize];
            if seen.insert((e.bits, e.len)) {
                out.push((e.bits, e.len));
            }
            return;
        }
        for c in 0..(1usize << node.branch) {
            self.collect_leaves(node.adr as usize + c, out, seen);
        }
    }

    /// Dirty-subtrie rebuild: re-derive `node_idx`'s subtree from its
    /// live leaves (±`add`/`remove`), writing the leaves as a fresh
    /// contiguous base segment and splicing the new child nodes onto the
    /// shared arena. Old nodes and base entries are stranded as garbage;
    /// stale base copies stay valid for the empty-slot backers elsewhere
    /// that still reference them (their bits and chains are unchanged,
    /// and a backed slot can never full-match its backer). Next hops are
    /// refreshed from `rib` so stale copies collected through backers
    /// cannot resurrect old targets.
    fn rebuild_at(
        &mut self,
        node_idx: usize,
        pos: u8,
        rib: &RoutingTable,
        add: Option<Prefix>,
        remove: Option<Prefix>,
    ) -> Option<usize> {
        let mut seen = HashSet::new();
        let mut keys = Vec::new();
        self.collect_leaves(node_idx, &mut keys, &mut seen);
        let pre = keys.len();
        if let Some(p) = add {
            if seen.insert((p.bits(), p.len())) {
                keys.push((p.bits(), p.len()));
            }
        }
        if let Some(p) = remove {
            keys.retain(|&(b, l)| (b, l) != (p.bits(), p.len()));
        }
        let mut entries: Vec<BaseEntry> = Vec::new();
        for (b, l) in keys {
            let q = Prefix::new(b, l).expect("stored prefixes are canonical");
            if let Some(nh) = rib.get(q) {
                entries.push(BaseEntry {
                    bits: b,
                    len: l,
                    next_hop: nh,
                    chain: self.chain_of(q),
                });
            }
        }
        entries.sort_by_key(|e| e.bits);
        let n = entries.len();
        if node_idx == 0 {
            // Root-spanning change (e.g. an announce shorter than every
            // current leaf): compact instead of stranding the whole old
            // structure as garbage — clear both arenas and rebuild from
            // the live leaf set. Chains were recomputed per entry above;
            // the prefix vector is untouched.
            self.nodes.clear();
            self.base.clear();
            self.live_base = n;
            let adr = if n == 0 { NONE } else { 0 };
            self.nodes.push(Node {
                branch: 0,
                skip: 0,
                adr,
            });
            self.base.extend(entries);
            if n > 1 {
                self.subdivide(0, 0, n, 0);
            }
            return Some(NODE_BYTES * self.nodes.len() + BASE_BYTES * n);
        }
        if n == 0 {
            // Every distinct leaf under this node was a stale backer copy
            // of an already-withdrawn prefix (the rib refresh dropped them
            // all). Only the root may become an empty leaf; anywhere else
            // the slot must keep backing an ancestor match we cannot
            // derive locally, so decline and let the caller rebuild.
            return None;
        }
        self.live_base = self.live_base + n - pre.min(self.live_base);
        let first = self.base.len();
        self.base.extend(entries);
        let nodes_before = self.nodes.len();
        if n == 0 {
            self.nodes[node_idx] = Node {
                branch: 0,
                skip: 0,
                adr: NONE,
            };
        } else {
            self.subdivide(node_idx, first, n, pos);
        }
        Some(NODE_BYTES * (1 + self.nodes.len() - nodes_before) + BASE_BYTES * n)
    }

    /// Insert (or re-target) the leaf prefix `p`. The walk descends while
    /// `p` agrees with each subtree's common prefix and is long enough to
    /// index a full branch slot; an empty slot takes the new leaf
    /// directly, anything structural falls back to [`LcTrie::rebuild_at`]
    /// on the deepest covering node.
    fn insert_leaf(&mut self, p: Prefix, rib: &RoutingTable) -> Option<usize> {
        let nh = rib.get(p)?;
        let root = self.nodes[0];
        if root.branch == 0 {
            if root.adr == NONE {
                let bi = self.base.len() as u32;
                self.base.push(BaseEntry {
                    bits: p.bits(),
                    len: p.len(),
                    next_hop: nh,
                    chain: self.chain_of(p),
                });
                self.nodes[0] = Node {
                    branch: 0,
                    skip: 0,
                    adr: bi,
                };
                self.live_base += 1;
                return Some(NODE_BYTES + BASE_BYTES);
            }
            let e = self.base[root.adr as usize];
            if (e.bits, e.len) == (p.bits(), p.len()) {
                self.base[root.adr as usize].next_hop = nh;
                return Some(BASE_BYTES);
            }
            return self.rebuild_at(0, 0, rib, Some(p), None);
        }
        let mut node_idx = 0usize;
        let mut pos = 0u8;
        loop {
            let node = self.nodes[node_idx];
            let sample = self.sample_bits(node_idx);
            let bp = pos + node.skip;
            let agree = ((p.bits() ^ sample).leading_zeros() as u8).min(32);
            if agree < bp || (p.len() as u16) < bp as u16 + node.branch as u16 {
                // Diverges inside the skip, or too short to occupy a
                // single slot: re-derive this subtree with `p` included
                // (subdivide re-caps the branch at the new shortest).
                return self.rebuild_at(node_idx, pos, rib, Some(p), None);
            }
            let shift = 32 - bp as u32 - node.branch as u32;
            let idx = ((p.bits() >> shift) as usize) & ((1usize << node.branch) - 1);
            let child = node.adr as usize + idx;
            let cnode = self.nodes[child];
            if cnode.branch != 0 {
                node_idx = child;
                pos = bp + node.branch;
                continue;
            }
            let e = self.base[cnode.adr as usize];
            let epat = ((e.bits >> shift) as usize) & ((1usize << node.branch) - 1);
            if epat != idx {
                // Empty-backed slot: the new leaf claims it outright.
                // Existing empty-slot backings stay correct — `p` adds no
                // internal prefix, and addresses matching `p` now route
                // to this very slot.
                let bi = self.base.len() as u32;
                self.base.push(BaseEntry {
                    bits: p.bits(),
                    len: p.len(),
                    next_hop: nh,
                    chain: self.chain_of(p),
                });
                self.nodes[child] = Node {
                    branch: 0,
                    skip: 0,
                    adr: bi,
                };
                self.live_base += 1;
                return Some(NODE_BYTES + BASE_BYTES);
            }
            if (e.bits, e.len) == (p.bits(), p.len()) {
                self.base[cnode.adr as usize].next_hop = nh;
                return Some(BASE_BYTES);
            }
            // Slot already holds a different leaf: split via subtree
            // rebuild at the covering node.
            return self.rebuild_at(node_idx, pos, rib, Some(p), None);
        }
    }

    /// Withdraw the leaf prefix `p`, rebuilding its parent node's subtree
    /// without it. Absent prefixes (including walks that diverge inside
    /// skipped bits) are a no-op.
    fn withdraw_leaf(&mut self, p: Prefix, rib: &RoutingTable) -> Option<usize> {
        let root = self.nodes[0];
        if root.branch == 0 {
            if root.adr != NONE {
                let e = self.base[root.adr as usize];
                if (e.bits, e.len) == (p.bits(), p.len()) {
                    self.nodes[0] = Node {
                        branch: 0,
                        skip: 0,
                        adr: NONE,
                    };
                    self.live_base -= 1;
                    return Some(NODE_BYTES);
                }
            }
            return Some(0);
        }
        let mut node_idx = 0usize;
        let mut pos = 0u8;
        loop {
            let node = self.nodes[node_idx];
            let bp = pos + node.skip;
            if (p.len() as u16) < bp as u16 + node.branch as u16 {
                return Some(0); // cannot be a leaf under this branch
            }
            let shift = 32 - bp as u32 - node.branch as u32;
            let idx = ((p.bits() >> shift) as usize) & ((1usize << node.branch) - 1);
            let child = node.adr as usize + idx;
            let cnode = self.nodes[child];
            if cnode.branch != 0 {
                node_idx = child;
                pos = bp + node.branch;
                continue;
            }
            let e = self.base[cnode.adr as usize];
            if (e.bits, e.len) == (p.bits(), p.len()) {
                return self.rebuild_at(node_idx, pos, rib, None, Some(p));
            }
            return Some(0);
        }
    }

    /// Append `p` to the prefix vector (new internal route, or a leaf →
    /// internal flip) and re-thread chains: every entry strictly below
    /// `p` whose chain currently skips past it must now stop at `p`
    /// first. Stale base copies are re-threaded too — they still serve
    /// as chain heads for backed slots. Returns modelled bytes touched.
    fn add_internal(&mut self, p: Prefix, nh: NextHop) -> usize {
        let j = self.prefixes.len() as u32;
        self.prefixes.push(PrefixEntry {
            len: p.len(),
            next_hop: nh,
            chain: self.chain_of(p),
        });
        self.internal_keys.push(p);
        self.internal_idx.insert(p, j);
        let mut touched = PREFIX_BYTES;
        // A chain pointer shallower than p (or NONE) on a strict
        // descendant means the chain skips p; deeper pointers reach p
        // transitively once their own entries are re-threaded.
        for i in 0..self.base.len() {
            let e = self.base[i];
            let q = Prefix::new(e.bits, e.len).expect("stored prefixes are canonical");
            if q != p && p.contains(q) {
                let c = self.base[i].chain;
                if c == NONE || self.prefixes[c as usize].len < p.len() {
                    self.base[i].chain = j;
                    touched += 4;
                }
            }
        }
        for qi in 0..self.internal_keys.len() {
            let q = self.internal_keys[qi];
            if q != p && p.contains(q) {
                let c = self.prefixes[qi].chain;
                if c == NONE || self.prefixes[c as usize].len < p.len() {
                    self.prefixes[qi].chain = j;
                    touched += 4;
                }
            }
        }
        touched
    }

    /// Remove `p` from the prefix vector (internal withdraw, or an
    /// internal → leaf flip), re-threading every chain through it to its
    /// own next ancestor and patching up the swap-removed slot's index.
    /// Returns modelled bytes touched.
    fn remove_internal(&mut self, p: Prefix) -> usize {
        let i = self
            .internal_idx
            .remove(&p)
            .expect("flip source is internal");
        let removed = self.prefixes.swap_remove(i as usize);
        self.internal_keys.swap_remove(i as usize);
        let last = self.prefixes.len() as u32; // old index of the entry now at i
        if i != last {
            let moved = self.internal_keys[i as usize];
            self.internal_idx.insert(moved, i);
        }
        // If p's own ancestor sat in the slot that just moved, chase it.
        let bypass = if removed.chain == last && i != last {
            i
        } else {
            removed.chain
        };
        let mut touched = PREFIX_BYTES;
        for e in &mut self.base {
            if e.chain == i {
                e.chain = bypass;
                touched += 4;
            } else if e.chain == last {
                e.chain = i;
                touched += 4;
            }
        }
        for pe in &mut self.prefixes {
            if pe.chain == i {
                pe.chain = bypass;
                touched += 4;
            } else if pe.chain == last {
                pe.chain = i;
                touched += 4;
            }
        }
        touched
    }

    /// After removing `p` from the route set, the deepest stored internal
    /// ancestor may have lost its last strict descendant; flip it back to
    /// a leaf. At most one ancestor can flip — any shallower internal
    /// ancestor keeps the flipped route itself as a strict descendant.
    /// Ancestors withdrawn in the same batch are skipped; their own
    /// `changed` entry removes them.
    fn flip_childless_ancestor(&mut self, p: Prefix, rib: &RoutingTable) -> Option<usize> {
        let mut anc = p;
        while let Some(a) = anc.parent() {
            anc = a;
            if self.internal_idx.contains_key(&anc)
                && rib.get(anc).is_some()
                && !rib.has_strict_descendant_except(anc, &[])
            {
                let bytes = self.remove_internal(anc);
                return Some(bytes + self.insert_leaf(anc, rib)?);
            }
        }
        Some(0)
    }

    /// Patch one changed prefix, or `None` to demand a full rebuild.
    /// Leaf announces/withdrawals rebuild the deepest covering subtree;
    /// internal re-targets write one prefix-vector slot; leaf/internal
    /// classification flips move the prefix between the base and prefix
    /// vectors with a chain re-thread (including flips induced on stored
    /// ancestors). The only remaining decline is a subtree whose live
    /// leaves all vanished under a non-root node (`rebuild_at`).
    fn patch_prefix(&mut self, p: Prefix, rib: &RoutingTable) -> Option<usize> {
        let now = rib.get(p);
        let was_internal = self.internal_idx.contains_key(&p);
        match now {
            Some(nh) if was_internal => {
                if rib.has_strict_descendant_except(p, &[]) {
                    let i = self.internal_idx[&p] as usize;
                    self.prefixes[i].next_hop = nh;
                    Some(PREFIX_BYTES)
                } else {
                    // internal → leaf flip: the descendants are gone.
                    let bytes = self.remove_internal(p);
                    Some(bytes + self.insert_leaf(p, rib)?)
                }
            }
            None if was_internal => {
                // Internal withdraw: descendants' chains bypass p, and an
                // internal ancestor left childless flips back to a leaf.
                let bytes = self.remove_internal(p);
                Some(bytes + self.flip_childless_ancestor(p, rib)?)
            }
            Some(nh) => {
                if rib.has_strict_descendant_except(p, &[]) {
                    // New internal route, or a leaf → internal flip.
                    let bytes = self.add_internal(p, nh);
                    Some(bytes + self.withdraw_leaf(p, rib)?)
                } else {
                    // Stored strict ancestors not yet internal flip first,
                    // so p's chain (and its subtree rebuilds) resolve
                    // through them.
                    let mut bytes = 0usize;
                    let mut anc = p;
                    while let Some(a) = anc.parent() {
                        anc = a;
                        if let Some(anh) = rib.get(anc) {
                            if !self.internal_idx.contains_key(&anc) {
                                bytes += self.add_internal(anc, anh);
                                bytes += self.withdraw_leaf(anc, rib)?;
                            }
                        }
                    }
                    Some(bytes + self.insert_leaf(p, rib)?)
                }
            }
            None => {
                let bytes = self.withdraw_leaf(p, rib)?;
                Some(bytes + self.flip_childless_ancestor(p, rib)?)
            }
        }
    }

    /// Mean depth (trie nodes visited) over all leaves — the quantity
    /// level compression minimises.
    pub fn mean_leaf_depth(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let mut total = 0u64;
        let mut leaves = 0u64;
        let mut stack = vec![(0usize, 1u64)];
        while let Some((idx, depth)) = stack.pop() {
            let node = self.nodes[idx];
            if node.branch == 0 {
                total += depth;
                leaves += 1;
            } else {
                for c in 0..(1usize << node.branch) {
                    stack.push((node.adr as usize + c, depth + 1));
                }
            }
        }
        total as f64 / leaves as f64
    }
}

/// Whether some member of `set` strictly extends `p`.
fn has_proper_descendant(
    set: &std::collections::HashSet<Prefix>,
    all: &[(Prefix, NextHop)],
    p: Prefix,
) -> bool {
    // Tables are bulk-built once per experiment, so an O(n) scan per
    // prefix would be O(n²); instead walk candidate descendants via the
    // sorted `all` slice: prefixes extending p form a contiguous bits
    // range [p.bits(), p.last_addr()].
    let lo = all.partition_point(|&(q, _)| q.bits() < p.bits());
    for &(q, _) in &all[lo..] {
        if q.bits() > p.last_addr() {
            break;
        }
        if q != p && p.contains(q) {
            debug_assert!(set.contains(&q));
            return true;
        }
    }
    false
}

impl Lpm for LcTrie {
    fn lookup_counted(&self, addr: u32) -> CountedLookup {
        self.lookup_inner(addr)
    }

    fn lookup_batch(&self, addrs: &[u32], out: &mut [CountedLookup]) {
        crate::run_quads(self, addrs, out, LcTrie::lookup_quad);
    }

    /// Dirty-subtrie patching. Leaf announces, withdrawals and
    /// re-targets rebuild only the deepest covering node's subtree;
    /// internal re-targets write one prefix-vector slot; leaf/internal
    /// classification flips splice the prefix vector and re-thread
    /// chains. Garbage buildup (stranded base segments exceeding the
    /// live leaf count) declines, handing the caller a full rebuild
    /// that reclaims the stranded space.
    fn apply_delta(&mut self, changed: &[Prefix], rib: &RoutingTable) -> Option<DeltaStats> {
        if self.base.len() > (2 * self.live_base).max(64) {
            return None; // stranded segments dominate: rebuild reclaims them
        }
        let mut stats = DeltaStats::default();
        for &p in changed {
            stats.bytes_touched += self.patch_prefix(p, rib)?;
            stats.prefixes_applied += 1;
        }
        self.routes = rib.len();
        Some(stats)
    }

    fn storage_bytes(&self) -> usize {
        // Includes stranded patch garbage: it occupies SRAM until the
        // next full rebuild reclaims it.
        self.nodes.len() * NODE_BYTES
            + self.base.len() * BASE_BYTES
            + self.prefixes.len() * PREFIX_BYTES
    }

    fn name(&self) -> &'static str {
        "LC"
    }
}

impl LcTrie {
    fn lookup_inner(&self, addr: u32) -> CountedLookup {
        let mut accesses = 1u32; // root read
        let mut lines = LineSet::new();
        lines.touch(REGION_NODES, 0, NODE_BYTES);
        let mut node = self.nodes[0];
        let mut pos = 0u8;
        while node.branch != 0 {
            pos += node.skip;
            let shift = 32 - pos as u32 - node.branch as u32;
            let idx = ((addr >> shift) as usize) & ((1 << node.branch) - 1);
            pos += node.branch;
            lines.touch(
                REGION_NODES,
                (node.adr as usize + idx) * NODE_BYTES,
                NODE_BYTES,
            );
            node = self.nodes[node.adr as usize + idx];
            accesses += 1;
        }
        self.finish_lookup(addr, node, accesses, lines)
    }

    /// Resolve a finished trie walk: base-vector read, full-match test,
    /// then the prefix-chain fallback. Shared between the scalar and
    /// batch paths so both count accesses (and touched lines)
    /// identically.
    fn finish_lookup(
        &self,
        addr: u32,
        node: Node,
        mut accesses: u32,
        mut lines: LineSet,
    ) -> CountedLookup {
        if node.adr == NONE {
            return CountedLookup {
                next_hop: None,
                mem_accesses: accesses,
                lines_touched: lines.count(),
            };
        }
        let entry = self.base[node.adr as usize];
        accesses += 1; // base-vector read
        lines.touch(REGION_BASE, node.adr as usize * BASE_BYTES, BASE_BYTES);
        // Leading bits on which the address agrees with the leaf string.
        let common = ((addr ^ entry.bits).leading_zeros() as u8).min(32);
        if common >= entry.len {
            // The leaf prefix matches in full: it is the longest match.
            return CountedLookup {
                next_hop: Some(entry.next_hop),
                mem_accesses: accesses,
                lines_touched: lines.count(),
            };
        }
        // Fall back through the chain of internal ancestors: the deepest
        // one fitting within the agreed bits matches the address.
        let mut chain = entry.chain;
        while chain != NONE {
            let p = self.prefixes[chain as usize];
            accesses += 1; // prefix-vector read
            lines.touch(REGION_PREFIX, chain as usize * PREFIX_BYTES, PREFIX_BYTES);
            if p.len <= common {
                return CountedLookup {
                    next_hop: Some(p.next_hop),
                    mem_accesses: accesses,
                    lines_touched: lines.count(),
                };
            }
            chain = p.chain;
        }
        CountedLookup {
            next_hop: None,
            mem_accesses: accesses,
            lines_touched: lines.count(),
        }
    }

    /// One interleaved group of [`BATCH_LANES`] lookups. The level walk
    /// advances each still-branching lane one node per round so the four
    /// dependent child-array reads overlap; finished lanes park on their
    /// leaf until the group drains, then every lane resolves through
    /// [`LcTrie::finish_lookup`] — the same code the scalar path runs, so
    /// results and access counts are identical by construction.
    fn lookup_quad(&self, addrs: [u32; BATCH_LANES]) -> [CountedLookup; BATCH_LANES] {
        let nodes = &self.nodes;
        let mut node = [nodes[0]; BATCH_LANES];
        let mut pos = [0u8; BATCH_LANES];
        let mut acc = [1u32; BATCH_LANES]; // root read
        let mut lines: [LineSet; BATCH_LANES] = std::array::from_fn(|_| LineSet::new());
        for l in &mut lines {
            l.touch(REGION_NODES, 0, NODE_BYTES);
        }
        loop {
            let mut any = false;
            for l in 0..BATCH_LANES {
                if node[l].branch == 0 {
                    continue;
                }
                pos[l] += node[l].skip;
                let shift = 32 - pos[l] as u32 - node[l].branch as u32;
                let idx = ((addrs[l] >> shift) as usize) & ((1 << node[l].branch) - 1);
                pos[l] += node[l].branch;
                lines[l].touch(
                    REGION_NODES,
                    (node[l].adr as usize + idx) * NODE_BYTES,
                    NODE_BYTES,
                );
                node[l] = nodes[node[l].adr as usize + idx];
                acc[l] += 1;
                any = true;
            }
            if !any {
                break;
            }
        }
        std::array::from_fn(|l| self.finish_lookup(addrs[l], node[l], acc[l], lines[l].clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::{synth, RouteEntry};

    fn table(prefixes: &[(&str, u16)]) -> RoutingTable {
        RoutingTable::from_entries(prefixes.iter().map(|&(s, nh)| RouteEntry {
            prefix: s.parse().unwrap(),
            next_hop: NextHop(nh),
        }))
    }

    fn assert_agrees(rt: &RoutingTable, fill: f64, addrs: impl Iterator<Item = u32>) {
        let trie = LcTrie::build_with_fill(rt, fill);
        for addr in addrs {
            assert_eq!(
                trie.lookup(addr),
                rt.longest_match(addr).map(|e| e.next_hop),
                "addr {addr:#010x} (fill {fill})"
            );
        }
    }

    #[test]
    fn empty_table() {
        let trie = LcTrie::build(&RoutingTable::new());
        assert_eq!(trie.lookup(0), None);
        assert_eq!(trie.lookup(u32::MAX), None);
    }

    #[test]
    fn single_route() {
        let rt = table(&[("10.0.0.0/8", 1)]);
        let trie = LcTrie::build(&rt);
        assert_eq!(trie.lookup(0x0A01_0203), Some(NextHop(1)));
        assert_eq!(trie.lookup(0x0B00_0000), None);
    }

    #[test]
    fn internal_prefixes_via_chain() {
        let rt = table(&[
            ("10.0.0.0/8", 1),
            ("10.1.0.0/16", 2),
            ("10.1.2.0/24", 3),
            ("10.9.0.0/16", 4),
        ]);
        let trie = LcTrie::build(&rt);
        let (base, pre) = trie.vector_sizes();
        assert_eq!(base, 2); // 10.1.2.0/24 and 10.9.0.0/16 are leaves
        assert_eq!(pre, 2); // /8 and 10.1/16 are internal
        assert_eq!(trie.lookup(0x0A01_0203), Some(NextHop(3)));
        assert_eq!(trie.lookup(0x0A01_0303), Some(NextHop(2)));
        assert_eq!(trie.lookup(0x0A02_0000), Some(NextHop(1)));
        assert_eq!(trie.lookup(0x0A09_0001), Some(NextHop(4)));
        assert_eq!(trie.lookup(0x0B00_0000), None);
    }

    #[test]
    fn default_route_chain_terminates() {
        let rt = table(&[("0.0.0.0/0", 9), ("10.0.0.0/8", 1)]);
        let trie = LcTrie::build(&rt);
        assert_eq!(trie.lookup(0x0A00_0001), Some(NextHop(1)));
        assert_eq!(trie.lookup(0xC000_0000), Some(NextHop(9)));
    }

    #[test]
    fn empty_slot_fallback_is_correct() {
        // Low fill factor creates wide branches with empty slots; an
        // address landing in one must still resolve through the chain.
        let rt = table(&[
            ("10.0.0.0/8", 1),
            ("10.0.0.0/24", 2),
            ("10.64.0.0/24", 3),
            ("10.128.0.0/24", 4),
            ("10.192.0.0/24", 5),
        ]);
        // Fill 0.1 lets the root branch wide over sparse children.
        assert_agrees(
            &rt,
            0.1,
            [
                0x0A00_0001u32, // /24 at 10.0.0
                0x0A40_0001,    // /24 at 10.64.0
                0x0A20_0000,    // gap → /8 via chain
                0x0AFF_0000,    // gap → /8 via chain
                0x0B00_0000,    // outside → miss
            ]
            .into_iter(),
        );
    }

    #[test]
    fn agrees_with_oracle_across_fill_factors() {
        use rand::{Rng, SeedableRng};
        let rt = synth::small(31);
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let mut addrs: Vec<u32> = (0..200).map(|_| rng.gen()).collect();
        for e in rt.entries().iter().step_by(9) {
            addrs.push(e.prefix.first_addr());
            addrs.push(e.prefix.last_addr());
        }
        for fill in [0.125, 0.25, 0.5, 1.0] {
            assert_agrees(&rt, fill, addrs.iter().copied());
        }
    }

    #[test]
    fn lower_fill_is_shallower_but_bigger() {
        let rt = synth::small(37);
        let shallow = LcTrie::build_with_fill(&rt, 0.125);
        let deep = LcTrie::build_with_fill(&rt, 1.0);
        assert!(shallow.mean_leaf_depth() <= deep.mean_leaf_depth());
        assert!(shallow.node_count() >= deep.node_count());
    }

    #[test]
    fn route_count_preserved() {
        let rt = synth::small(41);
        let trie = LcTrie::build(&rt);
        let (base, pre) = trie.vector_sizes();
        assert_eq!(base + pre, rt.len());
        assert_eq!(trie.route_count(), rt.len());
    }

    #[test]
    #[should_panic]
    fn zero_fill_factor_rejected() {
        let _ = LcTrie::build_with_fill(&RoutingTable::new(), 0.0);
    }

    #[test]
    fn delta_patch_matches_rebuild() {
        let mut rt = table(&[
            ("10.0.0.0/8", 1),
            ("10.1.0.0/16", 2),
            ("10.1.2.0/24", 3),
            ("10.9.0.0/16", 4),
            ("192.168.0.0/24", 5),
        ]);
        let mut trie = LcTrie::build(&rt);
        // (prefix, next hop or withdraw, patch must succeed)
        let steps: &[(&str, Option<u16>, bool)] = &[
            ("10.9.0.0/16", Some(14), true),   // leaf re-target in place
            ("10.0.0.0/8", Some(11), true),    // internal re-target in place
            ("192.168.1.0/24", Some(6), true), // new leaf near a sibling
            ("172.16.0.0/12", Some(7), true),  // new leaf in fresh space
            ("192.168.1.0/24", None, true),    // withdraw rebuilds the parent
            ("10.9.0.0/16", None, true),       // withdraw a build-time leaf
            ("10.1.0.0/16", None, true),       // internal withdraw re-threads
            ("10.1.2.9/32", Some(8), true),    // flips 10.1.2.0/24 to internal
            ("10.1.2.9/32", None, true),       // flips it back to a leaf
        ];
        for &(s, nh, expect_patch) in steps {
            let p: Prefix = s.parse().unwrap();
            match nh {
                Some(nh) => {
                    rt.insert(RouteEntry {
                        prefix: p,
                        next_hop: NextHop(nh),
                    });
                }
                None => {
                    rt.remove(p);
                }
            }
            match trie.apply_delta(&[p], &rt) {
                Some(stats) => {
                    assert!(expect_patch, "expected decline after {s}");
                    assert_eq!(stats.prefixes_applied, 1);
                }
                None => {
                    assert!(!expect_patch, "expected patch after {s}");
                    trie = LcTrie::build(&rt); // the contract: caller rebuilds
                }
            }
            let fresh = LcTrie::build(&rt);
            let mut probes: Vec<u32> = vec![0, 1, u32::MAX, 0x0A01_0203, 0xC0A8_0105, 0xAC10_0001];
            for e in rt.entries() {
                for a in [e.prefix.first_addr(), e.prefix.last_addr()] {
                    probes.push(a);
                    probes.push(a.wrapping_sub(1));
                    probes.push(a.wrapping_add(1));
                }
            }
            for &a in &probes {
                assert_eq!(
                    trie.lookup(a),
                    fresh.lookup(a),
                    "patched vs rebuilt at {a:#010x} after {s}"
                );
                assert_eq!(
                    trie.lookup(a),
                    rt.longest_match(a).map(|e| e.next_hop),
                    "patched vs oracle at {a:#010x} after {s}"
                );
            }
        }
    }

    #[test]
    fn delta_patches_classification_flips() {
        // Withdrawing the /16 leaves the internal /8 without descendants:
        // /8 must flip back to a leaf inside the patch.
        let rt0 = table(&[("10.0.0.0/8", 1), ("10.1.0.0/16", 2)]);
        let mut trie = LcTrie::build(&rt0);
        let mut rt = rt0.clone();
        rt.remove("10.1.0.0/16".parse().unwrap());
        assert!(trie
            .apply_delta(&["10.1.0.0/16".parse().unwrap()], &rt)
            .is_some());
        assert_eq!(trie.lookup(0x0A01_0203), Some(NextHop(1)));
        assert_eq!(trie.lookup(0x0B00_0000), None);
        // A later re-target of the flipped /8 must hit the leaf copy.
        rt.insert(RouteEntry {
            prefix: "10.0.0.0/8".parse().unwrap(),
            next_hop: NextHop(7),
        });
        assert!(trie
            .apply_delta(&["10.0.0.0/8".parse().unwrap()], &rt)
            .is_some());
        assert_eq!(trie.lookup(0x0A01_0203), Some(NextHop(7)));

        // Announcing below the leaf /16 flips it to internal; lookups
        // between the two must now chain through it.
        let mut trie = LcTrie::build(&rt0);
        let mut rt = rt0.clone();
        let deep: Prefix = "10.1.2.0/24".parse().unwrap();
        rt.insert(RouteEntry {
            prefix: deep,
            next_hop: NextHop(3),
        });
        assert!(trie.apply_delta(&[deep], &rt).is_some());
        assert_eq!(trie.lookup(0x0A01_0203), Some(NextHop(3)));
        assert_eq!(trie.lookup(0x0A01_0303), Some(NextHop(2)));
        assert_eq!(trie.lookup(0x0A02_0000), Some(NextHop(1)));

        // A batch whose announce order lists the deep leaf before its
        // brand-new ancestors forces the ancestor-flip walk.
        let mut rt = rt0.clone();
        let mut trie = LcTrie::build(&rt);
        for (s, nh) in [("10.1.2.0/24", 3), ("10.1.2.0/25", 4), ("10.1.2.0/26", 5)] {
            rt.insert(RouteEntry {
                prefix: s.parse().unwrap(),
                next_hop: NextHop(nh),
            });
        }
        let changed: Vec<Prefix> = ["10.1.2.0/26", "10.1.2.0/25", "10.1.2.0/24"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        assert!(trie.apply_delta(&changed, &rt).is_some());
        let fresh = LcTrie::build(&rt);
        for a in [
            0x0A01_0200u32,
            0x0A01_0250,
            0x0A01_02C0,
            0x0A01_0300,
            0x0A02_0000,
        ] {
            assert_eq!(trie.lookup(a), fresh.lookup(a), "addr {a:#010x}");
            assert_eq!(trie.lookup(a), rt.longest_match(a).map(|e| e.next_hop));
        }
    }

    /// DFZ-shaped churn regression: before classification flips were
    /// patchable, every 256-update batch at this nesting density
    /// declined (8/8 at both 150k and 1M — see EXPERIMENTS.md E25). The
    /// patch path must absorb whole batches and stay oracle-equivalent.
    #[test]
    fn delta_survives_dfz_churn_without_decline() {
        use spal_rib::updates::{update_stream, Update, UpdateStreamConfig};
        let table = synth::synthesize(&synth::SynthConfig::dfz2026(8_000, 0xFEE1));
        let mut trie = LcTrie::build(&table);
        let (updates, fin) = update_stream(
            &table,
            &UpdateStreamConfig {
                count: 600,
                withdraw_fraction: 0.3,
                seed: 0xBEEF,
            },
        );
        let mut rib = table.clone();
        let mut declines = 0usize;
        for chunk in updates.chunks(64) {
            let mut changed: Vec<Prefix> = Vec::new();
            for &u in chunk {
                let p = match u {
                    Update::Announce(e) => e.prefix,
                    Update::Withdraw(p) => p,
                };
                if !changed.contains(&p) {
                    changed.push(p);
                }
                spal_rib::updates::apply(&mut rib, u);
            }
            if trie.apply_delta(&changed, &rib).is_none() {
                declines += 1;
                trie = LcTrie::build(&rib);
            }
        }
        assert_eq!(rib.len(), fin.len());
        // The garbage guard may still fire late in a long stream; the
        // flip paths themselves must not decline on the first batches.
        assert!(
            declines <= 2,
            "classification flips regressed to declines: {declines}/10 batches"
        );
        let fresh = LcTrie::build(&fin);
        let mut addrs: Vec<u32> = Vec::new();
        for e in fin.entries().iter().step_by(7) {
            addrs.push(e.prefix.first_addr());
            addrs.push(e.prefix.first_addr() ^ 1);
            addrs.push(e.prefix.last_addr());
        }
        for &a in &addrs {
            assert_eq!(trie.lookup(a), fresh.lookup(a), "addr {a:#010x}");
        }
    }

    #[test]
    fn sibling_host_routes() {
        let rt = table(&[("1.2.3.4/32", 1), ("1.2.3.5/32", 2), ("1.2.3.4/30", 3)]);
        let trie = LcTrie::build(&rt);
        assert_eq!(trie.lookup(0x0102_0304), Some(NextHop(1)));
        assert_eq!(trie.lookup(0x0102_0305), Some(NextHop(2)));
        assert_eq!(trie.lookup(0x0102_0306), Some(NextHop(3)));
        assert_eq!(trie.lookup(0x0102_0308), None);
    }
}
