//! Fixed-stride multibit trie with controlled prefix expansion (CPE) —
//! the general structure behind §2.1's "multiple-bit inspection at each
//! search step", surveyed in the paper's ref \[15\]. The Lulea trie is
//! the compressed 16/8/8 instance; the hardware DIR-24-8 is the 24/8
//! instance. This implementation takes an arbitrary stride vector, which
//! lets the stride/storage/access trade-off be swept directly.
//!
//! Each level consumes `strides[d]` bits. A node holds `2^stride`
//! entries, each either a result (with the longest expanded prefix seen)
//! or a child pointer plus the best result along the way — the classic
//! expansion that removes backtracking: lookup inspects exactly one
//! entry per level.

use crate::{CountedLookup, DeltaStats, LineSet, Lpm, BATCH_LANES};
use spal_rib::{NextHop, Prefix, RouteEntry, RoutingTable};

const NO_CHILD: u32 = u32::MAX;

/// Modeled bytes per slot (2 B result + 4 B child pointer — the storage
/// model), used for both `storage_bytes` and line accounting.
const SLOT_BYTES: usize = 6;

/// Line-accounting region tag: the slot arena (the only array read).
const REGION_SLOTS: u32 = 0;

/// One slot of a multibit node.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Best (longest-prefix) result covering this slot so far.
    result: Option<NextHop>,
    /// Length of the prefix that produced `result` (for CPE priority).
    result_len: u8,
    /// Child node, or `NO_CHILD`.
    child: u32,
}

impl Slot {
    const EMPTY: Slot = Slot {
        result: None,
        result_len: 0,
        child: NO_CHILD,
    };
}

/// A node: `2^strides[level]` slots, stored contiguously in the arena
/// starting at `base` (the stride itself is implied by the level).
#[derive(Debug)]
struct Node {
    base: usize,
}

/// The fixed-stride multibit trie.
#[derive(Debug)]
pub struct MultibitTrie {
    strides: Vec<u8>,
    nodes: Vec<Node>,
    slots: Vec<Slot>,
    routes: usize,
}

impl MultibitTrie {
    /// Build with the given stride vector (must sum to 32; every stride
    /// in `1..=24`). Beware wide strides below the root: each node costs
    /// `2^stride` slots, and sparse tables allocate many nodes per level
    /// — the uncompressed blow-up Lulea's bitmaps avoid.
    ///
    /// # Panics
    /// Panics on an invalid stride vector.
    pub fn build(table: &RoutingTable, strides: &[u8]) -> Self {
        assert!(
            strides.iter().map(|&s| s as u32).sum::<u32>() == 32,
            "strides must sum to 32"
        );
        assert!(
            strides.iter().all(|&s| (1..=24).contains(&s)),
            "each stride must be in 1..=24"
        );
        let mut t = MultibitTrie {
            strides: strides.to_vec(),
            nodes: Vec::new(),
            slots: Vec::new(),
            routes: table.len(),
        };
        t.alloc_node(0); // root
                         // Longest-last insertion is unnecessary: CPE keeps per-slot
                         // priority via `result_len`.
        for e in table {
            t.insert(e.prefix.bits(), e.prefix.len(), e.next_hop);
        }
        t
    }

    /// The paper-flavoured default instance: strides 16/8/8 (the Lulea
    /// cut points, uncompressed).
    pub fn build_16_8_8(table: &RoutingTable) -> Self {
        Self::build(table, &[16, 8, 8])
    }

    fn alloc_node(&mut self, level: usize) -> u32 {
        let stride = self.strides[level];
        let base = self.slots.len();
        self.slots
            .extend(std::iter::repeat_n(Slot::EMPTY, 1usize << stride));
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { base });
        id
    }

    fn insert(&mut self, bits: u32, len: u8, nh: NextHop) {
        let mut node = 0u32;
        let mut consumed = 0u8;
        let mut level = 0usize;
        loop {
            let stride = self.strides[level];
            let base = self.nodes[node as usize].base;
            if len <= consumed + stride {
                // The prefix ends inside this level: expand it over the
                // covered slot range, keeping only longer-prefix wins.
                let within = len - consumed; // 0..=stride
                let first = if within == 0 {
                    0
                } else {
                    ((bits >> (32 - consumed - within)) as usize & ((1 << within) - 1))
                        << (stride - within)
                };
                let count = 1usize << (stride - within);
                for s in &mut self.slots[base + first..base + first + count] {
                    if len >= s.result_len {
                        s.result = Some(nh);
                        s.result_len = len;
                    }
                }
                return;
            }
            // Descend.
            let idx = (bits >> (32 - consumed - stride)) as usize & ((1 << stride) - 1);
            let child = self.slots[base + idx].child;
            let child = if child == NO_CHILD {
                let id = self.alloc_node(level + 1);
                self.slots[base + idx].child = id;
                id
            } else {
                child
            };
            node = child;
            consumed += stride;
            level += 1;
        }
    }

    /// One interleaved group of [`BATCH_LANES`] lookups, walked
    /// level-synchronously: every still-active lane does its slot read
    /// for level `d` before any lane moves to level `d+1`, so the four
    /// independent slot loads per level overlap. Per-lane steps mirror
    /// [`MultibitTrie::lookup_counted`] exactly.
    fn lookup_quad(&self, addrs: [u32; BATCH_LANES]) -> [CountedLookup; BATCH_LANES] {
        let mut node = [0u32; BATCH_LANES];
        let mut consumed = [0u8; BATCH_LANES];
        let mut best: [Option<NextHop>; BATCH_LANES] = [None; BATCH_LANES];
        let mut acc = [0u32; BATCH_LANES];
        let mut active = [true; BATCH_LANES];
        let mut lines: [LineSet; BATCH_LANES] = std::array::from_fn(|_| LineSet::new());
        for level in 0..self.strides.len() {
            let stride = self.strides[level];
            for l in 0..BATCH_LANES {
                if !active[l] {
                    continue;
                }
                let base = self.nodes[node[l] as usize].base;
                let idx = (addrs[l] >> (32 - consumed[l] - stride)) as usize & ((1 << stride) - 1);
                let slot = self.slots[base + idx];
                acc[l] += 1; // one slot read per level
                lines[l].touch(REGION_SLOTS, (base + idx) * SLOT_BYTES, SLOT_BYTES);
                if slot.result.is_some() {
                    best[l] = slot.result;
                }
                if slot.child == NO_CHILD {
                    active[l] = false;
                    continue;
                }
                node[l] = slot.child;
                consumed[l] += stride;
            }
            if active.iter().all(|&a| !a) {
                break;
            }
        }
        std::array::from_fn(|l| CountedLookup {
            next_hop: best[l],
            mem_accesses: acc[l].max(1),
            lines_touched: lines[l].count().max(1),
        })
    }

    /// Dirty-subtrie patch for one changed prefix: walk to the node at
    /// the prefix's stride boundary (creating path nodes only for an
    /// announce), reset the covered slot range and repaint it from the
    /// post-update RIB's routes in this level's length band. Children
    /// are untouched — deeper routes live in deeper nodes. Returns
    /// bytes touched.
    fn patch_prefix(&mut self, p: Prefix, rib: &RoutingTable) -> usize {
        let bits = p.bits();
        let len = p.len();
        let announce = rib.get(p).is_some();
        let mut node = 0u32;
        let mut consumed = 0u8;
        let mut level = 0usize;
        let mut bytes = 0usize;
        loop {
            let stride = self.strides[level];
            let base = self.nodes[node as usize].base;
            if len <= consumed + stride {
                let within = len - consumed;
                let first = if within == 0 {
                    0
                } else {
                    ((bits >> (32 - consumed - within)) as usize & ((1 << within) - 1))
                        << (stride - within)
                };
                let count = 1usize << (stride - within);
                for s in &mut self.slots[base + first..base + first + count] {
                    s.result = None;
                    s.result_len = 0;
                }
                // Candidate routes terminating in this node that overlap
                // the covered range: ancestors of `p` in this level's
                // band (they cover the whole range) plus routes
                // contained in `p`'s range that end within the band.
                let lo_len = if level == 0 { 0 } else { consumed + 1 };
                let hi_len = consumed + stride;
                let mut cands: Vec<RouteEntry> = Vec::new();
                for l in lo_len..len {
                    let ap = Prefix::new(bits, l).expect("masked prefix is valid");
                    if let Some(nh) = rib.get(ap) {
                        cands.push(RouteEntry {
                            prefix: ap,
                            next_hop: nh,
                        });
                    }
                }
                for e in rib.range(p.first_addr(), p.last_addr()) {
                    if e.prefix.len() >= len && e.prefix.len() <= hi_len {
                        cands.push(*e);
                    }
                }
                cands.sort_by_key(|e| e.prefix.len());
                for e in cands {
                    let ew = e.prefix.len().saturating_sub(consumed);
                    let efirst = if ew == 0 {
                        0
                    } else {
                        ((e.prefix.bits() >> (32 - consumed - ew)) as usize & ((1 << ew) - 1))
                            << (stride - ew)
                    };
                    let ecount = 1usize << (stride - ew);
                    // Clip to the reset range: an ancestor's expansion
                    // covers the whole node, but slots outside `p`'s
                    // range already hold their (possibly longer) wins.
                    let s0 = efirst.max(first);
                    let s1 = (efirst + ecount).min(first + count);
                    for s in &mut self.slots[base + s0..base + s1.max(s0)] {
                        s.result = Some(e.next_hop);
                        s.result_len = e.prefix.len();
                    }
                }
                bytes += count * 6;
                return bytes;
            }
            let idx = (bits >> (32 - consumed - stride)) as usize & ((1 << stride) - 1);
            let child = self.slots[base + idx].child;
            let child = if child == NO_CHILD {
                if !announce {
                    // Withdrawing below a path that was never built:
                    // nothing to remove.
                    return bytes;
                }
                let id = self.alloc_node(level + 1);
                bytes += (1usize << self.strides[level + 1]) * 6;
                self.slots[base + idx].child = id;
                id
            } else {
                child
            };
            node = child;
            consumed += stride;
            level += 1;
        }
    }

    /// The stride vector.
    pub fn strides(&self) -> &[u8] {
        &self.strides
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of routes the trie was built from.
    pub fn route_count(&self) -> usize {
        self.routes
    }
}

impl Lpm for MultibitTrie {
    fn lookup_counted(&self, addr: u32) -> CountedLookup {
        let mut node = 0u32;
        let mut consumed = 0u8;
        let mut best: Option<NextHop> = None;
        let mut accesses = 0u32;
        let mut lines = LineSet::new();
        for level in 0..self.strides.len() {
            let stride = self.strides[level];
            let base = self.nodes[node as usize].base;
            let idx = (addr >> (32 - consumed - stride)) as usize & ((1 << stride) - 1);
            let slot = self.slots[base + idx];
            accesses += 1; // one slot read per level
            lines.touch(REGION_SLOTS, (base + idx) * SLOT_BYTES, SLOT_BYTES);
            if slot.result.is_some() {
                best = slot.result;
            }
            if slot.child == NO_CHILD {
                break;
            }
            node = slot.child;
            consumed += stride;
        }
        CountedLookup {
            next_hop: best,
            mem_accesses: accesses.max(1),
            lines_touched: lines.count().max(1),
        }
    }

    fn lookup_batch(&self, addrs: &[u32], out: &mut [CountedLookup]) {
        crate::run_quads(self, addrs, out, MultibitTrie::lookup_quad);
    }

    /// Dirty-subtrie patching: each changed prefix repaints only the
    /// covered slot range of the node at its stride boundary. Withdrawn
    /// subtrees keep their (empty) nodes — lookups fall through them
    /// with the same next hops as a fresh build, at most one extra
    /// access; the arena is reclaimed on the next full rebuild.
    fn apply_delta(&mut self, changed: &[Prefix], rib: &RoutingTable) -> Option<DeltaStats> {
        let mut stats = DeltaStats::default();
        for &p in changed {
            stats.bytes_touched += self.patch_prefix(p, rib);
            stats.prefixes_applied += 1;
        }
        self.routes = rib.len();
        Some(stats)
    }

    fn storage_bytes(&self) -> usize {
        // Per slot: 2 B result + 4 B child pointer (result_len is build
        // metadata, not needed at lookup time).
        self.slots.len() * SLOT_BYTES
    }

    fn name(&self) -> &'static str {
        "Multibit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::{synth, RouteEntry};

    fn table(prefixes: &[(&str, u16)]) -> RoutingTable {
        RoutingTable::from_entries(prefixes.iter().map(|&(s, nh)| RouteEntry {
            prefix: s.parse().unwrap(),
            next_hop: NextHop(nh),
        }))
    }

    fn assert_agrees(rt: &RoutingTable, strides: &[u8], addrs: impl Iterator<Item = u32>) {
        let trie = MultibitTrie::build(rt, strides);
        for addr in addrs {
            assert_eq!(
                trie.lookup(addr),
                rt.longest_match(addr).map(|e| e.next_hop),
                "addr {addr:#010x} strides {strides:?}"
            );
        }
    }

    #[test]
    fn empty_table() {
        let t = MultibitTrie::build_16_8_8(&RoutingTable::new());
        assert_eq!(t.lookup(0), None);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn default_route_expansion() {
        let rt = table(&[("0.0.0.0/0", 9)]);
        let t = MultibitTrie::build_16_8_8(&rt);
        assert_eq!(t.lookup(0), Some(NextHop(9)));
        assert_eq!(t.lookup(u32::MAX), Some(NextHop(9)));
        // Resolved at level 1: exactly one access.
        assert_eq!(t.lookup_counted(123).mem_accesses, 1);
    }

    #[test]
    fn cpe_priority_keeps_longest() {
        // /8 then /16 inserted in either order: /16 must win inside its
        // range even though both expand into the same level-1 node.
        for prefixes in [
            vec![("10.0.0.0/8", 1), ("10.1.0.0/16", 2)],
            vec![("10.1.0.0/16", 2), ("10.0.0.0/8", 1)],
        ] {
            let rt = table(&prefixes);
            let t = MultibitTrie::build_16_8_8(&rt);
            assert_eq!(t.lookup(0x0A01_0005), Some(NextHop(2)));
            assert_eq!(t.lookup(0x0A02_0005), Some(NextHop(1)));
        }
    }

    #[test]
    fn no_backtracking_needed() {
        // Deep miss under a shallow cover: the expanded cover travels
        // down slot results, so the lookup never backtracks.
        let rt = table(&[("10.0.0.0/8", 1), ("10.1.2.0/24", 2), ("10.1.2.3/32", 3)]);
        let t = MultibitTrie::build_16_8_8(&rt);
        let c = t.lookup_counted(0x0A01_0204); // /24 range, not the /32
        assert_eq!(c.next_hop, Some(NextHop(2)));
        assert!(c.mem_accesses <= 3);
        assert_eq!(t.lookup(0x0A01_0303), Some(NextHop(1))); // /8 fallback
    }

    #[test]
    fn agrees_with_oracle_across_stride_vectors() {
        use rand::{Rng, SeedableRng};
        let rt = synth::small(131);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut addrs: Vec<u32> = (0..200).map(|_| rng.gen()).collect();
        for e in rt.entries().iter().step_by(13) {
            addrs.push(e.prefix.first_addr());
            addrs.push(e.prefix.last_addr());
        }
        for strides in [
            vec![16u8, 8, 8],
            vec![8, 8, 8, 8],
            vec![4, 4, 4, 4, 4, 4, 4, 4],
            vec![12, 12, 8],
            vec![16, 16],
        ] {
            assert_agrees(&rt, &strides, addrs.iter().copied());
        }
    }

    #[test]
    fn access_count_bounded_by_levels() {
        let rt = synth::small(137);
        let t = MultibitTrie::build(&rt, &[8, 8, 8, 8]);
        for e in rt.entries().iter().step_by(29) {
            let c = t.lookup_counted(e.prefix.first_addr());
            assert!(c.mem_accesses >= 1 && c.mem_accesses <= 4);
        }
    }

    #[test]
    fn stride_tradeoff_storage_vs_depth() {
        let rt = synth::synthesize(&synth::SynthConfig::sized(10_000, 9));
        let wide = MultibitTrie::build(&rt, &[16, 8, 8]);
        let narrow = MultibitTrie::build(&rt, &[4, 4, 4, 4, 4, 4, 4, 4]);
        // Wider strides: more storage, fewer accesses.
        assert!(wide.storage_bytes() > narrow.storage_bytes());
        let addr = rt.entries()[5000].prefix.first_addr();
        assert!(wide.lookup_counted(addr).mem_accesses <= narrow.lookup_counted(addr).mem_accesses);
    }

    #[test]
    fn delta_patch_matches_rebuild() {
        let mut rt = table(&[("10.0.0.0/8", 1), ("10.1.0.0/16", 2), ("10.1.2.0/24", 3)]);
        let mut trie = MultibitTrie::build_16_8_8(&rt);
        let steps: &[(&str, Option<u16>)] = &[
            ("10.1.2.3/32", Some(7)),  // deep announce creates level-3 node
            ("10.1.2.0/24", None),     // withdraw re-exposes the /16
            ("10.1.0.0/16", Some(9)),  // re-target an existing route
            ("10.1.2.3/32", None),     // withdraw leaves an empty subtree
            ("0.0.0.0/0", Some(11)),   // default announce covers the root
            ("10.0.0.0/8", None),      // withdraw under the new default
            ("10.64.0.0/10", Some(4)), // covered-range paint inside root node
            ("0.0.0.0/0", None),       // default withdraw clears the root band
        ];
        for &(s, nh) in steps {
            let p: Prefix = s.parse().unwrap();
            match nh {
                Some(nh) => {
                    rt.insert(RouteEntry {
                        prefix: p,
                        next_hop: NextHop(nh),
                    });
                }
                None => {
                    rt.remove(p);
                }
            }
            let stats = trie
                .apply_delta(&[p], &rt)
                .expect("multibit always patches");
            assert_eq!(stats.prefixes_applied, 1);
            assert!(stats.bytes_touched > 0);
            let fresh = MultibitTrie::build_16_8_8(&rt);
            let mut probes: Vec<u32> = vec![0, 1, u32::MAX, 0x0A01_0204, 0x0A40_0001];
            for e in rt.entries() {
                for a in [e.prefix.first_addr(), e.prefix.last_addr()] {
                    probes.push(a);
                    probes.push(a.wrapping_sub(1));
                    probes.push(a.wrapping_add(1));
                }
            }
            for &a in &probes {
                assert_eq!(
                    trie.lookup(a),
                    fresh.lookup(a),
                    "patched vs rebuilt at {a:#010x} after {s}"
                );
                assert_eq!(
                    trie.lookup(a),
                    rt.longest_match(a).map(|e| e.next_hop),
                    "patched vs oracle at {a:#010x} after {s}"
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn strides_must_sum_to_32() {
        let _ = MultibitTrie::build(&RoutingTable::new(), &[16, 8]);
    }

    #[test]
    #[should_panic]
    fn zero_stride_rejected() {
        let _ = MultibitTrie::build(&RoutingTable::new(), &[16, 8, 8, 0]);
    }
}
