//! Longest-prefix-match (LPM) algorithms for the SPAL reproduction.
//!
//! The paper's forwarding engines run a software matching algorithm over a
//! trie held in SRAM; §4 and §5.1 evaluate three published structures,
//! all implemented here from scratch:
//!
//! * [`dp::DpTrie`] — the *dynamic prefix trie* of Doeringer, Karjoth &
//!   Nassehi \[8\]: a path-compressed binary trie whose nodes carry one
//!   index byte plus five 4-byte pointers (the 21 B/node storage model the
//!   paper uses) and which averages ≈16 memory accesses per lookup.
//! * [`lulea::LuleaTrie`] — the compressed 16/8/8 three-level structure of
//!   Degermark et al. \[7\], with the genuine bit-vector + codeword +
//!   base-index + maptable machinery, averaging ≈6–7 accesses per lookup.
//! * [`lctrie::LcTrie`] — the level-compressed trie of Nilsson & Karlsson
//!   \[12\] with a configurable fill factor (the paper uses 0.25).
//! * [`binary::BinaryTrie`] — a plain bitwise trie used as the reference
//!   implementation and for IPv6 (it is generic over address width).
//!
//! Every structure implements [`Lpm`], which exposes the two quantities
//! the paper's experiments need besides the lookup result itself: the
//! number of memory accesses the lookup performed and the storage the
//! structure occupies under the paper's byte models.

pub mod binary;
pub mod delta;
pub mod dir24;
pub mod dp;
pub mod lctrie;
pub mod lulea;
pub mod model;
pub mod multibit;
pub mod poptrie;
pub mod ship;

pub use delta::DeltaStats;

use spal_rib::v6::{Prefix6, RoutingTable6};
use spal_rib::{NextHop, Prefix, RoutingTable};

/// Result of an instrumented lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountedLookup {
    /// The longest-prefix-match result, if any route matched.
    pub next_hop: Option<NextHop>,
    /// Number of memory accesses the lookup performed (node reads, table
    /// reads, next-hop-table read).
    pub mem_accesses: u32,
    /// Number of **distinct 64-byte cache lines** the lookup touched,
    /// under each engine's modeled byte layout (deduplicated per lookup).
    /// Two accesses that land in the same line — a codeword and its base
    /// index after the Lulea re-layout, a poptrie node's two bitmaps —
    /// count one line; a record that straddles a line boundary counts
    /// two. This is the metric the cache-aware-FIB literature argues
    /// predicts modern-CPU wall clock, reported next to the paper's
    /// `mem_accesses` so the two models can be compared honestly.
    pub lines_touched: u32,
}

impl CountedLookup {
    /// A zero-cost miss, for pre-sizing [`Lpm::lookup_batch`] output
    /// buffers.
    pub const MISS: CountedLookup = CountedLookup {
        next_hop: None,
        mem_accesses: 0,
        lines_touched: 0,
    };
}

impl Default for CountedLookup {
    fn default() -> Self {
        CountedLookup::MISS
    }
}

/// Cache-line size the line-accounting model assumes (64 bytes, the
/// universal x86-64 / aarch64 line).
pub const LINE_BYTES: usize = 64;

/// Tracks the distinct 64-byte cache lines one lookup touches under an
/// engine's **modeled** byte layout.
///
/// Offsets are modeled (record index × record bytes from the start of
/// each array), never actual virtual addresses: heap base alignment
/// varies run to run, and the counts must be deterministic so the
/// batch == scalar bit-identity contract and deterministic-replay
/// checksums keep holding. Each engine tags every distinct array it
/// reads with its own `region` id, so lines from different arrays never
/// alias.
///
/// The set is a fixed array with a linear-scan insert: lookups touch a
/// handful of lines (the binary trie's worst case — a 32-deep walk of
/// straddling 12-byte nodes — bounds it), so a scan beats hashing, and
/// `clear` just resets the length instead of zeroing.
#[derive(Debug, Clone)]
pub struct LineSet {
    ids: [u64; Self::CAPACITY],
    len: usize,
}

impl Default for LineSet {
    fn default() -> Self {
        Self::new()
    }
}

impl LineSet {
    /// Worst-case distinct lines per lookup: the 33-node binary-trie walk
    /// with every 12-byte node straddling a line boundary stays below
    /// this.
    const CAPACITY: usize = 80;

    /// An empty set.
    pub const fn new() -> Self {
        LineSet {
            ids: [0; Self::CAPACITY],
            len: 0,
        }
    }

    /// Forget all touched lines (no zeroing — hot-path cheap).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Record a read of `bytes` bytes at `byte_offset` within the array
    /// tagged `region`. Records that straddle a line boundary mark every
    /// line they cover.
    #[inline]
    pub fn touch(&mut self, region: u32, byte_offset: usize, bytes: usize) {
        let first = byte_offset / LINE_BYTES;
        let last = (byte_offset + bytes.max(1) - 1) / LINE_BYTES;
        for line in first..=last {
            self.insert(((region as u64) << 40) | line as u64);
        }
    }

    #[inline]
    fn insert(&mut self, id: u64) {
        if self.ids[..self.len].contains(&id) {
            return;
        }
        if self.len < Self::CAPACITY {
            self.ids[self.len] = id;
            self.len += 1;
        }
    }

    /// Number of distinct lines touched since the last [`LineSet::clear`].
    #[inline]
    pub fn count(&self) -> u32 {
        self.len as u32
    }
}

/// Number of interleaved lanes the specialized batch lookups run — the
/// VPP `lookup_four` width: four independent walks give the CPU enough
/// in-flight loads to hide most node-read latency without spilling lane
/// state out of registers.
pub const BATCH_LANES: usize = 4;

/// Best-effort software prefetch of `slice[index]` into L1. Out-of-range
/// indices are ignored, so callers can prefetch speculatively. Compiles
/// to `prefetcht0` on x86-64 and to nothing elsewhere (no unstable
/// `core::intrinsics` involved) — on other targets the index-ahead batch
/// structure alone still buys memory-level parallelism.
#[inline(always)]
pub fn prefetch_slice<T>(slice: &[T], index: usize) {
    #[cfg(target_arch = "x86_64")]
    if index < slice.len() {
        // SAFETY: the index is bounds-checked above and prefetch has no
        // architectural effect beyond the cache.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                slice.as_ptr().add(index) as *const i8,
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slice, index);
    }
}

/// A longest-prefix-match structure built from a routing table.
pub trait Lpm {
    /// Longest-prefix match for `addr`.
    fn lookup(&self, addr: u32) -> Option<NextHop> {
        self.lookup_counted(addr).next_hop
    }

    /// Longest-prefix match with a memory-access count, for the paper's
    /// §5.1 access measurements and the FE timing model.
    fn lookup_counted(&self, addr: u32) -> CountedLookup;

    /// Batched longest-prefix match: fill `out[i]` with exactly what
    /// `lookup_counted(addrs[i])` would return — same next hops, same
    /// `mem_accesses` — for every `i`.
    ///
    /// The default implementation is the scalar loop, so every engine
    /// supports batching; the flat-array and trie engines override it
    /// with a [`BATCH_LANES`]-lane interleaved walk (VPP `lookup_four`
    /// style) that advances each lane one node per round, so the lanes'
    /// dependent loads overlap instead of serializing. The contract is
    /// bit-identical results, pinned by the `batch_equiv` property suite.
    ///
    /// # Panics
    /// Panics if `addrs` and `out` differ in length.
    fn lookup_batch(&self, addrs: &[u32], out: &mut [CountedLookup]) {
        assert_eq!(
            addrs.len(),
            out.len(),
            "lookup_batch: addrs and out must have equal lengths"
        );
        for (o, &a) in out.iter_mut().zip(addrs) {
            *o = self.lookup_counted(a);
        }
    }

    /// Patch the structure in place after a batch of route changes,
    /// touching only the regions `changed` covers.
    ///
    /// `rib` is the **post-update** routing table the structure must end
    /// up equivalent to, and `changed` lists every prefix announced,
    /// withdrawn or re-targeted since the structure last matched `rib`.
    /// On success the engine is lookup-equivalent (same next hops, though
    /// not necessarily the same access counts — patching does not
    /// garbage-collect emptied spill segments or chunks) to a fresh
    /// build from `rib`, and the returned [`DeltaStats`] says how much
    /// memory the patch rewrote.
    ///
    /// Returning `None` means the engine declined to patch — either it
    /// has no incremental path at all (the default) or a fallback rule
    /// fired (accumulated garbage, a structural change the patch
    /// granularity cannot express). After `None` the structure's state
    /// is unspecified; the caller must rebuild it from `rib`.
    fn apply_delta(&mut self, changed: &[Prefix], rib: &RoutingTable) -> Option<DeltaStats> {
        let _ = (changed, rib);
        None
    }

    /// Bytes of SRAM the structure occupies under the paper's storage
    /// models (§4).
    fn storage_bytes(&self) -> usize;

    /// Short human-readable algorithm name ("DP", "Lulea", "LC", …).
    fn name(&self) -> &'static str;
}

/// A longest-prefix-match structure over 128-bit (IPv6) addresses —
/// the [`Lpm`] contract at the wider address width. Same semantics:
/// instrumented lookups, bit-identical batching, and `apply_delta`
/// patch-or-decline against the post-update table.
pub trait Lpm6 {
    /// Longest-prefix match for `addr`.
    fn lookup(&self, addr: u128) -> Option<NextHop> {
        self.lookup_counted(addr).next_hop
    }

    /// Longest-prefix match with access and cache-line counts.
    fn lookup_counted(&self, addr: u128) -> CountedLookup;

    /// Batched lookup; must be bit-identical to the scalar path (same
    /// next hops, same `mem_accesses`, same `lines_touched`).
    ///
    /// # Panics
    /// Panics if `addrs` and `out` differ in length.
    fn lookup_batch(&self, addrs: &[u128], out: &mut [CountedLookup]) {
        assert_eq!(
            addrs.len(),
            out.len(),
            "lookup_batch: addrs and out must have equal lengths"
        );
        for (o, &a) in out.iter_mut().zip(addrs) {
            *o = self.lookup_counted(a);
        }
    }

    /// Patch in place after route changes; see [`Lpm::apply_delta`] for
    /// the contract (`None` = declined, caller must rebuild from `rib`).
    fn apply_delta(&mut self, changed: &[Prefix6], rib: &RoutingTable6) -> Option<DeltaStats> {
        let _ = (changed, rib);
        None
    }

    /// Bytes of SRAM under the engine's modeled layout.
    fn storage_bytes(&self) -> usize;

    /// Short human-readable algorithm name.
    fn name(&self) -> &'static str;
}

/// Mean memory accesses per lookup over a set of IPv6 addresses.
pub fn mean_accesses6<L: Lpm6 + ?Sized>(lpm: &L, addrs: &[u128]) -> f64 {
    if addrs.is_empty() {
        return 0.0;
    }
    let total: u64 = addrs
        .iter()
        .map(|&a| lpm.lookup_counted(a).mem_accesses as u64)
        .sum();
    total as f64 / addrs.len() as f64
}

/// Mean distinct cache lines per lookup over a set of IPv6 addresses.
pub fn mean_lines6<L: Lpm6 + ?Sized>(lpm: &L, addrs: &[u128]) -> f64 {
    if addrs.is_empty() {
        return 0.0;
    }
    let total: u64 = addrs
        .iter()
        .map(|&a| lpm.lookup_counted(a).lines_touched as u64)
        .sum();
    total as f64 / addrs.len() as f64
}

/// Shared driver for the engines' specialized batch paths: feed full
/// [`BATCH_LANES`]-wide groups to `quad` and the unaligned tail to the
/// scalar path.
fn run_quads<L: Lpm>(
    lpm: &L,
    addrs: &[u32],
    out: &mut [CountedLookup],
    quad: impl Fn(&L, [u32; BATCH_LANES]) -> [CountedLookup; BATCH_LANES],
) {
    assert_eq!(
        addrs.len(),
        out.len(),
        "lookup_batch: addrs and out must have equal lengths"
    );
    let mut i = 0;
    while i + BATCH_LANES <= addrs.len() {
        let group = [addrs[i], addrs[i + 1], addrs[i + 2], addrs[i + 3]];
        out[i..i + BATCH_LANES].copy_from_slice(&quad(lpm, group));
        i += BATCH_LANES;
    }
    for k in i..addrs.len() {
        out[k] = lpm.lookup_counted(addrs[k]);
    }
}

/// Mean memory accesses per lookup over a set of addresses.
pub fn mean_accesses<L: Lpm + ?Sized>(lpm: &L, addrs: &[u32]) -> f64 {
    if addrs.is_empty() {
        return 0.0;
    }
    let total: u64 = addrs
        .iter()
        .map(|&a| lpm.lookup_counted(a).mem_accesses as u64)
        .sum();
    total as f64 / addrs.len() as f64
}

/// Mean distinct cache lines touched per lookup over a set of addresses.
pub fn mean_lines<L: Lpm + ?Sized>(lpm: &L, addrs: &[u32]) -> f64 {
    if addrs.is_empty() {
        return 0.0;
    }
    let total: u64 = addrs
        .iter()
        .map(|&a| lpm.lookup_counted(a).lines_touched as u64)
        .sum();
    total as f64 / addrs.len() as f64
}

#[cfg(test)]
mod lineset_tests {
    use super::*;

    #[test]
    fn dedupes_within_a_region() {
        let mut s = LineSet::new();
        s.touch(0, 0, 4);
        s.touch(0, 60, 2); // same line 0
        assert_eq!(s.count(), 1);
        s.touch(0, 64, 4);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn straddling_record_counts_both_lines() {
        let mut s = LineSet::new();
        // A 12-byte record at offset 60 covers lines 0 and 1.
        s.touch(0, 60, 12);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn regions_never_alias() {
        let mut s = LineSet::new();
        s.touch(0, 0, 4);
        s.touch(1, 0, 4);
        assert_eq!(s.count(), 2);
        s.clear();
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn zero_byte_touch_marks_one_line() {
        let mut s = LineSet::new();
        s.touch(0, 100, 0);
        assert_eq!(s.count(), 1);
    }
}
