//! Longest-prefix-match (LPM) algorithms for the SPAL reproduction.
//!
//! The paper's forwarding engines run a software matching algorithm over a
//! trie held in SRAM; §4 and §5.1 evaluate three published structures,
//! all implemented here from scratch:
//!
//! * [`dp::DpTrie`] — the *dynamic prefix trie* of Doeringer, Karjoth &
//!   Nassehi \[8\]: a path-compressed binary trie whose nodes carry one
//!   index byte plus five 4-byte pointers (the 21 B/node storage model the
//!   paper uses) and which averages ≈16 memory accesses per lookup.
//! * [`lulea::LuleaTrie`] — the compressed 16/8/8 three-level structure of
//!   Degermark et al. \[7\], with the genuine bit-vector + codeword +
//!   base-index + maptable machinery, averaging ≈6–7 accesses per lookup.
//! * [`lctrie::LcTrie`] — the level-compressed trie of Nilsson & Karlsson
//!   \[12\] with a configurable fill factor (the paper uses 0.25).
//! * [`binary::BinaryTrie`] — a plain bitwise trie used as the reference
//!   implementation and for IPv6 (it is generic over address width).
//!
//! Every structure implements [`Lpm`], which exposes the two quantities
//! the paper's experiments need besides the lookup result itself: the
//! number of memory accesses the lookup performed and the storage the
//! structure occupies under the paper's byte models.

pub mod binary;
pub mod dir24;
pub mod dp;
pub mod lctrie;
pub mod lulea;
pub mod model;
pub mod multibit;

use spal_rib::NextHop;

/// Result of an instrumented lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountedLookup {
    /// The longest-prefix-match result, if any route matched.
    pub next_hop: Option<NextHop>,
    /// Number of memory accesses the lookup performed (node reads, table
    /// reads, next-hop-table read).
    pub mem_accesses: u32,
}

/// A longest-prefix-match structure built from a routing table.
pub trait Lpm {
    /// Longest-prefix match for `addr`.
    fn lookup(&self, addr: u32) -> Option<NextHop> {
        self.lookup_counted(addr).next_hop
    }

    /// Longest-prefix match with a memory-access count, for the paper's
    /// §5.1 access measurements and the FE timing model.
    fn lookup_counted(&self, addr: u32) -> CountedLookup;

    /// Bytes of SRAM the structure occupies under the paper's storage
    /// models (§4).
    fn storage_bytes(&self) -> usize;

    /// Short human-readable algorithm name ("DP", "Lulea", "LC", …).
    fn name(&self) -> &'static str;
}

/// Mean memory accesses per lookup over a set of addresses.
pub fn mean_accesses<L: Lpm + ?Sized>(lpm: &L, addrs: &[u32]) -> f64 {
    if addrs.is_empty() {
        return 0.0;
    }
    let total: u64 = addrs
        .iter()
        .map(|&a| lpm.lookup_counted(a).mem_accesses as u64)
        .sum();
    total as f64 / addrs.len() as f64
}
