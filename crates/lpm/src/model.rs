//! The paper's forwarding-engine timing model (§5.1).
//!
//! A table lookup at an FE costs a sequence of off-chip SRAM accesses
//! (the trie lives in the L3 data cache) plus the execution of the
//! matching code: the paper assumes 12 ns per memory access and 120 ns of
//! code execution (~100 instructions), on a 5 ns system cycle. That makes
//! a Lulea lookup (≈6.6 accesses) ≈40 cycles and a DP-trie lookup (≈16
//! accesses) ≈62 cycles — the two FE costs every simulation in §5 uses.

/// Timing assumptions of §5.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeTimingModel {
    /// Off-chip SRAM access time in nanoseconds (paper: 12 ns).
    pub mem_access_ns: f64,
    /// Matching-code execution time per lookup in nanoseconds
    /// (paper: 120 ns ≈ 100 instructions).
    pub code_exec_ns: f64,
    /// System cycle time in nanoseconds (paper: 5 ns).
    pub cycle_ns: f64,
}

impl Default for FeTimingModel {
    fn default() -> Self {
        FeTimingModel {
            mem_access_ns: 12.0,
            code_exec_ns: 120.0,
            cycle_ns: 5.0,
        }
    }
}

impl FeTimingModel {
    /// FE lookup cost in nanoseconds for a given mean number of memory
    /// accesses per lookup.
    pub fn lookup_ns(&self, mean_accesses: f64) -> f64 {
        mean_accesses * self.mem_access_ns + self.code_exec_ns
    }

    /// FE lookup cost in (rounded) system cycles.
    pub fn lookup_cycles(&self, mean_accesses: f64) -> u32 {
        (self.lookup_ns(mean_accesses) / self.cycle_ns).round() as u32
    }

    /// FE lookup cost in nanoseconds under the **cache-line cost model**:
    /// each *distinct 64-byte line* a lookup touches costs one memory
    /// access, on the argument that a modern memory hierarchy moves whole
    /// lines — a second field read from an already-fetched line is free.
    /// The paper's §5.1 model (one charge per logical access) is
    /// [`FeTimingModel::lookup_ns`]; this variant is what the
    /// `lines_touched` instrumentation feeds, and the gap between the two
    /// is exactly the co-location win an engine's layout earns.
    pub fn lookup_ns_lines(&self, mean_lines: f64) -> f64 {
        self.lookup_ns(mean_lines)
    }

    /// [`FeTimingModel::lookup_ns_lines`] in (rounded) system cycles.
    pub fn lookup_cycles_lines(&self, mean_lines: f64) -> u32 {
        (self.lookup_ns_lines(mean_lines) / self.cycle_ns).round() as u32
    }
}

/// The paper's canonical FE cost under the Lulea trie: 40 cycles.
pub const LULEA_FE_CYCLES: u32 = 40;
/// The paper's canonical FE cost under the DP trie: 62 cycles.
pub const DP_FE_CYCLES: u32 = 62;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lulea_cost_reproduces_40_cycles() {
        let m = FeTimingModel::default();
        // §5.1: Lulea ≈ 6.2–6.6 accesses → "roughly 40 cycles".
        assert_eq!(m.lookup_cycles(6.6), 40);
        assert_eq!(m.lookup_cycles(6.2), 39);
        assert!((m.lookup_ns(6.6) - 199.2).abs() < 1e-9);
    }

    #[test]
    fn dp_cost_reproduces_62_cycles() {
        let m = FeTimingModel::default();
        // §5.1: DP ≈ 16 accesses → "62 cycles or so".
        assert_eq!(m.lookup_cycles(16.0), 62);
    }

    #[test]
    fn line_model_shares_the_cost_curve() {
        // The line-cost model is the same affine curve fed a smaller
        // argument: Lulea's 6.6 accesses collapse to ≈5.9 distinct lines
        // after the codeword+base re-layout, a Poptrie lookup to ≈3.
        let m = FeTimingModel::default();
        assert_eq!(m.lookup_cycles_lines(6.6), m.lookup_cycles(6.6));
        assert_eq!(m.lookup_cycles_lines(3.15), 32);
        assert!(m.lookup_cycles_lines(5.9) < m.lookup_cycles(6.6));
    }

    #[test]
    fn custom_model() {
        let m = FeTimingModel {
            mem_access_ns: 10.0,
            code_exec_ns: 100.0,
            cycle_ns: 2.0,
        };
        assert_eq!(m.lookup_cycles(10.0), 100);
    }
}
