//! Plain binary (uni-bit) trie: the reference LPM structure.
//!
//! One node per distinct prefix of a stored prefix. Lookup inspects a bit
//! per level and remembers the deepest route passed. This is the slowest
//! and most storage-hungry structure (the paper's motivation for the
//! compressed tries), but it is trivially correct, supports incremental
//! insert/withdraw, and is generic over address width so the IPv6
//! extension (§6) can reuse it unchanged.

use crate::{CountedLookup, LineSet, Lpm, Lpm6, BATCH_LANES};
use spal_rib::bits::AddressBits;
use spal_rib::v6::RoutingTable6;
use spal_rib::{NextHop, RoutingTable};

/// Line-accounting region tag: the node arena (the only array read).
const REGION_NODES: u32 = 0;

/// Sentinel for "no child".
const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    children: [u32; 2],
    route: Option<NextHop>,
}

impl Node {
    fn new() -> Self {
        Node {
            children: [NONE, NONE],
            route: None,
        }
    }
}

/// Byte size modelled per node: two 4-byte child pointers plus a 4-byte
/// route field (next hop + validity).
pub const NODE_BYTES: usize = 12;

/// A binary trie over addresses of type `A` (`u32` for IPv4, `u128` for
/// IPv6). Nodes live in a `Vec` arena; child links are indices.
#[derive(Debug, Clone)]
pub struct GenericBinaryTrie<A: AddressBits> {
    nodes: Vec<Node>,
    routes: usize,
    _marker: std::marker::PhantomData<A>,
}

/// The IPv4 binary trie.
pub type BinaryTrie = GenericBinaryTrie<u32>;

impl<A: AddressBits> Default for GenericBinaryTrie<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: AddressBits> GenericBinaryTrie<A> {
    /// An empty trie (just a root node).
    pub fn new() -> Self {
        GenericBinaryTrie {
            nodes: vec![Node::new()],
            routes: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of nodes, including the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of stored routes.
    pub fn route_count(&self) -> usize {
        self.routes
    }

    /// Insert (or replace) a route for the prefix `(bits, len)`.
    /// Returns the previous next hop if the prefix was present.
    ///
    /// # Panics
    /// Panics if `len > A::BITS`.
    pub fn insert(&mut self, bits: A, len: u8, next_hop: NextHop) -> Option<NextHop> {
        assert!(len <= A::BITS, "prefix length {len} exceeds address width");
        let mut node = 0usize;
        for i in 0..len {
            let b = bits.bit(i) as usize;
            let child = self.nodes[node].children[b];
            node = if child == NONE {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node::new());
                self.nodes[node].children[b] = idx;
                idx as usize
            } else {
                child as usize
            };
        }
        let prev = self.nodes[node].route.replace(next_hop);
        if prev.is_none() {
            self.routes += 1;
        }
        prev
    }

    /// Withdraw the route for `(bits, len)`, returning its next hop if it
    /// was present. Nodes are not pruned (withdrawals are rare relative to
    /// lookups; a rebuild reclaims the space).
    pub fn remove(&mut self, bits: A, len: u8) -> Option<NextHop> {
        assert!(len <= A::BITS, "prefix length {len} exceeds address width");
        let mut node = 0usize;
        for i in 0..len {
            let b = bits.bit(i) as usize;
            let child = self.nodes[node].children[b];
            if child == NONE {
                return None;
            }
            node = child as usize;
        }
        let prev = self.nodes[node].route.take();
        if prev.is_some() {
            self.routes -= 1;
        }
        prev
    }

    /// Longest-prefix match with an access count (one access per node
    /// visited). Works for any address width. Lines: each visited node is
    /// a [`NODE_BYTES`]-byte record at `index * NODE_BYTES` in the arena;
    /// records straddling a 64-byte boundary touch two lines.
    pub fn lookup_counted_generic(&self, addr: A) -> CountedLookup {
        let mut node = 0usize;
        let mut best = self.nodes[0].route;
        let mut accesses = 1u32; // root read
        let mut lines = LineSet::new();
        lines.touch(REGION_NODES, 0, NODE_BYTES);
        for i in 0..A::BITS {
            let child = self.nodes[node].children[addr.bit(i) as usize];
            if child == NONE {
                break;
            }
            node = child as usize;
            accesses += 1;
            lines.touch(REGION_NODES, node * NODE_BYTES, NODE_BYTES);
            if let Some(nh) = self.nodes[node].route {
                best = Some(nh);
            }
        }
        CountedLookup {
            next_hop: best,
            mem_accesses: accesses,
            lines_touched: lines.count(),
        }
    }

    /// Longest-prefix match for any address width.
    pub fn lookup_generic(&self, addr: A) -> Option<NextHop> {
        self.lookup_counted_generic(addr).next_hop
    }

    /// One interleaved group of [`BATCH_LANES`] lookups at any address
    /// width — the [`BinaryTrie::lookup_quad`] walk generalized so the
    /// IPv6 trie gets the same memory-level parallelism. Per-lane steps
    /// mirror [`GenericBinaryTrie::lookup_counted_generic`] exactly.
    fn lookup_quad_generic(&self, addrs: [A; BATCH_LANES]) -> [CountedLookup; BATCH_LANES] {
        let nodes = &self.nodes;
        let mut node = [0usize; BATCH_LANES];
        let mut best = [nodes[0].route; BATCH_LANES];
        let mut acc = [1u32; BATCH_LANES]; // root read
        let mut depth = [0u8; BATCH_LANES];
        let mut active = [true; BATCH_LANES];
        let mut lines: [LineSet; BATCH_LANES] = std::array::from_fn(|_| LineSet::new());
        for l in &mut lines {
            l.touch(REGION_NODES, 0, NODE_BYTES);
        }
        loop {
            let mut any = false;
            for l in 0..BATCH_LANES {
                if !active[l] {
                    continue;
                }
                if depth[l] >= A::BITS {
                    active[l] = false;
                    continue;
                }
                let child = nodes[node[l]].children[addrs[l].bit(depth[l]) as usize];
                if child == NONE {
                    active[l] = false;
                    continue;
                }
                node[l] = child as usize;
                acc[l] += 1;
                lines[l].touch(REGION_NODES, node[l] * NODE_BYTES, NODE_BYTES);
                if let Some(nh) = nodes[node[l]].route {
                    best[l] = Some(nh);
                }
                depth[l] += 1;
                any = true;
            }
            if !any {
                break;
            }
        }
        std::array::from_fn(|l| CountedLookup {
            next_hop: best[l],
            mem_accesses: acc[l],
            lines_touched: lines[l].count(),
        })
    }
}

impl GenericBinaryTrie<u128> {
    /// Build an IPv6 binary trie from a routing table.
    pub fn build6(table: &RoutingTable6) -> Self {
        let mut trie = Self::new();
        for e in table.entries() {
            trie.insert(e.prefix.bits(), e.prefix.len(), e.next_hop);
        }
        trie
    }
}

impl Lpm6 for GenericBinaryTrie<u128> {
    fn lookup_counted(&self, addr: u128) -> CountedLookup {
        self.lookup_counted_generic(addr)
    }

    fn lookup_batch(&self, addrs: &[u128], out: &mut [CountedLookup]) {
        assert_eq!(
            addrs.len(),
            out.len(),
            "lookup_batch: addrs and out must have equal lengths"
        );
        let mut i = 0;
        while i + BATCH_LANES <= addrs.len() {
            let group = [addrs[i], addrs[i + 1], addrs[i + 2], addrs[i + 3]];
            out[i..i + BATCH_LANES].copy_from_slice(&self.lookup_quad_generic(group));
            i += BATCH_LANES;
        }
        for k in i..addrs.len() {
            out[k] = self.lookup_counted_generic(addrs[k]);
        }
    }

    /// Natively incremental, same as the IPv4 impl: replay each change
    /// through insert/remove along the changed prefix's path.
    fn apply_delta(
        &mut self,
        changed: &[spal_rib::v6::Prefix6],
        rib: &RoutingTable6,
    ) -> Option<crate::DeltaStats> {
        let before = self.nodes.len();
        for &p in changed {
            match rib.get(p) {
                Some(nh) => {
                    self.insert(p.bits(), p.len(), nh);
                }
                None => {
                    self.remove(p.bits(), p.len());
                }
            }
        }
        Some(crate::DeltaStats {
            prefixes_applied: changed.len(),
            bytes_touched: (changed.len() + self.nodes.len().abs_diff(before)) * NODE_BYTES,
        })
    }

    fn storage_bytes(&self) -> usize {
        self.nodes.len() * NODE_BYTES
    }

    fn name(&self) -> &'static str {
        "Binary"
    }
}

impl BinaryTrie {
    /// Build an IPv4 binary trie from a routing table.
    pub fn build(table: &RoutingTable) -> Self {
        let mut trie = Self::new();
        for e in table {
            trie.insert(e.prefix.bits(), e.prefix.len(), e.next_hop);
        }
        trie
    }

    /// One interleaved group of [`BATCH_LANES`] lookups. Each round
    /// advances every still-active lane one trie level, so the four
    /// dependent child-pointer loads are in flight together instead of
    /// one walk stalling to completion before the next starts. Per-lane
    /// steps mirror [`GenericBinaryTrie::lookup_counted_generic`]
    /// exactly, access counts included.
    fn lookup_quad(&self, addrs: [u32; BATCH_LANES]) -> [CountedLookup; BATCH_LANES] {
        let nodes = &self.nodes;
        let mut node = [0usize; BATCH_LANES];
        let mut best = [nodes[0].route; BATCH_LANES];
        let mut acc = [1u32; BATCH_LANES]; // root read
        let mut depth = [0u8; BATCH_LANES];
        let mut active = [true; BATCH_LANES];
        let mut lines: [LineSet; BATCH_LANES] = std::array::from_fn(|_| LineSet::new());
        for l in &mut lines {
            l.touch(REGION_NODES, 0, NODE_BYTES);
        }
        loop {
            let mut any = false;
            for l in 0..BATCH_LANES {
                if !active[l] {
                    continue;
                }
                if depth[l] >= 32 {
                    active[l] = false;
                    continue;
                }
                let child = nodes[node[l]].children[addrs[l].bit(depth[l]) as usize];
                if child == NONE {
                    active[l] = false;
                    continue;
                }
                node[l] = child as usize;
                acc[l] += 1;
                lines[l].touch(REGION_NODES, node[l] * NODE_BYTES, NODE_BYTES);
                if let Some(nh) = nodes[node[l]].route {
                    best[l] = Some(nh);
                }
                depth[l] += 1;
                any = true;
            }
            if !any {
                break;
            }
        }
        std::array::from_fn(|l| CountedLookup {
            next_hop: best[l],
            mem_accesses: acc[l],
            lines_touched: lines[l].count(),
        })
    }
}

impl Lpm for BinaryTrie {
    fn lookup_counted(&self, addr: u32) -> CountedLookup {
        self.lookup_counted_generic(addr)
    }

    fn lookup_batch(&self, addrs: &[u32], out: &mut [CountedLookup]) {
        crate::run_quads(self, addrs, out, BinaryTrie::lookup_quad);
    }

    /// The binary trie is natively incremental: each change replays
    /// through [`BinaryTrie::insert`]/[`BinaryTrie::remove`], touching
    /// only the path to the changed prefix.
    fn apply_delta(
        &mut self,
        changed: &[spal_rib::Prefix],
        rib: &spal_rib::RoutingTable,
    ) -> Option<crate::DeltaStats> {
        let before = self.nodes.len();
        for &p in changed {
            match rib.get(p) {
                Some(nh) => {
                    self.insert(p.bits(), p.len(), nh);
                }
                None => {
                    self.remove(p.bits(), p.len());
                }
            }
        }
        Some(crate::DeltaStats {
            prefixes_applied: changed.len(),
            // Terminal-node rewrite per change plus the path nodes
            // allocated or freed.
            bytes_touched: (changed.len() + self.nodes.len().abs_diff(before)) * NODE_BYTES,
        })
    }

    fn storage_bytes(&self) -> usize {
        self.nodes.len() * NODE_BYTES
    }

    fn name(&self) -> &'static str {
        "Binary"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::{RouteEntry, RoutingTable};

    fn table(prefixes: &[(&str, u16)]) -> RoutingTable {
        RoutingTable::from_entries(prefixes.iter().map(|&(s, nh)| RouteEntry {
            prefix: s.parse().unwrap(),
            next_hop: NextHop(nh),
        }))
    }

    #[test]
    fn empty_trie_matches_nothing() {
        let t = BinaryTrie::new();
        assert_eq!(t.lookup(0), None);
        assert_eq!(t.lookup(u32::MAX), None);
        assert_eq!(t.route_count(), 0);
    }

    #[test]
    fn longest_match_agrees_with_oracle() {
        let rt = table(&[
            ("0.0.0.0/0", 0),
            ("10.0.0.0/8", 1),
            ("10.1.0.0/16", 2),
            ("10.1.2.0/24", 3),
            ("10.1.2.3/32", 4),
        ]);
        let trie = BinaryTrie::build(&rt);
        for addr in [
            0x0A01_0203u32,
            0x0A01_0204,
            0x0A01_0300,
            0x0A02_0000,
            0x0B00_0000,
        ] {
            assert_eq!(
                trie.lookup(addr),
                rt.longest_match(addr).map(|e| e.next_hop),
                "addr {addr:#x}"
            );
        }
    }

    #[test]
    fn default_route_only() {
        let rt = table(&[("0.0.0.0/0", 9)]);
        let trie = BinaryTrie::build(&rt);
        assert_eq!(trie.lookup(12345), Some(NextHop(9)));
        // Root-only lookup costs a single access.
        assert_eq!(trie.lookup_counted(12345).mem_accesses, 1);
    }

    #[test]
    fn insert_replace_remove() {
        let mut t = BinaryTrie::new();
        assert_eq!(t.insert(0x0A00_0000, 8, NextHop(1)), None);
        assert_eq!(t.insert(0x0A00_0000, 8, NextHop(2)), Some(NextHop(1)));
        assert_eq!(t.route_count(), 1);
        assert_eq!(t.lookup(0x0A05_0000), Some(NextHop(2)));
        assert_eq!(t.remove(0x0A00_0000, 8), Some(NextHop(2)));
        assert_eq!(t.remove(0x0A00_0000, 8), None);
        assert_eq!(t.lookup(0x0A05_0000), None);
        assert_eq!(t.route_count(), 0);
    }

    #[test]
    fn remove_missing_deep_prefix() {
        let mut t = BinaryTrie::new();
        t.insert(0x0A00_0000, 8, NextHop(1));
        assert_eq!(t.remove(0x0A00_0000, 16), None);
        assert_eq!(t.lookup(0x0A00_0000), Some(NextHop(1)));
    }

    #[test]
    fn access_count_is_depth_plus_one() {
        let rt = table(&[("10.1.2.0/24", 3)]);
        let trie = BinaryTrie::build(&rt);
        let c = trie.lookup_counted(0x0A01_0203);
        assert_eq!(c.next_hop, Some(NextHop(3)));
        assert_eq!(c.mem_accesses, 25); // root + 24 levels
    }

    #[test]
    fn storage_grows_with_nodes() {
        let rt = table(&[("10.0.0.0/8", 1)]);
        let trie = BinaryTrie::build(&rt);
        assert_eq!(trie.node_count(), 9); // root + 8 path nodes
        assert_eq!(trie.storage_bytes(), 9 * NODE_BYTES);
    }

    #[test]
    fn ipv6_binary_trie() {
        let mut t: GenericBinaryTrie<u128> = GenericBinaryTrie::new();
        let p32 = 0x2001_0db8u128 << 96;
        let p48 = 0x2001_0db8_0001u128 << 80;
        t.insert(p32, 32, NextHop(1));
        t.insert(p48, 48, NextHop(2));
        assert_eq!(t.lookup_generic(p48 | 5), Some(NextHop(2)));
        assert_eq!(t.lookup_generic(p32 | (2u128 << 80)), Some(NextHop(1)));
        assert_eq!(t.lookup_generic(0x3000u128 << 112), None);
    }

    #[test]
    fn dense_sibling_prefixes() {
        // Both children of a node carry routes; check bit-direction is right.
        let rt = table(&[("128.0.0.0/1", 1), ("0.0.0.0/1", 2)]);
        let trie = BinaryTrie::build(&rt);
        assert_eq!(trie.lookup(0xFFFF_FFFF), Some(NextHop(1)));
        assert_eq!(trie.lookup(0x0000_0001), Some(NextHop(2)));
    }
}
