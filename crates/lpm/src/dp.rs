//! DP trie — the *dynamic prefix trie* of Doeringer, Karjoth & Nassehi,
//! "Routing on Longest-Matching Prefixes" (ref \[8\] of the paper).
//!
//! The DP trie is a path-compressed binary trie that stores prefixes in
//! its nodes: a node exists for every stored prefix and for every branch
//! point where two stored prefixes diverge. Search walks down comparing
//! the packed path label at each node and keeps the deepest matching
//! route, which on backbone tables costs ≈16 memory accesses per lookup —
//! the figure the paper measures in §5.1 and turns into its 62-cycle FE
//! model.
//!
//! Storage follows the paper's §4 model exactly: each node is one byte of
//! index plus five 4-byte pointers (left, right, parent, key, data) —
//! [`DP_NODE_BYTES`] = 21 bytes. The full update machinery of \[8\] is
//! condensed to the standard radix insert/withdraw with node splitting and
//! pruning; no experiment in the paper exercises more.

use crate::{CountedLookup, LineSet, Lpm, BATCH_LANES};
use spal_rib::{NextHop, Prefix, RoutingTable};

/// Bytes per DP-trie node under the paper's model (§4): 1 index byte +
/// five 4-byte pointers.
pub const DP_NODE_BYTES: usize = 21;

/// Modeled bytes per next-hop data record (the "data pointer" read that
/// ends a successful lookup in \[8\]).
const NH_DATA_BYTES: usize = 4;

/// Line-accounting region tags: the node arena and the next-hop data
/// table are distinct arrays.
const REGION_NODES: u32 = 0;
const REGION_NH: u32 = 1;

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    /// Path label from the root: the node "owns" the prefix
    /// `key_bits/key_len`.
    key_bits: u32,
    key_len: u8,
    route: Option<NextHop>,
    children: [u32; 2],
    /// Kept for structural fidelity with [8] (and used by pruning).
    parent: u32,
}

impl Node {
    fn new(key_bits: u32, key_len: u8, parent: u32) -> Self {
        Node {
            key_bits,
            key_len,
            route: None,
            children: [NONE, NONE],
            parent,
        }
    }
}

/// The DP (dynamic prefix) trie.
#[derive(Debug, Clone)]
pub struct DpTrie {
    nodes: Vec<Node>,
    /// Recycled node slots (from withdrawals).
    free: Vec<u32>,
    routes: usize,
}

impl Default for DpTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl DpTrie {
    /// An empty trie (root node only).
    pub fn new() -> Self {
        DpTrie {
            nodes: vec![Node::new(0, 0, NONE)],
            free: Vec::new(),
            routes: 0,
        }
    }

    /// Build from a routing table.
    pub fn build(table: &RoutingTable) -> Self {
        let mut t = Self::new();
        for e in table {
            t.insert(e.prefix, e.next_hop);
        }
        t
    }

    /// Number of live nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Number of stored routes.
    pub fn route_count(&self) -> usize {
        self.routes
    }

    fn alloc(&mut self, node: Node) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(node);
            idx
        }
    }

    /// Leading bits on which `prefix` and the node label `(bits, len)`
    /// agree, capped at both lengths.
    fn common_with(prefix: Prefix, bits: u32, len: u8) -> u8 {
        let raw = (prefix.bits() ^ bits).leading_zeros() as u8;
        raw.min(prefix.len()).min(len)
    }

    /// Insert (or replace) a route. Returns the previous next hop if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, next_hop: NextHop) -> Option<NextHop> {
        let mut cur = 0u32;
        loop {
            let (cur_len, cur_bits) = {
                let n = &self.nodes[cur as usize];
                (n.key_len, n.key_bits)
            };
            debug_assert!(
                Self::common_with(prefix, cur_bits, cur_len) == cur_len.min(prefix.len())
            );
            if cur_len == prefix.len() {
                // Node label equals the prefix: store here.
                let prev = self.nodes[cur as usize].route.replace(next_hop);
                if prev.is_none() {
                    self.routes += 1;
                }
                return Some(prev).flatten();
            }
            // prefix extends below this node; pick the branch bit.
            let b = prefix.bits().bit(cur_len) as usize;
            let child = self.nodes[cur as usize].children[b];
            if child == NONE {
                let idx = self.alloc(Node::new(prefix.bits(), prefix.len(), cur));
                self.nodes[idx as usize].route = Some(next_hop);
                self.nodes[cur as usize].children[b] = idx;
                self.routes += 1;
                return None;
            }
            let (child_bits, child_len) = {
                let n = &self.nodes[child as usize];
                (n.key_bits, n.key_len)
            };
            let common = Self::common_with(prefix, child_bits, child_len);
            if common == child_len {
                // Child label is a prefix of `prefix`: descend.
                cur = child;
                continue;
            }
            // Split the edge at `common`.
            let mid_bits = child_bits & mask(common);
            let mid = self.alloc(Node::new(mid_bits, common, cur));
            self.nodes[cur as usize].children[b] = mid;
            let child_bit = child_bits.bit(common) as usize;
            self.nodes[mid as usize].children[child_bit] = child;
            self.nodes[child as usize].parent = mid;
            if prefix.len() == common {
                self.nodes[mid as usize].route = Some(next_hop);
                self.routes += 1;
            } else {
                // The prefix diverges from the child at `common`.
                let leaf = self.alloc(Node::new(prefix.bits(), prefix.len(), mid));
                self.nodes[leaf as usize].route = Some(next_hop);
                debug_assert_ne!(prefix.bits().bit(common) as usize, child_bit);
                self.nodes[mid as usize].children[prefix.bits().bit(common) as usize] = leaf;
                self.routes += 1;
            }
            return None;
        }
    }

    /// Withdraw the route for `prefix`, returning its next hop if it was
    /// present. Childless routeless nodes are pruned and their slots
    /// recycled; single-child pass-through nodes are merged away.
    pub fn remove(&mut self, prefix: Prefix) -> Option<NextHop> {
        // Find the node whose label equals the prefix.
        let mut cur = 0u32;
        loop {
            let n = &self.nodes[cur as usize];
            if n.key_len == prefix.len() && n.key_bits == prefix.bits() {
                break;
            }
            if n.key_len >= prefix.len() {
                return None;
            }
            let child = n.children[prefix.bits().bit(n.key_len) as usize];
            if child == NONE {
                return None;
            }
            let c = &self.nodes[child as usize];
            if Self::common_with(prefix, c.key_bits, c.key_len) < c.key_len.min(prefix.len()) {
                return None;
            }
            if c.key_len > prefix.len() {
                return None;
            }
            cur = child;
        }
        let prev = self.nodes[cur as usize].route.take();
        if prev.is_some() {
            self.routes -= 1;
            self.prune(cur);
        }
        prev
    }

    /// Remove structurally useless nodes starting at `idx` and walking up.
    fn prune(&mut self, mut idx: u32) {
        while idx != 0 {
            let (parent, child_count, first_child, has_route) = {
                let n = &self.nodes[idx as usize];
                let cc = n.children.iter().filter(|&&c| c != NONE).count();
                let fc = n.children.iter().copied().find(|&c| c != NONE);
                (n.parent, cc, fc, n.route.is_some())
            };
            if has_route {
                return;
            }
            match (child_count, first_child) {
                (0, _) => {
                    // Unlink from parent and recycle.
                    let p = &mut self.nodes[parent as usize];
                    for c in &mut p.children {
                        if *c == idx {
                            *c = NONE;
                        }
                    }
                    self.free.push(idx);
                    idx = parent;
                }
                (1, Some(only)) => {
                    // Merge: the single child replaces this node.
                    let p = &mut self.nodes[parent as usize];
                    for c in &mut p.children {
                        if *c == idx {
                            *c = only;
                        }
                    }
                    self.nodes[only as usize].parent = parent;
                    self.free.push(idx);
                    return;
                }
                _ => return,
            }
        }
    }
}

#[inline]
fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

/// MSB-first bit accessor matching `spal_rib::bits::AddressBits`.
trait BitAt {
    fn bit(self, i: u8) -> bool;
}
impl BitAt for u32 {
    #[inline]
    fn bit(self, i: u8) -> bool {
        (self >> (31 - i)) & 1 == 1
    }
}

impl DpTrie {
    /// One interleaved group of [`BATCH_LANES`] lookups: each round runs
    /// exactly one iteration of the scalar descent (route check, branch
    /// bit, child read, label compare) on every still-active lane, so
    /// the four path-compressed chains' node reads overlap. Per-lane
    /// logic mirrors [`DpTrie::lookup_counted`] step for step.
    fn lookup_quad(&self, addrs: [u32; BATCH_LANES]) -> [CountedLookup; BATCH_LANES] {
        let nodes = &self.nodes;
        let mut cur = [0usize; BATCH_LANES];
        let mut best: [Option<NextHop>; BATCH_LANES] = [None; BATCH_LANES];
        let mut acc = [1u32; BATCH_LANES]; // root node read
        let mut active = [true; BATCH_LANES];
        let mut lines: [LineSet; BATCH_LANES] = std::array::from_fn(|_| LineSet::new());
        for l in &mut lines {
            l.touch(REGION_NODES, 0, DP_NODE_BYTES);
        }
        loop {
            let mut any = false;
            for l in 0..BATCH_LANES {
                if !active[l] {
                    continue;
                }
                let n = &nodes[cur[l]];
                if let Some(nh) = n.route {
                    best[l] = Some(nh);
                }
                if n.key_len >= 32 {
                    active[l] = false;
                    continue;
                }
                let child = n.children[addrs[l].bit(n.key_len) as usize];
                if child == NONE {
                    active[l] = false;
                    continue;
                }
                let c = &nodes[child as usize];
                acc[l] += 1;
                lines[l].touch(REGION_NODES, child as usize * DP_NODE_BYTES, DP_NODE_BYTES);
                if addrs[l] & mask(c.key_len) != c.key_bits {
                    active[l] = false;
                    continue;
                }
                cur[l] = child as usize;
                any = true;
            }
            if !any {
                break;
            }
        }
        std::array::from_fn(|l| {
            if let Some(nh) = best[l] {
                lines[l].touch(REGION_NH, nh.0 as usize * NH_DATA_BYTES, NH_DATA_BYTES);
            }
            CountedLookup {
                next_hop: best[l],
                // Next-hop (data pointer) read on a match, as in the
                // scalar path.
                mem_accesses: acc[l] + best[l].is_some() as u32,
                lines_touched: lines[l].count(),
            }
        })
    }
}

impl Lpm for DpTrie {
    fn lookup_counted(&self, addr: u32) -> CountedLookup {
        let mut cur = 0u32;
        let mut best: Option<NextHop> = None;
        let mut accesses = 1u32; // root node read
        let mut lines = LineSet::new();
        lines.touch(REGION_NODES, 0, DP_NODE_BYTES);
        loop {
            let n = &self.nodes[cur as usize];
            // `cur`'s label is guaranteed to match `addr` (checked before
            // descending), so any route here is a candidate.
            if let Some(nh) = n.route {
                best = Some(nh);
            }
            if n.key_len >= 32 {
                break;
            }
            let child = n.children[addr.bit(n.key_len) as usize];
            if child == NONE {
                break;
            }
            // One access reads the child node — its label (index/key) and
            // pointers come in the same 21-byte read.
            let c = &self.nodes[child as usize];
            accesses += 1;
            lines.touch(REGION_NODES, child as usize * DP_NODE_BYTES, DP_NODE_BYTES);
            if addr & mask(c.key_len) != c.key_bits {
                // Path compression skipped over a divergence; the deepest
                // match seen so far is the answer ([8]'s backtrack ends
                // here because ancestors were already inspected on the
                // way down).
                break;
            }
            cur = child;
        }
        if let Some(nh) = best {
            accesses += 1; // next-hop (data pointer) read
            lines.touch(REGION_NH, nh.0 as usize * NH_DATA_BYTES, NH_DATA_BYTES);
        }
        CountedLookup {
            next_hop: best,
            mem_accesses: accesses,
            lines_touched: lines.count(),
        }
    }

    fn lookup_batch(&self, addrs: &[u32], out: &mut [CountedLookup]) {
        crate::run_quads(self, addrs, out, DpTrie::lookup_quad);
    }

    /// The DP trie is natively incremental (\[8\]'s whole point): each
    /// change replays through [`DpTrie::insert`]/[`DpTrie::remove`].
    fn apply_delta(
        &mut self,
        changed: &[Prefix],
        rib: &spal_rib::RoutingTable,
    ) -> Option<crate::DeltaStats> {
        let before = self.node_count();
        for &p in changed {
            match rib.get(p) {
                Some(nh) => {
                    self.insert(p, nh);
                }
                None => {
                    self.remove(p);
                }
            }
        }
        Some(crate::DeltaStats {
            prefixes_applied: changed.len(),
            bytes_touched: (changed.len() + self.node_count().abs_diff(before)) * DP_NODE_BYTES,
        })
    }

    fn storage_bytes(&self) -> usize {
        self.node_count() * DP_NODE_BYTES
    }

    fn name(&self) -> &'static str {
        "DP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::{synth, RouteEntry};

    fn table(prefixes: &[(&str, u16)]) -> RoutingTable {
        RoutingTable::from_entries(prefixes.iter().map(|&(s, nh)| RouteEntry {
            prefix: s.parse().unwrap(),
            next_hop: NextHop(nh),
        }))
    }

    fn assert_agrees_with_oracle(rt: &RoutingTable, addrs: impl Iterator<Item = u32>) {
        let trie = DpTrie::build(rt);
        for addr in addrs {
            assert_eq!(
                trie.lookup(addr),
                rt.longest_match(addr).map(|e| e.next_hop),
                "addr {addr:#010x}"
            );
        }
    }

    #[test]
    fn empty() {
        let t = DpTrie::new();
        assert_eq!(t.lookup(0xDEAD_BEEF), None);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn nested_prefixes() {
        let rt = table(&[
            ("0.0.0.0/0", 0),
            ("10.0.0.0/8", 1),
            ("10.1.0.0/16", 2),
            ("10.1.2.0/24", 3),
            ("10.1.2.3/32", 4),
        ]);
        assert_agrees_with_oracle(
            &rt,
            [
                0x0A01_0203u32,
                0x0A01_0204,
                0x0A01_0300,
                0x0A02_0000,
                0x0B00_0000,
            ]
            .into_iter(),
        );
    }

    #[test]
    fn split_edge_cases() {
        // Force edge splits: siblings diverging mid-label, and a prefix
        // that lands exactly on a split point.
        let rt = table(&[
            ("10.1.2.0/24", 1),
            ("10.1.3.0/24", 2), // diverges from the first at bit 23
            ("10.1.0.0/16", 3), // lands on an existing split point
            ("10.128.0.0/9", 4),
        ]);
        assert_agrees_with_oracle(
            &rt,
            [
                0x0A01_0200u32,
                0x0A01_0300,
                0x0A01_0400,
                0x0A80_0000,
                0x0A00_0000,
            ]
            .into_iter(),
        );
    }

    #[test]
    fn node_count_scales_like_prefix_count() {
        let rt = synth::small(11);
        let trie = DpTrie::build(&rt);
        assert_eq!(trie.route_count(), rt.len());
        // Path compression: between n and 2n nodes for n prefixes.
        assert!(trie.node_count() >= rt.len());
        assert!(trie.node_count() <= 2 * rt.len() + 1);
        assert_eq!(trie.storage_bytes(), trie.node_count() * DP_NODE_BYTES);
    }

    #[test]
    fn agrees_with_oracle_on_synthetic_table() {
        use rand::{Rng, SeedableRng};
        let rt = synth::small(13);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        // Mix of random addresses and addresses inside known prefixes.
        let mut addrs: Vec<u32> = (0..300).map(|_| rng.gen()).collect();
        for e in rt.entries().iter().step_by(7) {
            addrs.push(e.prefix.first_addr());
            addrs.push(e.prefix.last_addr());
        }
        assert_agrees_with_oracle(&rt, addrs.into_iter());
    }

    #[test]
    fn insert_replace() {
        let mut t = DpTrie::new();
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(t.insert(p, NextHop(1)), None);
        assert_eq!(t.insert(p, NextHop(2)), Some(NextHop(1)));
        assert_eq!(t.route_count(), 1);
        assert_eq!(t.lookup(0x0A00_0001), Some(NextHop(2)));
    }

    #[test]
    fn remove_and_prune() {
        let mut t = DpTrie::new();
        let p8: Prefix = "10.0.0.0/8".parse().unwrap();
        let p16: Prefix = "10.1.0.0/16".parse().unwrap();
        let p24: Prefix = "10.1.2.0/24".parse().unwrap();
        t.insert(p8, NextHop(1));
        t.insert(p16, NextHop(2));
        t.insert(p24, NextHop(3));
        assert_eq!(t.remove(p16), Some(NextHop(2)));
        assert_eq!(t.lookup(0x0A01_0203), Some(NextHop(3)));
        assert_eq!(t.lookup(0x0A01_0003), Some(NextHop(1)));
        assert_eq!(t.remove(p16), None);
        assert_eq!(t.remove("10.1.0.0/17".parse().unwrap()), None);
        assert_eq!(t.remove(p24), Some(NextHop(3)));
        assert_eq!(t.lookup(0x0A01_0203), Some(NextHop(1)));
        assert_eq!(t.remove(p8), Some(NextHop(1)));
        assert_eq!(t.lookup(0x0A01_0203), None);
        // Everything pruned back to the root.
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn remove_reuses_slots() {
        let mut t = DpTrie::new();
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        t.insert(p, NextHop(1));
        let count = t.node_count();
        t.remove(p);
        t.insert(p, NextHop(2));
        assert_eq!(t.node_count(), count);
        assert_eq!(t.lookup(0x0A00_0000), Some(NextHop(2)));
    }

    #[test]
    fn default_route() {
        let mut t = DpTrie::new();
        t.insert(Prefix::DEFAULT, NextHop(7));
        assert_eq!(t.lookup(0), Some(NextHop(7)));
        assert_eq!(t.lookup(u32::MAX), Some(NextHop(7)));
        assert_eq!(t.remove(Prefix::DEFAULT), Some(NextHop(7)));
        assert_eq!(t.lookup(0), None);
    }

    #[test]
    fn host_routes() {
        let rt = table(&[("1.2.3.4/32", 1), ("1.2.3.5/32", 2), ("1.2.3.4/31", 3)]);
        assert_agrees_with_oracle(&rt, [0x0102_0304u32, 0x0102_0305, 0x0102_0306].into_iter());
    }

    #[test]
    fn access_count_reasonable() {
        let rt = synth::small(21);
        let trie = DpTrie::build(&rt);
        let c = trie.lookup_counted(rt.entries()[500].prefix.first_addr());
        // Path-compressed depth: strictly fewer accesses than the 25-33 a
        // binary trie would need, but more than one.
        assert!(
            c.mem_accesses > 1 && c.mem_accesses < 33,
            "{}",
            c.mem_accesses
        );
    }
}
