//! SHIP-class two-level IPv6 LPM — after Abdelsalam, Liu & Trajković /
//! the SHIP paper ("A Scalable High-performance IPv6 Lookup Algorithm
//! that Exploits Prefix Characteristics"), giving IPv6 a real engine
//! instead of the 128-level binary reference trie.
//!
//! SHIP's two ideas, as they reduce to on this repo's DFZ-2026 tables:
//!
//! * **Address-block binning** — a direct-indexed 2^16-entry array on
//!   the top 16 address bits. One read resolves the bin: the default
//!   next hop inherited from the best covering route of length ≤ 16,
//!   plus the root of that bin's trie over the remaining 112 bits.
//!   Real v6 tables concentrate in a few thousand /16 blocks (RIR
//!   super-blocks carve 2000::/3), so bins are small and shallow.
//! * **Prefix-characteristic grouping into hybrid tries** — inside a
//!   bin, each node picks its shape from the local prefix
//!   characteristics: *dense* regions (many diverging site routes, the
//!   /48 band under a popular /32) get a 4-bit-stride poptrie-style
//!   node with `u16` child/internal bitmaps and popcount-ranked child
//!   and route arrays; *sparse* regions (a lone allocation chain) get a
//!   path-compressed node that skips up to 64 bits in one read. The
//!   dominant v6 pattern — long shared allocation prefixes, then a
//!   burst of divergence at /48 — thus costs a few reads instead of the
//!   binary trie's one-read-per-bit 40+.
//!
//! Storage models (bytes per record, used for `storage_bytes` and the
//! cache-line accounting): bin entry 8 B (root ref + default), dense
//! node 12 B (two `u16` bitmaps + child/route bases), sparse node 20 B
//! (skip bits + length + in-node route + two child refs), child ref
//! 4 B, internal route 2 B.
//!
//! `apply_delta` patches at **bin granularity**: a changed prefix of
//! length > 16 names exactly one bin (its top 16 bits are concrete),
//! which is rebuilt from the post-update table's sorted range — O(bin)
//! work, not O(table). Changes of length ≤ 16 repaint the covered
//! bins' defaults. Orphaned arena space is tracked, and when garbage
//! exceeds [`MAX_GARBAGE_FRACTION`] the patch declines (`None`) so the
//! caller rebuilds — the explicit rebuild-fallback contract of
//! [`crate::Lpm::apply_delta`].

use crate::{prefetch_slice, CountedLookup, DeltaStats, LineSet, Lpm6, BATCH_LANES};
use spal_rib::v6::{Prefix6, RouteEntry6, RoutingTable6};
use spal_rib::NextHop;

/// Width of the address-block index: bins are the 2^16 /16 blocks.
const BIN_BITS: u8 = 16;
/// Number of bins.
const NUM_BINS: usize = 1 << BIN_BITS;

/// Sentinel for "no node".
const NONE: u32 = u32::MAX;
/// Node-reference tag: set = dense arena, clear = sparse arena.
const DENSE_FLAG: u32 = 1 << 31;
/// Low bits of a node reference: the arena index.
const REF_MASK: u32 = DENSE_FLAG - 1;

/// Dense node stride in bits (16-way branch, 15-slot internal bitmap).
const STRIDE: u8 = 4;

/// Characteristics thresholds: a region is *dense* when at least this
/// many routes diverge immediately (no common prefix to skip) across at
/// least [`DENSE_MIN_NIBBLES`] distinct next-nibble values.
const DENSE_MIN_ROUTES: usize = 8;
const DENSE_MIN_NIBBLES: usize = 4;

/// Maximum bits one sparse node can skip (its skip field is a `u64`).
const MAX_SKIP: u8 = 64;

/// Decline threshold: once more than a third of the arenas is orphaned
/// by bin rebuilds, patching has drifted too far from the fresh-build
/// storage model — decline and let the caller rebuild.
const MAX_GARBAGE_FRACTION: f64 = 1.0 / 3.0;

// Modeled record sizes.
const BIN_BYTES: usize = 8;
const DENSE_BYTES: usize = 12;
const SPARSE_BYTES: usize = 20;
const REF_BYTES: usize = 4;
const ROUTE_BYTES: usize = 2;

// Line-accounting regions (see [`LineSet`]).
const REGION_BINS: u32 = 0;
const REGION_DENSE: u32 = 1;
const REGION_SPARSE: u32 = 2;
const REGION_REFS: u32 = 3;
const REGION_ROUTES: u32 = 4;

/// One entry of the level-1 address-block array.
#[derive(Debug, Clone, Copy)]
struct Bin {
    /// Root of the bin's trie over address bits 16.., or [`NONE`].
    root: u32,
    /// Next hop + 1 of the best covering route with length ≤ 16
    /// (0 = none).
    default: u16,
}

const EMPTY_BIN: Bin = Bin {
    root: NONE,
    default: 0,
};

/// A 4-bit-stride dense node. `ext` has bit `v` set when nibble `v` has
/// a child; `int` is the 15-slot binary-heap bitmap of internal
/// prefixes (relative lengths 0–3). Children and internal routes live
/// at `child_base` in the ref array and `route_base` in the route
/// array, popcount-ranked.
#[derive(Debug, Clone, Copy)]
struct Dense {
    ext: u16,
    int: u16,
    child_base: u32,
    route_base: u32,
}

/// A path-compressed sparse node: consume `skip_len` bits that must
/// equal `skip`, pick up the in-node route ending exactly there
/// (`route` = next hop + 1, 0 = none), then branch one bit.
#[derive(Debug, Clone, Copy)]
struct Sparse {
    skip: u64,
    skip_len: u8,
    route: u16,
    children: [u32; 2],
}

/// Internal build/rebuild representation of one route.
#[derive(Debug, Clone, Copy)]
struct BuildRoute {
    bits: u128,
    len: u8,
    nh: u16,
}

/// The two-level SHIP engine.
#[derive(Debug, Clone)]
pub struct Ship6 {
    bins: Vec<Bin>,
    dense: Vec<Dense>,
    sparse: Vec<Sparse>,
    refs: Vec<u32>,
    routes: Vec<u16>,
    /// Modeled bytes currently reachable from each bin's root, so bin
    /// rebuilds can account what they orphan.
    bin_bytes: Vec<u32>,
    /// Modeled arena bytes orphaned by bin rebuilds.
    garbage_bytes: usize,
    route_count: usize,
}

/// Bits `start .. start+len` of `addr`, right-aligned. `len` ≤ 64 and
/// `start + len` ≤ 128; `len` = 0 yields 0.
#[inline]
fn extract_bits(addr: u128, start: u8, len: u8) -> u64 {
    if len == 0 {
        return 0;
    }
    ((addr >> (128 - start as u32 - len as u32)) & ((1u128 << len) - 1)) as u64
}

impl Ship6 {
    /// Build from a routing table.
    pub fn build(table: &RoutingTable6) -> Self {
        let mut ship = Ship6 {
            bins: vec![EMPTY_BIN; NUM_BINS],
            dense: Vec::new(),
            sparse: Vec::new(),
            refs: Vec::new(),
            routes: Vec::new(),
            bin_bytes: vec![0; NUM_BINS],
            garbage_bytes: 0,
            route_count: table.len(),
        };

        // Level 1: paint bin defaults from the covering short routes,
        // shortest first so more-specifics overwrite.
        let mut shorts: Vec<RouteEntry6> = table
            .entries()
            .iter()
            .filter(|e| e.prefix.len() <= BIN_BITS)
            .copied()
            .collect();
        shorts.sort_by_key(|e| e.prefix.len());
        for e in &shorts {
            let base = (e.prefix.bits() >> (128 - BIN_BITS)) as usize;
            let count = 1usize << (BIN_BITS - e.prefix.len());
            for bin in &mut ship.bins[base..base + count] {
                bin.default = e.next_hop.0 + 1;
            }
        }

        // Level 2: one hybrid trie per bin over the deep routes. The
        // table is sorted by (bits, len), so each bin's routes are a
        // contiguous run.
        let deep: Vec<BuildRoute> = table
            .entries()
            .iter()
            .filter(|e| e.prefix.len() > BIN_BITS)
            .map(|e| BuildRoute {
                bits: e.prefix.bits(),
                len: e.prefix.len(),
                nh: e.next_hop.0,
            })
            .collect();
        let mut i = 0;
        while i < deep.len() {
            let bin = (deep[i].bits >> (128 - BIN_BITS)) as usize;
            let mut j = i + 1;
            while j < deep.len() && (deep[j].bits >> (128 - BIN_BITS)) as usize == bin {
                j += 1;
            }
            let before = ship.arena_bytes();
            ship.bins[bin].root = ship.build_node(deep[i..j].to_vec(), BIN_BITS);
            ship.bin_bytes[bin] = (ship.arena_bytes() - before) as u32;
            i = j;
        }
        ship
    }

    /// Modeled bytes in the growable arenas (excludes the fixed bins).
    fn arena_bytes(&self) -> usize {
        self.dense.len() * DENSE_BYTES
            + self.sparse.len() * SPARSE_BYTES
            + self.refs.len() * REF_BYTES
            + self.routes.len() * ROUTE_BYTES
    }

    /// Number of stored routes.
    pub fn route_count(&self) -> usize {
        self.route_count
    }

    /// Node counts `(dense, sparse)` — exposed for the stress tests'
    /// storage records.
    pub fn node_counts(&self) -> (usize, usize) {
        (self.dense.len(), self.sparse.len())
    }

    /// Build the hybrid-trie node for `routes` (all of length ≥ `depth`
    /// and sharing address bits 0..`depth`), returning its tagged ref.
    fn build_node(&mut self, routes: Vec<BuildRoute>, depth: u8) -> u32 {
        debug_assert!(!routes.is_empty());
        debug_assert!(routes.iter().all(|r| r.len >= depth));

        // The local prefix characteristics: how far every route agrees
        // past `depth` (bounded by the shortest route, which must end
        // on a node boundary), and how widely they branch if they
        // disagree immediately.
        let min_len = routes.iter().map(|r| r.len).min().expect("non-empty");
        let max_skip = (min_len - depth).min(MAX_SKIP);
        let lcp = if routes.len() == 1 {
            max_skip
        } else {
            let first = routes.first().expect("non-empty").bits;
            let last = routes.last().expect("non-empty").bits;
            let agree = (first ^ last).leading_zeros() as u8; // 128 if equal
            agree.saturating_sub(depth).min(max_skip)
        };

        if lcp == 0 && depth + STRIDE <= 128 && routes.len() >= DENSE_MIN_ROUTES {
            // Sorted input ⇒ deep routes' nibbles are non-decreasing.
            let mut nibbles = 0usize;
            let mut prev: Option<u64> = None;
            for r in routes.iter().filter(|r| r.len >= depth + STRIDE) {
                let nib = extract_bits(r.bits, depth, STRIDE);
                if prev != Some(nib) {
                    nibbles += 1;
                    prev = Some(nib);
                }
            }
            if nibbles >= DENSE_MIN_NIBBLES {
                return self.build_dense(routes, depth);
            }
        }
        self.build_sparse(routes, depth, lcp)
    }

    fn build_dense(&mut self, routes: Vec<BuildRoute>, depth: u8) -> u32 {
        let mut int: u16 = 0;
        let mut int_routes: Vec<(u8, u16)> = Vec::new();
        for r in routes.iter().filter(|r| r.len < depth + STRIDE) {
            let l = r.len - depth;
            let pos = (1u8 << l) - 1 + extract_bits(r.bits, depth, l) as u8;
            int |= 1 << pos;
            int_routes.push((pos, r.nh));
        }
        int_routes.sort_by_key(|&(pos, _)| pos);

        let mut ext: u16 = 0;
        let mut child_refs: Vec<u32> = Vec::new();
        let mut i = 0;
        let deep: Vec<BuildRoute> = routes
            .into_iter()
            .filter(|r| r.len >= depth + STRIDE)
            .collect();
        while i < deep.len() {
            let nib = extract_bits(deep[i].bits, depth, STRIDE);
            let mut j = i + 1;
            while j < deep.len() && extract_bits(deep[j].bits, depth, STRIDE) == nib {
                j += 1;
            }
            ext |= 1 << nib;
            let child = self.build_node(deep[i..j].to_vec(), depth + STRIDE);
            child_refs.push(child);
            i = j;
        }

        let route_base = self.routes.len() as u32;
        self.routes.extend(int_routes.iter().map(|&(_, nh)| nh));
        let child_base = self.refs.len() as u32;
        self.refs.extend_from_slice(&child_refs);
        let idx = self.dense.len() as u32;
        self.dense.push(Dense {
            ext,
            int,
            child_base,
            route_base,
        });
        idx | DENSE_FLAG
    }

    fn build_sparse(&mut self, routes: Vec<BuildRoute>, depth: u8, skip_len: u8) -> u32 {
        let d2 = depth + skip_len;
        let skip = extract_bits(routes[0].bits, depth, skip_len);
        let route = routes.iter().find(|r| r.len == d2).map_or(0, |r| r.nh + 1);
        let mut children = [NONE, NONE];
        if d2 < 128 {
            let rest: Vec<BuildRoute> = routes.into_iter().filter(|r| r.len > d2).collect();
            let split = rest.partition_point(|r| extract_bits(r.bits, d2, 1) == 0);
            if split > 0 {
                children[0] = self.build_node(rest[..split].to_vec(), d2 + 1);
            }
            if split < rest.len() {
                children[1] = self.build_node(rest[split..].to_vec(), d2 + 1);
            }
        }
        let idx = self.sparse.len() as u32;
        self.sparse.push(Sparse {
            skip,
            skip_len,
            route,
            children,
        });
        idx
    }

    /// Recompute one bin's default from the post-update table.
    fn repaint_default(&mut self, bin: usize, rib: &RoutingTable6) {
        let addr = (bin as u128) << (128 - BIN_BITS);
        self.bins[bin].default = rib
            .best_cover(addr, BIN_BITS)
            .map_or(0, |e| e.next_hop.0 + 1);
    }

    /// Rebuild one bin's trie from the post-update table, orphaning the
    /// old nodes. Returns the modeled bytes appended.
    fn rebuild_bin(&mut self, bin: usize, rib: &RoutingTable6) -> usize {
        let lo = (bin as u128) << (128 - BIN_BITS);
        let hi = lo | ((1u128 << (128 - BIN_BITS)) - 1);
        let routes: Vec<BuildRoute> = rib
            .range(lo, hi)
            .iter()
            .filter(|e| e.prefix.len() > BIN_BITS)
            .map(|e| BuildRoute {
                bits: e.prefix.bits(),
                len: e.prefix.len(),
                nh: e.next_hop.0,
            })
            .collect();
        self.garbage_bytes += self.bin_bytes[bin] as usize;
        let before = self.arena_bytes();
        self.bins[bin].root = if routes.is_empty() {
            NONE
        } else {
            self.build_node(routes, BIN_BITS)
        };
        let appended = self.arena_bytes() - before;
        self.bin_bytes[bin] = appended as u32;
        appended
    }
}

impl Lpm6 for Ship6 {
    fn lookup_counted(&self, addr: u128) -> CountedLookup {
        let mut lines = LineSet::new();
        let bin_idx = (addr >> (128 - BIN_BITS)) as usize;
        let bin = self.bins[bin_idx];
        let mut accesses = 1u32;
        lines.touch(REGION_BINS, bin_idx * BIN_BYTES, BIN_BYTES);
        let mut best = bin.default;
        let mut node_ref = bin.root;
        let mut depth = BIN_BITS;
        while node_ref != NONE {
            if node_ref & DENSE_FLAG != 0 {
                let idx = (node_ref & REF_MASK) as usize;
                let node = self.dense[idx];
                accesses += 1;
                lines.touch(REGION_DENSE, idx * DENSE_BYTES, DENSE_BYTES);
                let nib = extract_bits(addr, depth, STRIDE) as u16;
                // Longest internal match: relative lengths 3 → 0.
                for l in (0..STRIDE).rev() {
                    let pos = (1u16 << l) - 1 + (nib >> (STRIDE - l));
                    if node.int & (1 << pos) != 0 {
                        let rank = (node.int & ((1 << pos) - 1)).count_ones();
                        let ri = node.route_base as usize + rank as usize;
                        best = self.routes[ri] + 1;
                        accesses += 1;
                        lines.touch(REGION_ROUTES, ri * ROUTE_BYTES, ROUTE_BYTES);
                        break;
                    }
                }
                if node.ext & (1 << nib) != 0 {
                    let rank = (node.ext & ((1 << nib) - 1)).count_ones();
                    let ci = node.child_base as usize + rank as usize;
                    node_ref = self.refs[ci];
                    accesses += 1;
                    lines.touch(REGION_REFS, ci * REF_BYTES, REF_BYTES);
                    depth += STRIDE;
                } else {
                    break;
                }
            } else {
                let idx = node_ref as usize;
                let node = self.sparse[idx];
                accesses += 1;
                lines.touch(REGION_SPARSE, idx * SPARSE_BYTES, SPARSE_BYTES);
                if node.skip_len > 0 && extract_bits(addr, depth, node.skip_len) != node.skip {
                    break;
                }
                depth += node.skip_len;
                if node.route != 0 {
                    best = node.route;
                }
                if depth >= 128 {
                    break;
                }
                node_ref = node.children[extract_bits(addr, depth, 1) as usize];
                depth += 1;
            }
        }
        CountedLookup {
            next_hop: if best == 0 {
                None
            } else {
                Some(NextHop(best - 1))
            },
            mem_accesses: accesses,
            lines_touched: lines.count(),
        }
    }

    /// Four-lane interleaved walk, VPP-style: every round advances each
    /// still-active lane one node, so the lanes' dependent loads
    /// overlap. Per-lane steps mirror the scalar path exactly (same
    /// accesses, same lines), pinned by the `ship_equiv` suite.
    fn lookup_batch(&self, addrs: &[u128], out: &mut [CountedLookup]) {
        assert_eq!(
            addrs.len(),
            out.len(),
            "lookup_batch: addrs and out must have equal lengths"
        );
        let mut i = 0;
        while i + BATCH_LANES <= addrs.len() {
            let group = [addrs[i], addrs[i + 1], addrs[i + 2], addrs[i + 3]];
            out[i..i + BATCH_LANES].copy_from_slice(&self.lookup_quad(group));
            i += BATCH_LANES;
        }
        for k in i..addrs.len() {
            out[k] = self.lookup_counted(addrs[k]);
        }
    }

    fn apply_delta(&mut self, changed: &[Prefix6], rib: &RoutingTable6) -> Option<DeltaStats> {
        if changed.is_empty() {
            self.route_count = rib.len();
            return Some(DeltaStats {
                prefixes_applied: 0,
                bytes_touched: 0,
            });
        }
        // A deep prefix names exactly one bin (its top 16 bits are
        // concrete); a short one repaints the defaults of every bin it
        // covers.
        let mut dirty_bins: Vec<usize> = Vec::new();
        let mut dirty_defaults: Vec<usize> = Vec::new();
        for p in changed {
            if p.len() > BIN_BITS {
                dirty_bins.push((p.bits() >> (128 - BIN_BITS)) as usize);
            } else {
                let base = (p.bits() >> (128 - BIN_BITS)) as usize;
                let count = 1usize << (BIN_BITS - p.len());
                dirty_defaults.extend(base..base + count);
            }
        }
        dirty_bins.sort_unstable();
        dirty_bins.dedup();
        dirty_defaults.sort_unstable();
        dirty_defaults.dedup();

        let mut bytes = 0usize;
        for &bin in &dirty_defaults {
            self.repaint_default(bin, rib);
            bytes += BIN_BYTES;
        }
        for &bin in &dirty_bins {
            bytes += self.rebuild_bin(bin, rib) + BIN_BYTES;
        }
        self.route_count = rib.len();

        // Explicit rebuild-fallback: too much orphaned arena means the
        // patched structure has drifted from the fresh-build model.
        let total = self.arena_bytes();
        if total > 0 && self.garbage_bytes as f64 > total as f64 * MAX_GARBAGE_FRACTION {
            return None;
        }
        Some(DeltaStats {
            prefixes_applied: changed.len(),
            bytes_touched: bytes,
        })
    }

    fn storage_bytes(&self) -> usize {
        self.bins.len() * BIN_BYTES + self.arena_bytes()
    }

    fn name(&self) -> &'static str {
        "SHIP"
    }
}

/// Per-lane walk state for the interleaved batch path.
#[derive(Clone, Copy)]
struct Lane {
    node_ref: u32,
    depth: u8,
    best: u16,
    acc: u32,
    active: bool,
}

impl Ship6 {
    fn lookup_quad(&self, addrs: [u128; BATCH_LANES]) -> [CountedLookup; BATCH_LANES] {
        let mut lanes = [Lane {
            node_ref: NONE,
            depth: BIN_BITS,
            best: 0,
            acc: 1,
            active: true,
        }; BATCH_LANES];
        let mut lines: [LineSet; BATCH_LANES] = std::array::from_fn(|_| LineSet::new());
        for l in 0..BATCH_LANES {
            let bin_idx = (addrs[l] >> (128 - BIN_BITS)) as usize;
            let bin = self.bins[bin_idx];
            lines[l].touch(REGION_BINS, bin_idx * BIN_BYTES, BIN_BYTES);
            lanes[l].best = bin.default;
            lanes[l].node_ref = bin.root;
            lanes[l].active = bin.root != NONE;
            if lanes[l].active {
                let r = bin.root;
                if r & DENSE_FLAG != 0 {
                    prefetch_slice(&self.dense, (r & REF_MASK) as usize);
                } else {
                    prefetch_slice(&self.sparse, r as usize);
                }
            }
        }
        loop {
            let mut any = false;
            for l in 0..BATCH_LANES {
                if !lanes[l].active {
                    continue;
                }
                any = true;
                let lane = &mut lanes[l];
                let addr = addrs[l];
                if lane.node_ref & DENSE_FLAG != 0 {
                    let idx = (lane.node_ref & REF_MASK) as usize;
                    let node = self.dense[idx];
                    lane.acc += 1;
                    lines[l].touch(REGION_DENSE, idx * DENSE_BYTES, DENSE_BYTES);
                    let nib = extract_bits(addr, lane.depth, STRIDE) as u16;
                    for rl in (0..STRIDE).rev() {
                        let pos = (1u16 << rl) - 1 + (nib >> (STRIDE - rl));
                        if node.int & (1 << pos) != 0 {
                            let rank = (node.int & ((1 << pos) - 1)).count_ones();
                            let ri = node.route_base as usize + rank as usize;
                            lane.best = self.routes[ri] + 1;
                            lane.acc += 1;
                            lines[l].touch(REGION_ROUTES, ri * ROUTE_BYTES, ROUTE_BYTES);
                            break;
                        }
                    }
                    if node.ext & (1 << nib) != 0 {
                        let rank = (node.ext & ((1 << nib) - 1)).count_ones();
                        let ci = node.child_base as usize + rank as usize;
                        lane.node_ref = self.refs[ci];
                        lane.acc += 1;
                        lines[l].touch(REGION_REFS, ci * REF_BYTES, REF_BYTES);
                        lane.depth += STRIDE;
                    } else {
                        lane.active = false;
                        continue;
                    }
                } else {
                    let idx = lane.node_ref as usize;
                    let node = self.sparse[idx];
                    lane.acc += 1;
                    lines[l].touch(REGION_SPARSE, idx * SPARSE_BYTES, SPARSE_BYTES);
                    if node.skip_len > 0
                        && extract_bits(addr, lane.depth, node.skip_len) != node.skip
                    {
                        lane.active = false;
                        continue;
                    }
                    lane.depth += node.skip_len;
                    if node.route != 0 {
                        lane.best = node.route;
                    }
                    if lane.depth >= 128 {
                        lane.active = false;
                        continue;
                    }
                    lane.node_ref = node.children[extract_bits(addr, lane.depth, 1) as usize];
                    lane.depth += 1;
                }
                if lane.node_ref == NONE {
                    lane.active = false;
                } else if lane.node_ref & DENSE_FLAG != 0 {
                    prefetch_slice(&self.dense, (lane.node_ref & REF_MASK) as usize);
                } else {
                    prefetch_slice(&self.sparse, lane.node_ref as usize);
                }
            }
            if !any {
                break;
            }
        }
        std::array::from_fn(|l| CountedLookup {
            next_hop: if lanes[l].best == 0 {
                None
            } else {
                Some(NextHop(lanes[l].best - 1))
            },
            mem_accesses: lanes[l].acc,
            lines_touched: lines[l].count(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::GenericBinaryTrie;
    use spal_rib::v6::synthesize6_dfz;

    fn p6(bits: u128, len: u8) -> Prefix6 {
        Prefix6::new(bits, len).unwrap()
    }

    fn table(routes: &[(u128, u8, u16)]) -> RoutingTable6 {
        RoutingTable6::from_entries(routes.iter().map(|&(bits, len, nh)| RouteEntry6 {
            prefix: p6(bits, len),
            next_hop: NextHop(nh),
        }))
    }

    #[test]
    fn empty_table_matches_nothing() {
        let ship = Ship6::build(&RoutingTable6::default());
        assert_eq!(ship.lookup(0), None);
        assert_eq!(ship.lookup(u128::MAX), None);
        // One bin read is the whole lookup.
        assert_eq!(ship.lookup_counted(42).mem_accesses, 1);
    }

    #[test]
    fn short_routes_resolve_from_bin_defaults() {
        let t = table(&[
            (0, 0, 1),                      // default route
            (0x2000u128 << 112, 3, 2),      // 2000::/3
            (0x2001_0db8u128 << 96, 16, 3), // 2001::/16
        ]);
        let ship = Ship6::build(&t);
        assert_eq!(ship.lookup(0x2001u128 << 112 | 9), Some(NextHop(3)));
        assert_eq!(ship.lookup(0x2002u128 << 112), Some(NextHop(2)));
        assert_eq!(ship.lookup(0x1000u128 << 112), Some(NextHop(1)));
        // A short-route hit costs exactly the one bin read.
        assert_eq!(ship.lookup_counted(0x2002u128 << 112).mem_accesses, 1);
    }

    #[test]
    fn deep_routes_override_defaults() {
        let p32 = 0x2001_0db8u128 << 96;
        let p48 = 0x2001_0db8_0001u128 << 80;
        let t = table(&[(0x2001u128 << 112, 16, 1), (p32, 32, 2), (p48, 48, 3)]);
        let ship = Ship6::build(&t);
        assert_eq!(ship.lookup(p48 | 7), Some(NextHop(3)));
        assert_eq!(ship.lookup(p32 | (2u128 << 80)), Some(NextHop(2)));
        assert_eq!(ship.lookup(0x2001_0db9u128 << 96), Some(NextHop(1)));
    }

    #[test]
    fn host_route_and_128_edge() {
        let host = (0x2001_0db8u128 << 96) | 0xFFFF;
        let t = table(&[(host, 128, 7), (0x2001_0db8u128 << 96, 32, 1)]);
        let ship = Ship6::build(&t);
        assert_eq!(ship.lookup(host), Some(NextHop(7)));
        assert_eq!(ship.lookup(host ^ 1), Some(NextHop(1)));
    }

    #[test]
    fn dense_region_uses_dense_nodes() {
        // 16 diverging /20s under one bin force a dense node at the root.
        let routes: Vec<(u128, u8, u16)> = (0..16u128)
            .map(|v| ((0x2001u128 << 112) | (v << 108), 20, v as u16))
            .collect();
        let t = table(&routes);
        let ship = Ship6::build(&t);
        let (dense, _) = ship.node_counts();
        assert!(
            dense >= 1,
            "expected a dense node, got {:?}",
            ship.node_counts()
        );
        for v in 0..16u128 {
            let addr = (0x2001u128 << 112) | (v << 108) | 12345;
            assert_eq!(ship.lookup(addr), Some(NextHop(v as u16)), "nibble {v}");
        }
    }

    #[test]
    fn matches_oracle_on_dfz_table() {
        let t = synthesize6_dfz(4_000, 21);
        let ship = Ship6::build(&t);
        let trie = GenericBinaryTrie::<u128>::build6(&t);
        let mut rng_bits = 0x9E3779B97F4A7C15u128;
        for i in 0..2_000u128 {
            // Half probe near stored prefixes, half uniform.
            rng_bits = rng_bits.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(i);
            let addr = if i % 2 == 0 {
                let e = t.entries()[(rng_bits as usize) % t.len()];
                e.prefix.bits() | (rng_bits >> 64)
            } else {
                rng_bits
            };
            assert_eq!(
                ship.lookup(addr),
                trie.lookup_generic(addr),
                "addr {addr:#034x}"
            );
        }
    }

    #[test]
    fn batch_is_bit_identical_to_scalar() {
        let t = synthesize6_dfz(3_000, 5);
        let ship = Ship6::build(&t);
        let addrs: Vec<u128> = t
            .entries()
            .iter()
            .step_by(3)
            .map(|e| e.prefix.bits() | 0xABCD)
            .collect();
        let mut out = vec![CountedLookup::MISS; addrs.len()];
        ship.lookup_batch(&addrs, &mut out);
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(out[i], ship.lookup_counted(a), "index {i}");
        }
    }

    #[test]
    fn apply_delta_patches_bins() {
        let t = synthesize6_dfz(2_000, 8);
        let mut ship = Ship6::build(&t);
        let mut rib = t.clone();
        // Withdraw one deep route, announce a new one, flip a next hop.
        let victim = rib
            .entries()
            .iter()
            .find(|e| e.prefix.len() == 48)
            .copied()
            .unwrap();
        rib.remove(victim.prefix);
        let added = p6(0x2001_0db8_00aa_u128 << 80, 48);
        rib.insert(RouteEntry6 {
            prefix: added,
            next_hop: NextHop(9),
        });
        let flipped = *rib
            .entries()
            .iter()
            .find(|e| e.prefix != added)
            .expect("table has other routes");
        rib.insert(RouteEntry6 {
            prefix: flipped.prefix,
            next_hop: NextHop(5),
        });
        let changed = [victim.prefix, added, flipped.prefix];
        let stats = ship.apply_delta(&changed, &rib).expect("patch accepted");
        assert_eq!(stats.prefixes_applied, 3);
        assert!(stats.bytes_touched > 0);
        // Patched engine is lookup-equivalent to a fresh build.
        let oracle = GenericBinaryTrie::<u128>::build6(&rib);
        for e in rib.entries().iter().step_by(7) {
            let addr = e.prefix.bits() | 3;
            assert_eq!(ship.lookup(addr), oracle.lookup_generic(addr));
        }
        for probe in [victim.prefix.bits() | 3, added.bits() | 1, added.bits()] {
            assert_eq!(ship.lookup(probe), oracle.lookup_generic(probe));
        }
        assert_eq!(ship.lookup(added.bits()), Some(NextHop(9)));
    }

    #[test]
    fn apply_delta_short_prefix_repaints_defaults() {
        let t = table(&[(0x2001_0db8u128 << 96, 32, 2)]);
        let mut ship = Ship6::build(&t);
        let mut rib = t.clone();
        let short = p6(0x2000u128 << 112, 4);
        rib.insert(RouteEntry6 {
            prefix: short,
            next_hop: NextHop(6),
        });
        ship.apply_delta(&[short], &rib).expect("patch accepted");
        assert_eq!(ship.lookup(0x2fffu128 << 112), Some(NextHop(6)));
        assert_eq!(ship.lookup((0x2001_0db8u128 << 96) | 1), Some(NextHop(2)));
        // Withdraw it again.
        rib.remove(short);
        ship.apply_delta(&[short], &rib).expect("patch accepted");
        assert_eq!(ship.lookup(0x2fffu128 << 112), None);
    }

    #[test]
    fn apply_delta_declines_after_heavy_garbage() {
        let t = synthesize6_dfz(500, 13);
        let mut ship = Ship6::build(&t);
        let mut rib = t.clone();
        // Hammer the same bins with withdraw-all/announce-all cycles
        // until the garbage fraction trips the decline.
        let mut declined = false;
        for round in 0..200 {
            let changed: Vec<Prefix6> = rib
                .entries()
                .iter()
                .filter(|e| e.prefix.len() > 16)
                .take(50)
                .map(|e| e.prefix)
                .collect();
            for (i, &p) in changed.iter().enumerate() {
                rib.insert(RouteEntry6 {
                    prefix: p,
                    next_hop: NextHop(((round + i) % 60) as u16),
                });
            }
            if ship.apply_delta(&changed, &rib).is_none() {
                declined = true;
                break;
            }
        }
        assert!(declined, "garbage decline never fired");
    }

    #[test]
    fn storage_beats_binary_trie() {
        let t = synthesize6_dfz(20_000, 30);
        let ship = Ship6::build(&t);
        let trie = GenericBinaryTrie::<u128>::build6(&t);
        assert!(
            ship.storage_bytes() < Lpm6::storage_bytes(&trie),
            "ship {} vs binary {}",
            ship.storage_bytes(),
            Lpm6::storage_bytes(&trie)
        );
    }

    #[test]
    fn accesses_far_below_binary_trie() {
        let t = synthesize6_dfz(20_000, 31);
        let ship = Ship6::build(&t);
        let trie = GenericBinaryTrie::<u128>::build6(&t);
        let addrs: Vec<u128> = t
            .entries()
            .iter()
            .step_by(5)
            .map(|e| e.prefix.bits() | 0x99)
            .collect();
        let ship_mean = crate::mean_accesses6(&ship, &addrs);
        let trie_mean = crate::mean_accesses6(&trie, &addrs);
        assert!(
            ship_mean * 3.0 < trie_mean,
            "ship {ship_mean:.2} vs binary {trie_mean:.2}"
        );
    }
}
