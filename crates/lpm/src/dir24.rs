//! DIR-24-8-BASIC — the hardware lookup scheme of Gupta, Lin & McKeown,
//! "Routing Lookups in Hardware at Memory Access Speeds" (ref \[10\],
//! discussed in the paper's §2.1).
//!
//! A 2^24-entry first-level table indexed by the top 24 address bits
//! resolves most lookups in **one** memory access; prefixes longer than
//! /24 spill into 256-entry second-level segments (two accesses). The
//! §2.1 point this module reproduces: the memory requirement "is huge
//! (> 32 Mbytes)" — the antithesis of SPAL's small-SRAM goal — while
//! lookups run at memory speed.

use crate::{prefetch_slice, CountedLookup, DeltaStats, Lpm};
use spal_rib::{NextHop, Prefix, RouteEntry, RoutingTable};

/// First-level entries: 15-bit payload plus a "long" flag, as in the
/// original design. We store them unpacked as `u16` + flag in the high
/// bit and model 2 bytes per entry.
const LONG_FLAG: u16 = 0x8000;
/// Sentinel payload for "no route".
const MISS: u16 = 0x7FFF;

/// The DIR-24-8 lookup structure.
pub struct Dir24_8 {
    // (fields below; Debug is implemented by hand — dumping a 16M-entry
    // table is never what a derive user wants)
    /// 2^24 entries: either a next hop (high bit clear) or a segment
    /// index (high bit set).
    tbl24: Vec<u16>,
    /// Concatenated 256-entry second-level segments.
    tbl_long: Vec<u16>,
    /// Segment slots freed by withdrawals, reused before growing
    /// `tbl_long` — keeps sustained churn from exhausting the 15-bit
    /// segment index space.
    free_segs: Vec<u16>,
    routes: usize,
}

impl std::fmt::Debug for Dir24_8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dir24_8")
            .field("routes", &self.routes)
            .field("segments", &self.segment_count())
            .field("storage_bytes", &Lpm::storage_bytes(self))
            .finish()
    }
}

impl Dir24_8 {
    /// Build from a routing table.
    ///
    /// # Panics
    /// Panics if a next hop exceeds the 15-bit payload (32766), or if
    /// more than 2^15 second-level segments are needed — the published
    /// design's own limits.
    pub fn build(table: &RoutingTable) -> Self {
        let mut tbl24 = vec![MISS; 1 << 24];
        // Shortest-first fill so longer prefixes overwrite inside their
        // ranges.
        let mut shallow: Vec<_> = table
            .entries()
            .iter()
            .filter(|e| e.prefix.len() <= 24)
            .collect();
        shallow.sort_by_key(|e| e.prefix.len());
        for e in shallow {
            let nh = e.next_hop.0;
            assert!(nh < MISS, "next hop {nh} exceeds the 15-bit payload");
            let start = (e.prefix.bits() >> 8) as usize;
            let count = 1usize << (24 - e.prefix.len());
            tbl24[start..start + count].fill(nh);
        }
        // Deep routes: group by 24-bit base, one segment each.
        let mut deep: Vec<_> = table
            .entries()
            .iter()
            .filter(|e| e.prefix.len() > 24)
            .collect();
        deep.sort_by_key(|e| e.prefix.len());
        let mut tbl_long: Vec<u16> = Vec::new();
        for e in deep {
            let nh = e.next_hop.0;
            assert!(nh < MISS, "next hop {nh} exceeds the 15-bit payload");
            let base = (e.prefix.bits() >> 8) as usize;
            let seg = if tbl24[base] & LONG_FLAG != 0 {
                (tbl24[base] & !LONG_FLAG) as usize
            } else {
                // Allocate a segment seeded with the sub-/24 result.
                let seg = tbl_long.len() / 256;
                assert!(seg < 1 << 15, "segment space exhausted");
                let default = tbl24[base];
                tbl_long.resize(tbl_long.len() + 256, default);
                tbl24[base] = LONG_FLAG | seg as u16;
                seg
            };
            let first = (e.prefix.bits() & 0xFF) as usize;
            let count = 1usize << (32 - e.prefix.len());
            let off = seg * 256 + first;
            tbl_long[off..off + count].fill(nh);
        }
        Dir24_8 {
            tbl24,
            tbl_long,
            free_segs: Vec::new(),
            routes: table.len(),
        }
    }

    /// Number of 256-entry second-level segments.
    pub fn segment_count(&self) -> usize {
        self.tbl_long.len() / 256
    }

    /// 15-bit payload for a route (or the miss sentinel). Panics on
    /// oversized next hops, mirroring [`Dir24_8::build`].
    fn route_val(entry: Option<RouteEntry>) -> u16 {
        match entry {
            Some(e) => {
                let nh = e.next_hop.0;
                assert!(nh < MISS, "next hop {nh} exceeds the 15-bit payload");
                nh
            }
            None => MISS,
        }
    }

    /// Rewrite segment `seg` from scratch: seed with the sub-/24
    /// `default`, then paint the >/24 routes shortest-first.
    fn refill_segment(&mut self, seg: usize, default: u16, deep: &[RouteEntry]) {
        let off = seg * 256;
        self.tbl_long[off..off + 256].fill(default);
        let mut deep: Vec<&RouteEntry> = deep.iter().collect();
        deep.sort_by_key(|e| e.prefix.len());
        for e in deep {
            let nh = e.next_hop.0;
            assert!(nh < MISS, "next hop {nh} exceeds the 15-bit payload");
            let first = (e.prefix.bits() & 0xFF) as usize;
            let count = 1usize << (32 - e.prefix.len());
            self.tbl_long[off + first..off + first + count].fill(nh);
        }
    }

    /// Reuse a freed segment or grow `tbl_long` by one.
    fn alloc_segment(&mut self) -> usize {
        if let Some(seg) = self.free_segs.pop() {
            return seg as usize;
        }
        let seg = self.tbl_long.len() / 256;
        assert!(seg < 1 << 15, "segment space exhausted");
        self.tbl_long.resize(self.tbl_long.len() + 256, MISS);
        seg
    }

    /// Patch for a changed prefix of length ≤ 24: recompute the ≤/24
    /// best-match value for every covered `tbl24` slot and rewrite the
    /// slots (re-seeding any spill segments in the range with their new
    /// default). Returns bytes touched.
    fn patch_shallow(&mut self, p: Prefix, rib: &RoutingTable) -> usize {
        let start = (p.bits() >> 8) as usize;
        let count = 1usize << (24 - p.len());
        // The value the whole range inherits from at-or-above `p`, then
        // longer contained routes painted shortest-first on top — the
        // build's fill order, restricted to the affected range.
        let base_val = Self::route_val(rib.best_cover(p.first_addr(), p.len()));
        let mut vals = vec![base_val; count];
        let mut contained: Vec<&RouteEntry> = rib
            .range(p.first_addr(), p.last_addr())
            .iter()
            .filter(|e| e.prefix.len() > p.len() && e.prefix.len() <= 24)
            .collect();
        contained.sort_by_key(|e| e.prefix.len());
        for e in contained {
            let nh = e.next_hop.0;
            assert!(nh < MISS, "next hop {nh} exceeds the 15-bit payload");
            let s = ((e.prefix.bits() >> 8) as usize) - start;
            let c = 1usize << (24 - e.prefix.len());
            vals[s..s + c].fill(nh);
        }
        let mut bytes = 0;
        for (i, &v) in vals.iter().enumerate() {
            let slot = start + i;
            if self.tbl24[slot] & LONG_FLAG != 0 {
                let seg = (self.tbl24[slot] & !LONG_FLAG) as usize;
                let lo = (slot as u32) << 8;
                let deep: Vec<RouteEntry> = rib
                    .range(lo, lo | 0xFF)
                    .iter()
                    .filter(|e| e.prefix.len() > 24)
                    .copied()
                    .collect();
                if deep.is_empty() {
                    // The deep routes under this /24 were withdrawn in
                    // the same batch; drop the segment entirely.
                    self.free_segs.push(seg as u16);
                    self.tbl24[slot] = v;
                    bytes += 2;
                } else {
                    self.refill_segment(seg, v, &deep);
                    bytes += 2 * 256;
                }
            } else {
                self.tbl24[slot] = v;
                bytes += 2;
            }
        }
        bytes
    }

    /// Patch for a changed prefix of length > 24: re-seed (or allocate,
    /// or free) the one spill segment under its /24. Returns bytes
    /// touched.
    fn patch_deep(&mut self, p: Prefix, rib: &RoutingTable) -> usize {
        let slot = (p.bits() >> 8) as usize;
        let lo = (slot as u32) << 8;
        let deep: Vec<RouteEntry> = rib
            .range(lo, lo | 0xFF)
            .iter()
            .filter(|e| e.prefix.len() > 24)
            .copied()
            .collect();
        let default = Self::route_val(rib.best_cover(lo, 24));
        if deep.is_empty() {
            if self.tbl24[slot] & LONG_FLAG != 0 {
                self.free_segs.push(self.tbl24[slot] & !LONG_FLAG);
            }
            self.tbl24[slot] = default;
            2
        } else {
            let seg = if self.tbl24[slot] & LONG_FLAG != 0 {
                (self.tbl24[slot] & !LONG_FLAG) as usize
            } else {
                self.alloc_segment()
            };
            self.tbl24[slot] = LONG_FLAG | seg as u16;
            self.refill_segment(seg, default, &deep);
            2 + 2 * 256
        }
    }

    /// Number of routes the structure was built from.
    pub fn route_count(&self) -> usize {
        self.routes
    }
}

/// How many addresses ahead of the resolve point the batch path issues
/// its first-level prefetch. The 16 M-entry `tbl24` misses cache on
/// almost every distinct /24, and eight independent lookups keep the
/// miss pipeline full without racing past the prefetcher's usefulness.
const PREFETCH_AHEAD: usize = 8;

impl Lpm for Dir24_8 {
    /// Uncounted fast path: same two table reads, no `CountedLookup`
    /// bookkeeping on the (dominant) single-access branch.
    fn lookup(&self, addr: u32) -> Option<NextHop> {
        let e = self.tbl24[(addr >> 8) as usize];
        let v = if e & LONG_FLAG == 0 {
            e
        } else {
            self.tbl_long[(e & !LONG_FLAG) as usize * 256 + (addr & 0xFF) as usize]
        };
        (v != MISS).then_some(NextHop(v))
    }

    /// Both tables hold aligned 2-byte entries (2 divides 64, and the two
    /// tables are distinct line regions), so an access never straddles a
    /// line and `lines_touched == mem_accesses` with no dedup set needed.
    fn lookup_counted(&self, addr: u32) -> CountedLookup {
        let e = self.tbl24[(addr >> 8) as usize];
        if e & LONG_FLAG == 0 {
            return CountedLookup {
                next_hop: (e != MISS).then_some(NextHop(e)),
                mem_accesses: 1,
                lines_touched: 1,
            };
        }
        let seg = (e & !LONG_FLAG) as usize;
        let v = self.tbl_long[seg * 256 + (addr & 0xFF) as usize];
        CountedLookup {
            next_hop: (v != MISS).then_some(NextHop(v)),
            mem_accesses: 2,
            lines_touched: 2,
        }
    }

    /// Index-ahead batch path: the first level is a single dependent
    /// load per lookup, so the whole win is memory-level parallelism —
    /// prefetch the `tbl24` line [`PREFETCH_AHEAD`] addresses before it
    /// is needed, then resolve in a tight loop the compiler keeps free
    /// of per-call overhead.
    fn lookup_batch(&self, addrs: &[u32], out: &mut [CountedLookup]) {
        assert_eq!(
            addrs.len(),
            out.len(),
            "lookup_batch: addrs and out must have equal lengths"
        );
        for (i, (&addr, o)) in addrs.iter().zip(out.iter_mut()).enumerate() {
            if let Some(&ahead) = addrs.get(i + PREFETCH_AHEAD) {
                prefetch_slice(&self.tbl24, (ahead >> 8) as usize);
            }
            let e = self.tbl24[(addr >> 8) as usize];
            *o = if e & LONG_FLAG == 0 {
                CountedLookup {
                    next_hop: (e != MISS).then_some(NextHop(e)),
                    mem_accesses: 1,
                    lines_touched: 1,
                }
            } else {
                let seg = (e & !LONG_FLAG) as usize;
                let v = self.tbl_long[seg * 256 + (addr & 0xFF) as usize];
                CountedLookup {
                    next_hop: (v != MISS).then_some(NextHop(v)),
                    mem_accesses: 2,
                    lines_touched: 2,
                }
            };
        }
    }

    /// Direct range-write patching — the update path DIR-24-8 was
    /// designed for. Each changed prefix rewrites only the `tbl24`
    /// slots its range covers (≤ /24) or the one spill segment under
    /// its /24 (> /24), recomputing values from the post-update RIB
    /// fragment. Fallback rule: prefixes shorter than /8 cover > 2^16
    /// slots, at which point a patch approaches rebuild cost — decline
    /// and let the caller rebuild.
    fn apply_delta(&mut self, changed: &[Prefix], rib: &RoutingTable) -> Option<DeltaStats> {
        if changed.iter().any(|p| p.len() < 8) {
            return None;
        }
        let mut stats = DeltaStats::default();
        for &p in changed {
            let bytes = if p.len() <= 24 {
                self.patch_shallow(p, rib)
            } else {
                self.patch_deep(p, rib)
            };
            stats.prefixes_applied += 1;
            stats.bytes_touched += bytes;
        }
        self.routes = rib.len();
        Some(stats)
    }

    fn storage_bytes(&self) -> usize {
        // 2 bytes per entry at both levels, as published.
        self.tbl24.len() * 2 + self.tbl_long.len() * 2
    }

    fn name(&self) -> &'static str {
        "DIR-24-8"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::{synth, RouteEntry};

    fn table(prefixes: &[(&str, u16)]) -> RoutingTable {
        RoutingTable::from_entries(prefixes.iter().map(|&(s, nh)| RouteEntry {
            prefix: s.parse().unwrap(),
            next_hop: NextHop(nh),
        }))
    }

    #[test]
    fn empty_table_misses() {
        let d = Dir24_8::build(&RoutingTable::new());
        assert_eq!(d.lookup(0), None);
        assert_eq!(d.lookup_counted(0).mem_accesses, 1);
        // The fixed 32 MB first level exists regardless (§2.1: "huge").
        assert_eq!(d.storage_bytes(), 32 << 20);
    }

    #[test]
    fn shallow_routes_single_access() {
        let rt = table(&[("10.0.0.0/8", 1), ("10.1.0.0/16", 2)]);
        let d = Dir24_8::build(&rt);
        let c = d.lookup_counted(0x0A01_0203);
        assert_eq!(c.next_hop, Some(NextHop(2)));
        assert_eq!(c.mem_accesses, 1);
        assert_eq!(d.segment_count(), 0);
    }

    #[test]
    fn deep_routes_two_accesses_with_fallback() {
        let rt = table(&[("10.1.2.0/24", 1), ("10.1.2.128/25", 2), ("10.1.2.7/32", 3)]);
        let d = Dir24_8::build(&rt);
        assert_eq!(d.lookup_counted(0x0A01_0207).next_hop, Some(NextHop(3)));
        assert_eq!(d.lookup_counted(0x0A01_0207).mem_accesses, 2);
        assert_eq!(d.lookup(0x0A01_0280), Some(NextHop(2)));
        // Inside the /24 but outside the deeper routes: the seeded
        // default applies.
        assert_eq!(d.lookup(0x0A01_0210), Some(NextHop(1)));
        assert_eq!(d.lookup(0x0A01_0300), None);
        assert_eq!(d.segment_count(), 1);
    }

    #[test]
    fn agrees_with_oracle() {
        use rand::{Rng, SeedableRng};
        let rt = synth::small(121);
        let d = Dir24_8::build(&rt);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..400 {
            let addr: u32 = rng.gen();
            assert_eq!(
                d.lookup(addr),
                rt.longest_match(addr).map(|e| e.next_hop),
                "addr {addr:#010x}"
            );
        }
        for e in rt.entries().iter().step_by(11) {
            for addr in [e.prefix.first_addr(), e.prefix.last_addr()] {
                assert_eq!(d.lookup(addr), rt.longest_match(addr).map(|x| x.next_hop));
            }
        }
    }

    #[test]
    fn storage_is_huge_as_section_2_1_says() {
        let rt = synth::small(123);
        let d = Dir24_8::build(&rt);
        assert!(d.storage_bytes() > 32 << 20);
        assert_eq!(d.route_count(), rt.len());
    }

    #[test]
    fn batch_and_uncounted_match_scalar() {
        use rand::{Rng, SeedableRng};
        let rt = synth::small(121);
        let d = Dir24_8::build(&rt);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        // 515 = an unaligned tail past the 4-lane groups.
        let addrs: Vec<u32> = (0..515).map(|_| rng.gen()).collect();
        let mut out = vec![CountedLookup::MISS; addrs.len()];
        d.lookup_batch(&addrs, &mut out);
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(out[i], d.lookup_counted(a), "addr {a:#010x}");
            assert_eq!(d.lookup(a), out[i].next_hop, "addr {a:#010x}");
        }
    }

    #[test]
    #[should_panic]
    fn oversized_next_hop_rejected() {
        let rt = table(&[("10.0.0.0/8", 0x7FFF)]);
        let _ = Dir24_8::build(&rt);
    }

    #[test]
    fn delta_patch_matches_rebuild() {
        let mut rt = table(&[("10.0.0.0/8", 1), ("10.1.2.0/24", 2), ("10.1.2.128/25", 3)]);
        let mut d = Dir24_8::build(&rt);
        let steps: &[(&str, Option<u16>)] = &[
            ("10.1.0.0/16", Some(9)),     // announce between existing routes
            ("10.1.2.128/25", None),      // withdraw a deep route
            ("10.1.2.7/32", Some(4)),     // announce a deep route
            ("10.1.2.0/24", Some(8)),     // re-target under the segment
            ("10.1.2.7/32", None),        // last deep route gone: segment freed
            ("10.0.0.0/8", None),         // withdraw the covering route
            ("192.168.4.64/26", Some(5)), // fresh deep route reuses the freed segment
        ];
        for &(s, nh) in steps {
            let p: Prefix = s.parse().unwrap();
            match nh {
                Some(nh) => rt.insert(RouteEntry {
                    prefix: p,
                    next_hop: NextHop(nh),
                }),
                None => {
                    rt.remove(p);
                }
            }
            let stats = d.apply_delta(&[p], &rt).expect("patchable");
            assert!(stats.bytes_touched > 0);
            let fresh = Dir24_8::build(&rt);
            for e in rt.entries() {
                for addr in [e.prefix.first_addr(), e.prefix.last_addr()] {
                    for probe in [addr.wrapping_sub(1), addr, addr.wrapping_add(1)] {
                        assert_eq!(d.lookup(probe), fresh.lookup(probe), "probe {probe:#010x}");
                    }
                }
            }
            assert_eq!(d.route_count(), rt.len());
        }
        // The freed segment must have been reused, not leaked.
        assert_eq!(d.segment_count(), 1);
    }

    #[test]
    fn delta_declines_short_prefixes() {
        let rt = table(&[("0.0.0.0/0", 1)]);
        let mut d = Dir24_8::build(&rt);
        assert!(d
            .apply_delta(&["0.0.0.0/0".parse().unwrap()], &rt)
            .is_none());
        assert!(d
            .apply_delta(&["10.0.0.0/7".parse().unwrap()], &rt)
            .is_none());
        assert!(d
            .apply_delta(&["10.0.0.0/8".parse().unwrap()], &rt)
            .is_some());
    }
}
