//! Poptrie-class cache-line-packed multibit trie — after Asai & Ohara,
//! "Poptrie: A Compressed Trie with Population Count for Fast and
//! Scalable Software IP Routing Table Lookup" (SIGCOMM 2015).
//!
//! The structure the paper's idea reduces to on this repo's workloads:
//!
//! * A **direct-indexed 16-bit root array** (2^16 × 4 B): one tagged
//!   word per 16-bit stem, resolving shallow routes in a single read or
//!   pointing at a node tree for stems with deeper routes.
//! * **8-bit-stride nodes** below the root (levels cover address bits
//!   16..24 and 24..32), packed so *one node access is one 64-byte
//!   cache line*. Nodes come in four classes, chosen per node by run
//!   count and promoted to the widest sibling class so a parent can
//!   address children as `base0 + rank × class_slots`:
//!   - `S32` — ≤ 6 value runs, 32 bytes (half a line; two S32 nodes
//!     pack per line),
//!   - `S64` — ≤ 14 runs, 64 bytes, line-aligned,
//!   - `DLEAF` — childless with > 14 runs: a 256-bit *leafvec* bitmap
//!     ranked with `u64::count_ones`, leaf values spilled to a global
//!     leaf array (64 B, line-aligned),
//!   - `DENSE` — > 14 runs with children: 256-bit *vector* (child) and
//!     *leafvec* (leaf-head) bitmaps filling exactly one line, plus a
//!     second line holding the child/leaf bases and up to 26 inline
//!     leaf values.
//! * **Deduplicated next hops**: leaf words are 15-bit indices into a
//!   side table (0 = no route), so a hit costs one extra line however
//!   many prefixes share a port.
//!
//! Honest deviation from the SIGCOMM paper (see DESIGN.md): Poptrie
//! proper uses 6-bit strides and uniform 64-way nodes. On this repo's
//! 600 k synthetic stress table the scattered /24s create ~361 k
//! distinct 22-bit stems, so literal 64-way nodes cost ~27 MB — 4× the
//! Lulea structure they are meant to beat. The 16/8/8 cut with adaptive
//! line-packed node classes keeps the paper's mechanisms (direct root,
//! bitmap + popcount rank, leaf/vector split, deduped leaves) while
//! staying *below* Lulea's storage.
//!
//! Because every node access is by construction one line (two for
//! `DENSE`), the engine's `mem_accesses` metric counts line-grain
//! reads, and `lines_touched == mem_accesses` up to incidental packing
//! (two S32 nodes sharing a line). A typical deep lookup touches root +
//! node + node + next-hop = 4 lines; a shallow one 2.

use crate::{prefetch_slice, CountedLookup, DeltaStats, LineSet, Lpm, BATCH_LANES};
use spal_rib::{NextHop, Prefix, RoutingTable};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Root-entry tags (top 2 bits of the 32-bit entry).
const TAG_LEAF: u32 = 0;
const TAG_SPARSE: u32 = 1;
const TAG_DLEAF: u32 = 2;
const TAG_DENSE: u32 = 3;
/// Low 30 bits of a root entry: a leaf value or an arena slot index.
const PAYLOAD_MASK: u32 = 0x3FFF_FFFF;

/// Node classes, ordered so `max` over siblings picks the widest.
const CLASS_S32: u8 = 0;
const CLASS_S64: u8 = 1;
const CLASS_DLEAF: u8 = 2;
const CLASS_DENSE: u8 = 3;

/// Arena slots (32 bytes = 8 words) per node class.
const CLASS_SLOTS: [usize; 4] = [1, 2, 2, 4];
/// Words per arena slot.
const SLOT_WORDS: usize = 8;
/// Bytes per arena slot.
const SLOT_BYTES: usize = 32;

/// Max runs encodable by each sparse class (one 4-byte run word each).
const S32_MAX_RUNS: usize = 6;
const S64_MAX_RUNS: usize = 14;
/// Leaf values a DENSE node's second line holds inline (13 words × 2).
const DENSE_INLINE_MAX: usize = 26;

/// Next-hop index cap: leaf words carry 15 bits, value 0 means "no
/// route", so at most 2^15 − 1 distinct next hops. The SRAM pointer
/// formats of the published structures carry the same order of limit;
/// exceeding it is a build-time panic, not silent corruption.
const MAX_NEXT_HOPS: usize = (1 << 15) - 1;

/// A leaf word: 0 = no route, otherwise `next_hops[val - 1]`.
type LeafVal = u16;
/// In run words and leaf payloads, bit 15 marks a child rank.
const RUN_CHILD: u16 = 1 << 15;

// Line-accounting regions (see [`LineSet`]).
const REGION_ROOT: u32 = 0;
const REGION_ARENA: u32 = 1;
const REGION_LEAVES: u32 = 2;
const REGION_NH: u32 = 3;

/// Interleaved lanes for the batched walk — Lulea-width: the descent is
/// short and level-synchronous (every lane is at the same depth), so
/// wide groups keep a full complement of outstanding misses in flight.
const WIDE_LANES: usize = 16;

/// Patch guardrails: more dirty 16-bit stems than this approaches a
/// rebuild's work, and an arena more than a third garbage has drifted
/// too far from the fresh-build storage model — decline and let the
/// caller rebuild.
const MAX_DIRTY_STEMS: usize = 4096;
const MAX_GARBAGE_FRACTION: f64 = 1.0 / 3.0;

/// Tag a child class for the descent loop.
fn tag_of_class(class: u8) -> u32 {
    match class {
        CLASS_S32 | CLASS_S64 => TAG_SPARSE,
        CLASS_DLEAF => TAG_DLEAF,
        _ => TAG_DENSE,
    }
}

/// Popcount of bitmap bits `0..=pos` (8 × u32 words, 256 bits).
#[inline]
fn rank_incl(words: &[u32], pos: usize) -> u32 {
    let w = pos / 32;
    let mut count = 0;
    for &word in &words[..w] {
        count += word.count_ones();
    }
    let mask = ((1u64 << (pos % 32 + 1)) - 1) as u32;
    count + (words[w] & mask).count_ones()
}

/// Popcount of bitmap bits `0..pos` (strictly before).
#[inline]
fn rank_excl(words: &[u32], pos: usize) -> u32 {
    let w = pos / 32;
    let mut count = 0;
    for &word in &words[..w] {
        count += word.count_ones();
    }
    let mask = (1u32 << (pos % 32)) - 1;
    count + (words[w] & mask).count_ones()
}

/// Whether bitmap bit `pos` is set.
#[inline]
fn bit(words: &[u32], pos: usize) -> bool {
    words[pos / 32] >> (pos % 32) & 1 == 1
}

/// One value run in a node's 256-slot span.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Run {
    Leaf(LeafVal),
    Child(u16),
}

/// Uncompressed intermediate form of one node: 256 painted leaf values
/// plus the child specs that override individual slots.
struct Spec {
    leaf_slots: Box<[LeafVal; 256]>,
    /// `(slot, child)` pairs, sorted by slot; the child's rank is its
    /// index here.
    children: Vec<(u8, Spec)>,
}

impl Spec {
    /// The run list: child slots are singleton runs; a leaf run also
    /// breaks after a child even when the value continues, so bitmap
    /// ranks stay monotone.
    fn runs(&self) -> Vec<(u8, Run)> {
        let mut child_at = [false; 256];
        for &(pos, _) in &self.children {
            child_at[pos as usize] = true;
        }
        let mut out = Vec::new();
        let mut rank: u16 = 0;
        let mut prev: Option<LeafVal> = None;
        for (pos, &is_child) in child_at.iter().enumerate() {
            if is_child {
                out.push((pos as u8, Run::Child(rank)));
                rank += 1;
                prev = None;
            } else {
                let v = self.leaf_slots[pos];
                if prev != Some(v) {
                    out.push((pos as u8, Run::Leaf(v)));
                    prev = Some(v);
                }
            }
        }
        out
    }

    /// Smallest class this node fits on its own (siblings may promote).
    fn class(&self) -> u8 {
        let runs = self.runs().len();
        if runs <= S32_MAX_RUNS {
            CLASS_S32
        } else if runs <= S64_MAX_RUNS {
            CLASS_S64
        } else if self.children.is_empty() {
            CLASS_DLEAF
        } else {
            CLASS_DENSE
        }
    }
}

/// Build the spec for the 8 address bits `start..start+8` from the
/// routes under one stem. `routes` are `(bits, len, nh_leaf)` with
/// `len > start` and leaf-encoded next hops; `default` is the value the
/// parent resolved for the whole range.
fn build_spec(routes: &[(u32, u8, LeafVal)], start: u8, default: LeafVal) -> Spec {
    let mut leaf_slots = Box::new([default; 256]);
    let end = start + 8;
    let mut shallow: Vec<_> = routes.iter().filter(|r| r.1 <= end).collect();
    shallow.sort_by_key(|r| r.1);
    for &&(bits, len, v) in &shallow {
        // Canonical prefixes: the low slot bits are zero, so `first` is
        // the slot-range base.
        let first = ((bits >> (32 - end as u32)) & 0xFF) as usize;
        let count = 1usize << (end - len);
        leaf_slots[first..first + count].fill(v);
    }
    let mut deeper: BTreeMap<u8, Vec<(u32, u8, LeafVal)>> = BTreeMap::new();
    for &(bits, len, v) in routes.iter().filter(|r| r.1 > end) {
        assert!(end < 32, "routes longer than 32 bits are impossible");
        let slot = ((bits >> (32 - end as u32)) & 0xFF) as u8;
        deeper.entry(slot).or_default().push((bits, len, v));
    }
    let children = deeper
        .into_iter()
        .map(|(slot, sub)| {
            let sub_default = leaf_slots[slot as usize];
            (slot, build_spec(&sub, end, sub_default))
        })
        .collect();
    Spec {
        leaf_slots,
        children,
    }
}

/// Append-only encoder for the node arena and the spilled-leaf array.
struct Builder<'a> {
    words: &'a mut Vec<u32>,
    leaves: &'a mut Vec<LeafVal>,
    /// Half-line slot skipped by the last line-aligned allocation,
    /// recycled by the next single-slot (S32) node so alignment costs
    /// nothing amortized.
    spare: Option<u32>,
}

impl Builder<'_> {
    /// Allocate `slots` zeroed arena slots, line-aligning when `align`
    /// (classes spanning a full 64-byte line must not straddle one).
    fn alloc(&mut self, slots: usize, align: bool) -> u32 {
        if !align && slots == 1 {
            if let Some(s) = self.spare.take() {
                return s;
            }
        }
        let mut slot = self.words.len() / SLOT_WORDS;
        if align && slot % 2 == 1 {
            self.words.resize(self.words.len() + SLOT_WORDS, 0);
            self.spare = Some(slot as u32);
            slot += 1;
        }
        self.words.resize(self.words.len() + slots * SLOT_WORDS, 0);
        slot as u32
    }

    /// Encode `spec` as a fresh node, returning its slot index and
    /// class.
    fn encode(&mut self, spec: &Spec) -> (u32, u8) {
        let class = spec.class();
        let slot = self.alloc(CLASS_SLOTS[class as usize], class != CLASS_S32);
        self.encode_into(spec, class, slot);
        (slot, class)
    }

    /// Encode `spec` at a preallocated `slot` as `class` (its own class
    /// or a sibling-promoted wider one). Children are encoded first, as
    /// one contiguous block of the widest child class, so the node can
    /// address them by rank.
    fn encode_into(&mut self, spec: &Spec, class: u8, slot: u32) {
        let (base0, child_class) = if spec.children.is_empty() {
            (0, CLASS_S32)
        } else {
            let mut cc = spec
                .children
                .iter()
                .map(|(_, c)| c.class())
                .max()
                .expect("non-empty");
            // DLEAF holds no children: a childless sibling promoted next
            // to one that descends must go all the way to DENSE.
            if cc == CLASS_DLEAF && spec.children.iter().any(|(_, c)| !c.children.is_empty()) {
                cc = CLASS_DENSE;
            }
            let stride = CLASS_SLOTS[cc as usize];
            let base = self.alloc(spec.children.len() * stride, cc != CLASS_S32);
            for (rank, (_, child)) in spec.children.iter().enumerate() {
                self.encode_into(child, cc, base + (rank * stride) as u32);
            }
            (base, cc)
        };
        let runs = spec.runs();
        let w = slot as usize * SLOT_WORDS;
        match class {
            CLASS_S32 | CLASS_S64 => {
                let cap = if class == CLASS_S32 {
                    S32_MAX_RUNS
                } else {
                    S64_MAX_RUNS
                };
                assert!(runs.len() <= cap, "sparse node overflow");
                self.words[w] =
                    class as u32 | (runs.len() as u32) << 8 | (child_class as u32) << 16;
                self.words[w + 1] = base0;
                for (i, &(start, run)) in runs.iter().enumerate() {
                    let val = match run {
                        Run::Leaf(v) => v,
                        Run::Child(rank) => RUN_CHILD | rank,
                    };
                    self.words[w + 2 + i] = start as u32 | (val as u32) << 8;
                }
            }
            CLASS_DLEAF => {
                assert!(spec.children.is_empty(), "DLEAF node with children");
                self.words[w] = class as u32;
                self.words[w + 1] = self.leaves.len() as u32;
                for &(start, run) in &runs {
                    let Run::Leaf(v) = run else {
                        unreachable!("childless node has only leaf runs")
                    };
                    self.words[w + 2 + start as usize / 32] |= 1 << (start % 32);
                    self.leaves.push(v);
                }
            }
            _ => {
                // DENSE: line 0 = vector + leafvec bitmaps, line 1 =
                // bases, header and inline leaves.
                let mut vals: Vec<LeafVal> = Vec::new();
                for &(start, run) in &runs {
                    match run {
                        Run::Child(_) => {
                            self.words[w + start as usize / 32] |= 1 << (start % 32);
                        }
                        Run::Leaf(v) => {
                            self.words[w + 8 + start as usize / 32] |= 1 << (start % 32);
                            vals.push(v);
                        }
                    }
                }
                let inline = vals.len() <= DENSE_INLINE_MAX;
                self.words[w + 16] = base0;
                self.words[w + 18] = class as u32
                    | (child_class as u32) << 8
                    | (inline as u32) << 10
                    | (vals.len() as u32) << 16;
                if inline {
                    for (j, &v) in vals.iter().enumerate() {
                        self.words[w + 19 + j / 2] |= (v as u32) << (16 * (j % 2));
                    }
                } else {
                    self.words[w + 17] = self.leaves.len() as u32;
                    self.leaves.extend_from_slice(&vals);
                }
            }
        }
    }
}

/// Outcome of resolving one 8-bit stride at a node.
enum Step {
    /// Terminal: a leaf value read from the node itself.
    Leaf(LeafVal),
    /// Terminal: the leaf lives in the spilled-leaf array at this index.
    Spill(usize),
    /// Descend into the child node at `slot` with kind `tag`.
    Child { slot: u32, tag: u32 },
}

/// The Poptrie forwarding table.
///
/// ```
/// use spal_lpm::{poptrie::Poptrie, Lpm};
/// use spal_rib::synth;
///
/// let table = synth::small(9);
/// let trie = Poptrie::build(&table);
/// let addr = table.entries()[10].prefix.first_addr();
/// assert_eq!(trie.lookup(addr), table.longest_match(addr).map(|e| e.next_hop));
/// // A lookup touches at most root + two dense nodes (two lines each)
/// // + spilled leaf + next hop.
/// assert!(trie.lookup_counted(addr).lines_touched <= 7);
/// ```
#[derive(Debug)]
pub struct Poptrie {
    /// Direct-indexed 16-bit root: one tagged word per stem.
    root: Vec<u32>,
    /// Node arena: 8-word (32-byte) slots; wide classes line-aligned.
    words: Vec<u32>,
    /// Spilled leaf values (DLEAF nodes and non-inline DENSE nodes).
    leaves: Vec<LeafVal>,
    /// Deduplicated next hops; leaf value `v` resolves `next_hops[v-1]`.
    next_hops: Vec<NextHop>,
    routes: usize,
    /// Control-plane state for [`Lpm::apply_delta`], not counted as
    /// lookup SRAM.
    nh_index: HashMap<NextHop, u16>,
    /// Arena slots orphaned by patches (patching appends fresh trees).
    garbage_slots: usize,
}

/// Intern a next hop as a leaf value (index + 1; 0 stays "no route").
fn intern_leaf(
    next_hops: &mut Vec<NextHop>,
    nh_index: &mut HashMap<NextHop, u16>,
    nh: NextHop,
) -> LeafVal {
    *nh_index.entry(nh).or_insert_with(|| {
        assert!(
            next_hops.len() < MAX_NEXT_HOPS,
            "Poptrie: more than {MAX_NEXT_HOPS} distinct next hops (15-bit leaf format)"
        );
        next_hops.push(nh);
        next_hops.len() as u16
    })
}

impl Poptrie {
    /// Build from a routing table.
    pub fn build(table: &RoutingTable) -> Self {
        let mut next_hops = Vec::new();
        let mut nh_index = HashMap::new();

        // Paint the 2^16 root leaf values from routes of length ≤ 16,
        // shortest first so longer routes overwrite inside their range.
        let mut vals: Vec<LeafVal> = vec![0; 1 << 16];
        let mut shallow: Vec<_> = table
            .entries()
            .iter()
            .filter(|e| e.prefix.len() <= 16)
            .collect();
        shallow.sort_by_key(|e| e.prefix.len());
        for e in shallow {
            let start = (e.prefix.bits() >> 16) as usize;
            let count = 1usize << (16 - e.prefix.len());
            let v = intern_leaf(&mut next_hops, &mut nh_index, e.next_hop);
            vals[start..start + count].fill(v);
        }

        // Deep routes grouped by 16-bit stem.
        let mut deep: BTreeMap<usize, Vec<(u32, u8, LeafVal)>> = BTreeMap::new();
        for e in table.entries().iter().filter(|e| e.prefix.len() > 16) {
            let v = intern_leaf(&mut next_hops, &mut nh_index, e.next_hop);
            deep.entry((e.prefix.bits() >> 16) as usize)
                .or_default()
                .push((e.prefix.bits(), e.prefix.len(), v));
        }

        let mut root: Vec<u32> = vals.iter().map(|&v| v as u32).collect();
        let mut words = Vec::new();
        let mut leaves = Vec::new();
        let mut builder = Builder {
            words: &mut words,
            leaves: &mut leaves,
            spare: None,
        };
        for (stem, routes) in &deep {
            let spec = build_spec(routes, 16, vals[*stem]);
            let (slot, class) = builder.encode(&spec);
            root[*stem] = tag_of_class(class) << 30 | slot;
        }

        Poptrie {
            root,
            words,
            leaves,
            next_hops,
            routes: table.len(),
            nh_index,
            garbage_slots: 0,
        }
    }

    /// Number of routes the table was built from.
    pub fn route_count(&self) -> usize {
        self.routes
    }

    /// Resolve one 8-bit stride (`pos`) at the node `(tag, slot)`,
    /// without accounting — the uncounted fast path.
    #[inline]
    fn node_step_plain(&self, tag: u32, slot: u32, pos: usize) -> Step {
        let w = slot as usize * SLOT_WORDS;
        match tag {
            TAG_SPARSE => {
                let header = self.words[w];
                let count = (header >> 8 & 0xFF) as usize;
                // Last run starting at or before `pos`; run 0 starts at
                // slot 0, so the scan always lands.
                let mut val: u16 = 0;
                for i in 0..count {
                    let run = self.words[w + 2 + i];
                    if (run & 0xFF) as usize > pos {
                        break;
                    }
                    val = (run >> 8) as u16;
                }
                if val & RUN_CHILD == 0 {
                    Step::Leaf(val)
                } else {
                    let cc = (header >> 16 & 0x3) as u8;
                    let rank = (val & !RUN_CHILD) as usize;
                    Step::Child {
                        slot: self.words[w + 1] + (rank * CLASS_SLOTS[cc as usize]) as u32,
                        tag: tag_of_class(cc),
                    }
                }
            }
            TAG_DLEAF => {
                let rank = rank_incl(&self.words[w + 2..w + 10], pos);
                Step::Spill(self.words[w + 1] as usize + rank as usize - 1)
            }
            _ => {
                if bit(&self.words[w..w + 8], pos) {
                    let header = self.words[w + 18];
                    let cc = (header >> 8 & 0x3) as u8;
                    let rank = rank_excl(&self.words[w..w + 8], pos) as usize;
                    Step::Child {
                        slot: self.words[w + 16] + (rank * CLASS_SLOTS[cc as usize]) as u32,
                        tag: tag_of_class(cc),
                    }
                } else {
                    let header = self.words[w + 18];
                    let rank = rank_incl(&self.words[w + 8..w + 16], pos) as usize;
                    if header >> 10 & 1 == 1 {
                        let j = rank - 1;
                        Step::Leaf((self.words[w + 19 + j / 2] >> (16 * (j % 2))) as u16)
                    } else {
                        Step::Spill(self.words[w + 17] as usize + rank - 1)
                    }
                }
            }
        }
    }

    /// [`Poptrie::node_step_plain`] with line/access accounting: one
    /// line per sparse or DLEAF node, two for DENSE. Shared by the
    /// scalar and batched counted walks so their counts match bit for
    /// bit.
    #[inline]
    fn node_step(
        &self,
        tag: u32,
        slot: u32,
        pos: usize,
        acc: &mut u32,
        lines: &mut LineSet,
    ) -> Step {
        let bytes = match tag {
            TAG_SPARSE => {
                *acc += 1;
                if self.words[slot as usize * SLOT_WORDS] & 0xFF == CLASS_S32 as u32 {
                    SLOT_BYTES
                } else {
                    2 * SLOT_BYTES
                }
            }
            TAG_DLEAF => {
                *acc += 1;
                2 * SLOT_BYTES
            }
            _ => {
                *acc += 2;
                4 * SLOT_BYTES
            }
        };
        lines.touch(REGION_ARENA, slot as usize * SLOT_BYTES, bytes);
        self.node_step_plain(tag, slot, pos)
    }

    /// Finish a walk that produced leaf value `val`, charging the
    /// next-hop read on a hit.
    #[inline]
    fn finish(&self, val: LeafVal, mut acc: u32, lines: &mut LineSet) -> CountedLookup {
        if val == 0 {
            CountedLookup {
                next_hop: None,
                mem_accesses: acc,
                lines_touched: lines.count(),
            }
        } else {
            lines.touch(REGION_NH, (val as usize - 1) * 2, 2);
            acc += 1;
            CountedLookup {
                next_hop: Some(self.next_hops[val as usize - 1]),
                mem_accesses: acc,
                lines_touched: lines.count(),
            }
        }
    }

    /// Arena slots owned by the tree rooted at `(tag, slot)` — what a
    /// patch orphans when it re-encodes a stem.
    fn tree_slots(&self, tag: u32, slot: u32) -> usize {
        let w = slot as usize * SLOT_WORDS;
        let (own, cc, base0, n_children) = match tag {
            TAG_SPARSE => {
                let header = self.words[w];
                let count = (header >> 8 & 0xFF) as usize;
                let own = if header & 0xFF == CLASS_S32 as u32 {
                    1
                } else {
                    2
                };
                let n = (0..count)
                    .filter(|&i| self.words[w + 2 + i] >> 8 & RUN_CHILD as u32 != 0)
                    .count();
                (own, (header >> 16 & 0x3) as u8, self.words[w + 1], n)
            }
            TAG_DLEAF => (2, CLASS_S32, 0, 0),
            _ => {
                let n: u32 = self.words[w..w + 8].iter().map(|x| x.count_ones()).sum();
                let cc = (self.words[w + 18] >> 8 & 0x3) as u8;
                (4, cc, self.words[w + 16], n as usize)
            }
        };
        let stride = CLASS_SLOTS[cc as usize];
        let mut total = own;
        for rank in 0..n_children {
            total += self.tree_slots(tag_of_class(cc), base0 + (rank * stride) as u32);
        }
        total
    }

    /// One interleaved group of `N` lookups, level-synchronous: all
    /// lanes read their (prefetched) root entries, then every active
    /// lane resolves one node level per pass with the next level's node
    /// lines prefetched before any lane needs them, then spilled leaves
    /// and next hops are read in two final passes. Per-lane arithmetic
    /// is [`Poptrie::node_step`], the same function the scalar walk
    /// uses, so results and counts match bit for bit.
    fn lookup_group<const N: usize>(&self, addrs: [u32; N]) -> [CountedLookup; N] {
        for &a in &addrs {
            prefetch_slice(&self.root, (a >> 16) as usize);
        }
        let mut acc = [1u32; N];
        let mut lines: [LineSet; N] = std::array::from_fn(|_| LineSet::new());
        // Lane state: Some((slot, tag)) while descending.
        let mut node: [Option<(u32, u32)>; N] = [None; N];
        let mut val: [LeafVal; N] = [0; N];
        let mut spill: [Option<usize>; N] = [None; N];
        for l in 0..N {
            let stem = (addrs[l] >> 16) as usize;
            lines[l].touch(REGION_ROOT, stem * 4, 4);
            let e = self.root[stem];
            if e >> 30 == TAG_LEAF {
                val[l] = (e & PAYLOAD_MASK) as u16;
            } else {
                let slot = e & PAYLOAD_MASK;
                prefetch_slice(&self.words, slot as usize * SLOT_WORDS);
                prefetch_slice(&self.words, slot as usize * SLOT_WORDS + 16);
                node[l] = Some((slot, e >> 30));
            }
        }
        for shift in [8u32, 0] {
            for l in 0..N {
                let Some((slot, tag)) = node[l] else { continue };
                let pos = (addrs[l] >> shift & 0xFF) as usize;
                node[l] = None;
                match self.node_step(tag, slot, pos, &mut acc[l], &mut lines[l]) {
                    Step::Leaf(v) => val[l] = v,
                    Step::Spill(i) => {
                        prefetch_slice(&self.leaves, i);
                        spill[l] = Some(i);
                    }
                    Step::Child { slot, tag } => {
                        prefetch_slice(&self.words, slot as usize * SLOT_WORDS);
                        prefetch_slice(&self.words, slot as usize * SLOT_WORDS + 16);
                        node[l] = Some((slot, tag));
                    }
                }
            }
        }
        for l in 0..N {
            if let Some(i) = spill[l] {
                lines[l].touch(REGION_LEAVES, i * 2, 2);
                acc[l] += 1;
                val[l] = self.leaves[i];
            }
            if val[l] != 0 {
                prefetch_slice(&self.next_hops, val[l] as usize - 1);
            }
        }
        std::array::from_fn(|l| self.finish(val[l], acc[l], &mut lines[l]))
    }
}

impl Lpm for Poptrie {
    /// Uncounted fast path: the same descent minus the bookkeeping.
    fn lookup(&self, addr: u32) -> Option<NextHop> {
        let e = self.root[(addr >> 16) as usize];
        let val: LeafVal;
        if e >> 30 == TAG_LEAF {
            val = (e & PAYLOAD_MASK) as u16;
        } else {
            let mut slot = e & PAYLOAD_MASK;
            let mut tag = e >> 30;
            let mut shift = 8u32;
            loop {
                let pos = (addr >> shift & 0xFF) as usize;
                match self.node_step_plain(tag, slot, pos) {
                    Step::Leaf(v) => {
                        val = v;
                        break;
                    }
                    Step::Spill(i) => {
                        val = self.leaves[i];
                        break;
                    }
                    Step::Child { slot: s, tag: t } => {
                        slot = s;
                        tag = t;
                        shift -= 8;
                    }
                }
            }
        }
        if val == 0 {
            None
        } else {
            Some(self.next_hops[val as usize - 1])
        }
    }

    fn lookup_counted(&self, addr: u32) -> CountedLookup {
        let mut lines = LineSet::new();
        let mut acc = 1u32; // root entry read
        let stem = (addr >> 16) as usize;
        lines.touch(REGION_ROOT, stem * 4, 4);
        let e = self.root[stem];
        let val: LeafVal;
        if e >> 30 == TAG_LEAF {
            val = (e & PAYLOAD_MASK) as u16;
        } else {
            let mut slot = e & PAYLOAD_MASK;
            let mut tag = e >> 30;
            let mut shift = 8u32;
            loop {
                let pos = (addr >> shift & 0xFF) as usize;
                match self.node_step(tag, slot, pos, &mut acc, &mut lines) {
                    Step::Leaf(v) => {
                        val = v;
                        break;
                    }
                    Step::Spill(i) => {
                        lines.touch(REGION_LEAVES, i * 2, 2);
                        acc += 1;
                        val = self.leaves[i];
                        break;
                    }
                    Step::Child { slot: s, tag: t } => {
                        slot = s;
                        tag = t;
                        shift -= 8;
                    }
                }
            }
        }
        self.finish(val, acc, &mut lines)
    }

    fn lookup_batch(&self, addrs: &[u32], out: &mut [CountedLookup]) {
        assert_eq!(
            addrs.len(),
            out.len(),
            "lookup_batch: addrs and out must have equal lengths"
        );
        let mut i = 0;
        while i + WIDE_LANES <= addrs.len() {
            let group: [u32; WIDE_LANES] = addrs[i..i + WIDE_LANES].try_into().expect("exact");
            out[i..i + WIDE_LANES].copy_from_slice(&self.lookup_group(group));
            i += WIDE_LANES;
        }
        while i + BATCH_LANES <= addrs.len() {
            let group: [u32; BATCH_LANES] = addrs[i..i + BATCH_LANES].try_into().expect("exact");
            out[i..i + BATCH_LANES].copy_from_slice(&self.lookup_group(group));
            i += BATCH_LANES;
        }
        for k in i..addrs.len() {
            out[k] = self.lookup_counted(addrs[k]);
        }
    }

    /// Stem-granular patching: every changed prefix dirties the 16-bit
    /// stems it covers; each dirty stem's subtree is re-encoded fresh at
    /// the arena tail (the old tree becomes garbage) and its root word
    /// swapped. Declines — caller rebuilds — when a prefix is shorter
    /// than /4, when the dirty-stem count approaches rebuild cost, or
    /// when accumulated garbage exceeds a third of the arena.
    fn apply_delta(&mut self, changed: &[Prefix], rib: &RoutingTable) -> Option<DeltaStats> {
        if changed.iter().any(|p| p.len() < 4) {
            return None;
        }
        let mut dirty: BTreeSet<u32> = BTreeSet::new();
        for &p in changed {
            if p.len() <= 16 {
                let first = p.bits() >> 16;
                dirty.extend(first..first + (1u32 << (16 - p.len())));
            } else {
                dirty.insert(p.bits() >> 16);
            }
        }
        if dirty.len() > MAX_DIRTY_STEMS {
            return None;
        }
        let mut stats = DeltaStats::default();
        for stem in dirty {
            let old = self.root[stem as usize];
            if old >> 30 != TAG_LEAF {
                self.garbage_slots += self.tree_slots(old >> 30, old & PAYLOAD_MASK);
            }
            let base_addr = stem << 16;
            let default = match rib.best_cover(base_addr, 16) {
                Some(e) => intern_leaf(&mut self.next_hops, &mut self.nh_index, e.next_hop),
                None => 0,
            };
            let deep: Vec<(u32, u8, LeafVal)> = rib
                .range(base_addr, base_addr | 0xFFFF)
                .iter()
                .filter(|e| e.prefix.len() > 16)
                .map(|e| {
                    let v = intern_leaf(&mut self.next_hops, &mut self.nh_index, e.next_hop);
                    (e.prefix.bits(), e.prefix.len(), v)
                })
                .collect();
            if deep.is_empty() {
                self.root[stem as usize] = default as u32;
                stats.bytes_touched += 4;
            } else {
                let before = self.words.len();
                let spec = build_spec(&deep, 16, default);
                let mut builder = Builder {
                    words: &mut self.words,
                    leaves: &mut self.leaves,
                    spare: None,
                };
                let (slot, class) = builder.encode(&spec);
                self.root[stem as usize] = tag_of_class(class) << 30 | slot;
                stats.bytes_touched += 4 + (self.words.len() - before) * 4;
            }
            stats.prefixes_applied += 1;
        }
        self.routes = rib.len();
        let total_slots = self.words.len() / SLOT_WORDS;
        if total_slots > 0 && self.garbage_slots as f64 > total_slots as f64 * MAX_GARBAGE_FRACTION
        {
            return None;
        }
        Some(stats)
    }

    /// Bytes of lookup SRAM: the direct root, the node arena (including
    /// patch garbage — it occupies real lines), spilled leaves and the
    /// deduplicated next-hop table.
    fn storage_bytes(&self) -> usize {
        self.root.len() * 4
            + self.words.len() * 4
            + self.leaves.len() * 2
            + self.next_hops.len() * 2
    }

    fn name(&self) -> &'static str {
        "Poptrie"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::{synth, RouteEntry};

    fn table(prefixes: &[(&str, u16)]) -> RoutingTable {
        RoutingTable::from_entries(prefixes.iter().map(|&(s, nh)| RouteEntry {
            prefix: s.parse().unwrap(),
            next_hop: NextHop(nh),
        }))
    }

    #[test]
    fn empty_table() {
        let rt = RoutingTable::new();
        let t = Poptrie::build(&rt);
        assert_eq!(t.lookup(0), None);
        assert_eq!(t.lookup(u32::MAX), None);
        // Root-only miss: one root line, no node or next-hop lines.
        let c = t.lookup_counted(0x0102_0304);
        assert_eq!(c.mem_accesses, 1);
        assert_eq!(c.lines_touched, 1);
    }

    #[test]
    fn default_route_only() {
        let rt = table(&[("0.0.0.0/0", 5)]);
        let t = Poptrie::build(&rt);
        assert_eq!(t.lookup(0), Some(NextHop(5)));
        assert_eq!(t.lookup(u32::MAX), Some(NextHop(5)));
        // Shallow hit: root line + next-hop line.
        assert_eq!(t.lookup_counted(0).lines_touched, 2);
    }

    #[test]
    fn deep_routes_descend() {
        let rt = table(&[
            ("10.0.0.0/8", 1),
            ("10.1.2.0/24", 2),
            ("10.1.2.128/25", 3),
            ("10.1.2.3/32", 4),
        ]);
        let t = Poptrie::build(&rt);
        assert_eq!(t.lookup(0x0A01_0203), Some(NextHop(4))); // /32
        assert_eq!(t.lookup(0x0A01_0204), Some(NextHop(2))); // /24
        assert_eq!(t.lookup(0x0A01_0280), Some(NextHop(3))); // /25
        assert_eq!(t.lookup(0x0A01_0300), Some(NextHop(1))); // /8 fallback
        assert_eq!(t.lookup(0x0B00_0000), None);
    }

    #[test]
    fn intra_node_fallback_to_parent_value() {
        let rt = table(&[("10.1.0.0/16", 7), ("10.1.200.0/24", 8)]);
        let t = Poptrie::build(&rt);
        assert_eq!(t.lookup(0x0A01_C801), Some(NextHop(8)));
        assert_eq!(t.lookup(0x0A01_0101), Some(NextHop(7)));
    }

    #[test]
    fn miss_within_node() {
        let rt = table(&[("10.1.2.0/24", 1)]);
        let t = Poptrie::build(&rt);
        assert_eq!(t.lookup(0x0A01_0200), Some(NextHop(1)));
        assert_eq!(t.lookup(0x0A01_0300), None);
        assert_eq!(t.lookup(0x0A02_0000), None);
    }

    #[test]
    fn dense_node_with_many_runs() {
        // 128 alternating /24s under one stem force a DLEAF (childless,
        // > 14 runs); adding a /32 forces DENSE.
        let mut entries: Vec<(String, u16)> = Vec::new();
        for i in (0..256).step_by(2) {
            entries.push((format!("10.1.{i}.0/24"), (i % 7 + 1) as u16));
        }
        entries.push(("10.1.7.9/32".into(), 99));
        let rt = RoutingTable::from_entries(entries.iter().map(|(s, nh)| RouteEntry {
            prefix: s.parse().unwrap(),
            next_hop: NextHop(*nh),
        }));
        let t = Poptrie::build(&rt);
        assert_eq!(t.lookup(0x0A01_0709), Some(NextHop(99)));
        assert_eq!(t.lookup(0x0A01_0700), None); // odd /24 absent... 7 is odd
        assert_eq!(t.lookup(0x0A01_0800), Some(NextHop(2)));
        for i in (0..256u32).step_by(2) {
            assert_eq!(
                t.lookup(0x0A01_0000 | i << 8 | 1),
                Some(NextHop((i % 7 + 1) as u16)),
                "slot {i}"
            );
        }
    }

    #[test]
    fn agrees_with_oracle_on_synthetic_table() {
        use rand::{Rng, SeedableRng};
        let rt = synth::small(23);
        let t = Poptrie::build(&rt);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..4000 {
            let addr: u32 = rng.gen();
            assert_eq!(
                t.lookup(addr),
                rt.longest_match(addr).map(|e| e.next_hop),
                "addr {addr:#010x}"
            );
        }
        // Biased toward covered space: perturb known prefixes.
        for e in rt.entries().iter().step_by(3) {
            let addr = e.prefix.first_addr() ^ (rng.gen::<u32>() & 0xFF);
            assert_eq!(
                t.lookup(addr),
                rt.longest_match(addr).map(|e| e.next_hop),
                "addr {addr:#010x}"
            );
        }
    }

    #[test]
    fn batch_matches_scalar() {
        use rand::{Rng, SeedableRng};
        let rt = synth::small(31);
        let t = Poptrie::build(&rt);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let addrs: Vec<u32> = (0..103).map(|_| rng.gen()).collect();
        let mut out = vec![CountedLookup::MISS; addrs.len()];
        t.lookup_batch(&addrs, &mut out);
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(out[i], t.lookup_counted(a), "addr {a:#010x}");
        }
    }

    #[test]
    fn counted_matches_plain() {
        use rand::{Rng, SeedableRng};
        let rt = synth::small(41);
        let t = Poptrie::build(&rt);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..2000 {
            let addr: u32 = rng.gen();
            assert_eq!(t.lookup(addr), t.lookup_counted(addr).next_hop);
        }
    }

    #[test]
    fn line_budget_shallow_and_sparse() {
        // A shallow hit is 2 lines; a one-level sparse descent ≤ 3
        // (root + one packed node line + next hop).
        let rt = table(&[("10.0.0.0/8", 1), ("10.1.2.0/24", 2), ("192.168.0.0/17", 3)]);
        let t = Poptrie::build(&rt);
        // 10.64.0.0 resolves at the root: root line + next-hop line.
        let shallow = t.lookup_counted(0x0A40_0000);
        assert_eq!(shallow.next_hop, Some(NextHop(1)));
        assert_eq!(shallow.lines_touched, 2);
        // One sparse-node descent: root + one packed node line + next
        // hop, and the line count equals the line-grain access count.
        let c = t.lookup_counted(0x0A01_0203);
        assert_eq!(c.next_hop, Some(NextHop(2)));
        assert_eq!(c.mem_accesses, 3);
        assert_eq!(c.lines_touched, 3);
    }

    #[test]
    fn apply_delta_matches_rebuild() {
        use rand::{Rng, SeedableRng};
        let mut rt = synth::small(53);
        let mut t = Poptrie::build(&rt);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for round in 0..6 {
            // Announce some fresh /20../28 routes and withdraw a few
            // existing ones.
            let mut changed = Vec::new();
            let mut entries: Vec<RouteEntry> = rt.entries().to_vec();
            for _ in 0..20 {
                let len = rng.gen_range(20..=28u8);
                let bits = rng.gen::<u32>() & (u32::MAX << (32 - len));
                let p = Prefix::new(bits, len).unwrap();
                entries.retain(|e| e.prefix != p);
                entries.push(RouteEntry {
                    prefix: p,
                    next_hop: NextHop(rng.gen_range(1..50)),
                });
                changed.push(p);
            }
            for _ in 0..5 {
                if entries.len() > 10 {
                    let i = rng.gen_range(0..entries.len());
                    let e = entries.remove(i);
                    if e.prefix.len() >= 4 {
                        changed.push(e.prefix);
                    } else {
                        entries.push(e);
                    }
                }
            }
            rt = RoutingTable::from_entries(entries);
            match t.apply_delta(&changed, &rt) {
                Some(stats) => assert!(stats.prefixes_applied > 0),
                None => t = Poptrie::build(&rt),
            }
            for _ in 0..1500 {
                let addr: u32 = rng.gen();
                assert_eq!(
                    t.lookup(addr),
                    rt.longest_match(addr).map(|e| e.next_hop),
                    "round {round} addr {addr:#010x}"
                );
            }
            let mut out = vec![CountedLookup::MISS; 64];
            let addrs: Vec<u32> = (0..64).map(|_| rng.gen()).collect();
            t.lookup_batch(&addrs, &mut out);
            for (i, &a) in addrs.iter().enumerate() {
                assert_eq!(out[i], t.lookup_counted(a));
            }
        }
    }

    #[test]
    fn declines_giant_prefix_patch() {
        let rt = table(&[("10.0.0.0/8", 1), ("0.0.0.0/2", 2)]);
        let mut t = Poptrie::build(&rt);
        assert!(t
            .apply_delta(&["0.0.0.0/2".parse().unwrap()], &rt)
            .is_none());
    }

    #[test]
    fn storage_is_modelled() {
        let rt = synth::small(3);
        let t = Poptrie::build(&rt);
        let expect =
            t.root.len() * 4 + t.words.len() * 4 + t.leaves.len() * 2 + t.next_hops.len() * 2;
        assert_eq!(t.storage_bytes(), expect);
        assert!(t.storage_bytes() >= (1 << 16) * 4);
    }
}
